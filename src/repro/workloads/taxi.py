"""NYC-taxi-style workload: two facts, two dimensions, deep-OLA queries.

A seeded synthetic ride dataset shaped like the public NYC TLC trip
records: a ``trips`` fact table (one row per ride), a smaller
``surcharges`` fact (per-zone fee events — the second streamed relation
for multi-fact queries), and ``zones``/``vendors`` dimension tables.

The T queries exercise the deep end of the supported query surface —
window functions over daily aggregates, DISTINCT aggregates, quantiles
with bootstrap CIs, and two-fact joins through a shared dimension key —
which is why this workload feeds both the differential fuzzer's "deep"
grammar and the calibration harness.

The ``tip`` column is deliberately NaN-heavy (cash rides report no tip),
standing in for NULLs: predicates like ``tip >= 0`` drop the missing
rows, and aggregates over unfiltered ``tip`` propagate NaN identically
across execution paths.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..storage.table import Table

BOROUGHS = np.array(
    ["Manhattan", "Brooklyn", "Queens", "Bronx", "Staten Island"],
    dtype=object,
)
VENDOR_NAMES = np.array(
    ["Creative Mobile", "VeriFone", "Flywheel", "Curb"], dtype=object
)

NUM_DAYS = 30
NUM_ZONES = 40
NUM_VENDORS = 4

#: T1 — daily ride counts with a cumulative running total.
T1_QUERY = """
SELECT day, COUNT(*) AS trips,
       SUM(trips) OVER (ORDER BY day) AS cum_trips
FROM trips
GROUP BY day
ORDER BY day
"""

#: T2 — rolling 7-day mean fare over the daily means.
T2_QUERY = """
SELECT day, AVG(fare) AS mean_fare,
       AVG(mean_fare) OVER (ORDER BY day ROWS 6 PRECEDING) AS fare_7d
FROM trips
GROUP BY day
ORDER BY day
"""

#: T3 — zone coverage per vendor (grouped COUNT DISTINCT).
T3_QUERY = """
SELECT vendor_id, COUNT(DISTINCT zone_id) AS active_zones
FROM trips
GROUP BY vendor_id
ORDER BY vendor_id
"""

#: T4 — how many zones produce premium rides (global COUNT DISTINCT).
T4_QUERY = """
SELECT COUNT(DISTINCT zone_id) AS premium_zones
FROM trips
WHERE fare > 30.0
"""

#: T5 — p95 fare per vendor (grouped quantile).
T5_QUERY = """
SELECT vendor_id, QUANTILE(fare, 0.95) AS p95_fare
FROM trips
GROUP BY vendor_id
ORDER BY vendor_id
"""

#: T6 — p95 fare in Manhattan (quantile over a dimension join).
T6_QUERY = """
SELECT QUANTILE(t.fare, 0.95) AS p95_fare
FROM trips t JOIN zones z ON t.zone_id = z.zone_id
WHERE z.borough = 'Manhattan'
"""

#: T7 — mean fare of rides out-earning their zone's mean surcharge
#: (multi-fact: correlated aggregate over the second streamed fact).
T7_QUERY = """
SELECT AVG(t.fare) AS avg_fare
FROM trips t
WHERE t.fare >
      (SELECT 5.0 * AVG(s.amount) FROM surcharges s
       WHERE s.zone_id = t.zone_id)
"""

#: T8 — tipped rides beating the global mean surcharge (multi-fact,
#: scalar inner aggregate; NaN tips fail the comparison and drop out).
T8_QUERY = """
SELECT COUNT(*) AS generous_trips
FROM trips
WHERE tip > (SELECT AVG(amount) FROM surcharges)
"""

#: T9 — mean reported tip per vendor (``tip >= 0`` drops NaN rows).
T9_QUERY = """
SELECT vendor_id, AVG(tip) AS mean_tip
FROM trips
WHERE tip >= 0.0
GROUP BY vendor_id
ORDER BY vendor_id
"""

#: T10 — outer-zone daily counts with a bounded COUNT(*) frame window.
T10_QUERY = """
SELECT day, COUNT(*) AS outer_trips,
       COUNT(*) OVER (ORDER BY day ROWS 2 PRECEDING) AS frame_days
FROM trips
WHERE zone_id > 30
GROUP BY day
ORDER BY day
"""

QUERIES = {
    "T1": T1_QUERY,
    "T2": T2_QUERY,
    "T3": T3_QUERY,
    "T4": T4_QUERY,
    "T5": T5_QUERY,
    "T6": T6_QUERY,
    "T7": T7_QUERY,
    "T8": T8_QUERY,
    "T9": T9_QUERY,
    "T10": T10_QUERY,
}


def generate_taxi(num_rows: int, seed: int = 0,
                  nan_tip_fraction: float = 0.25) -> Dict[str, Table]:
    """Generate the taxi dataset: both facts plus both dimensions.

    Returns ``{"trips", "surcharges", "zones", "vendors"}``.  ``trips``
    has ``num_rows`` rows; ``surcharges`` roughly half that.  Register
    the facts streamed and the dimensions static (see
    :func:`register_taxi`).

    Zone popularity is Zipf-like and fares are heavy-tailed (base +
    lognormal distance component), so per-zone and per-vendor statistics
    have genuine tails for quantile and CI calibration to bite on.
    ``nan_tip_fraction`` of tips are NaN (cash rides).
    """
    if num_rows < 1:
        raise ValueError("num_rows must be >= 1")
    rng = np.random.default_rng(seed)

    ranks = np.arange(1, NUM_ZONES + 1)
    popularity = 1.0 / ranks
    popularity /= popularity.sum()
    zone_id = rng.choice(NUM_ZONES, size=num_rows, p=popularity)
    zone_id = zone_id.astype(np.int64) + 1

    day = rng.integers(0, NUM_DAYS, num_rows, dtype=np.int64)
    # Weekly demand cycle: weekends shift rides toward outer zones.
    weekend = (day % 7) >= 5
    zone_id = np.where(
        weekend & (rng.random(num_rows) < 0.3),
        rng.integers(NUM_ZONES // 2, NUM_ZONES, num_rows) + 1,
        zone_id,
    ).astype(np.int64)

    vendor_id = rng.integers(1, NUM_VENDORS + 1, num_rows, dtype=np.int64)
    distance = rng.lognormal(mean=0.7, sigma=0.9, size=num_rows)
    # Outer zones are longer hauls; fares follow metered distance.
    distance = distance * (1.0 + 0.04 * zone_id)
    fare = 3.0 + 2.5 * distance + rng.normal(0.0, 1.5, num_rows)
    fare = np.maximum(fare, 2.5)

    tip = fare * np.clip(rng.normal(0.18, 0.08, num_rows), 0.0, 0.6)
    tip[rng.random(num_rows) < nan_tip_fraction] = np.nan

    passengers = 1 + rng.binomial(4, 0.18, num_rows).astype(np.int64)

    trips = Table.from_columns(
        {
            "trip_id": np.arange(1, num_rows + 1, dtype=np.int64),
            "day": day,
            "vendor_id": vendor_id,
            "zone_id": zone_id,
            "distance": distance,
            "fare": fare,
            "tip": tip,
            "passengers": passengers,
        }
    )

    m = max(num_rows // 2, 1)
    s_zone = rng.choice(NUM_ZONES, size=m, p=popularity).astype(np.int64) + 1
    s_day = rng.integers(0, NUM_DAYS, m, dtype=np.int64)
    # Per-zone fee baselines (airport/congestion-style surcharges).
    zone_fee = rng.gamma(shape=3.0, scale=1.2, size=NUM_ZONES)
    amount = rng.exponential(zone_fee[s_zone - 1], size=m) + 0.5
    surcharges = Table.from_columns(
        {
            "event_id": np.arange(1, m + 1, dtype=np.int64),
            "zone_id": s_zone,
            "day": s_day,
            "amount": amount,
        }
    )

    zones = Table.from_columns(
        {
            "zone_id": np.arange(1, NUM_ZONES + 1, dtype=np.int64),
            "borough": BOROUGHS[np.arange(NUM_ZONES) % len(BOROUGHS)],
        }
    )
    vendors = Table.from_columns(
        {
            "vendor_id": np.arange(1, NUM_VENDORS + 1, dtype=np.int64),
            "vendor_name": VENDOR_NAMES[:NUM_VENDORS],
        }
    )
    return {
        "trips": trips,
        "surcharges": surcharges,
        "zones": zones,
        "vendors": vendors,
    }


def register_taxi(session, num_rows: int, seed: int = 0) -> Dict[str, Table]:
    """Generate and register the taxi tables on a session.

    Facts (``trips``, ``surcharges``) are registered streamed; the
    dimensions are static.  Returns the generated tables.
    """
    tables = generate_taxi(num_rows, seed=seed)
    session.register_table("trips", tables["trips"], streamed=True)
    session.register_table("surcharges", tables["surcharges"],
                           streamed=True)
    session.register_table("zones", tables["zones"], streamed=False)
    session.register_table("vendors", tables["vendors"], streamed=False)
    return tables
