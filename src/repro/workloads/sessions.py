"""The MyTube ``Sessions`` log (paper Figure 1 / Example 1).

A seeded synthetic generator for the three-column session log the paper
uses to introduce the SBI ("Slow Buffering Impact") query, plus the tiny
hand-written table from Figure 1(b) used by the walk-through tests.

Buffering and play time are negatively correlated (longer buffering
drives users away), so SBI's answer is materially below the overall
average play time — the effect the analyst is hunting for.
"""

from __future__ import annotations

import numpy as np

from ..storage.table import Table

#: The paper's Example 1, verbatim.
SBI_QUERY = """
SELECT AVG(play_time)
FROM Sessions
WHERE buffer_time > (SELECT AVG(buffer_time) FROM Sessions)
"""


def generate_sessions(num_rows: int, seed: int = 0,
                      mean_buffer_s: float = 30.0,
                      mean_play_s: float = 300.0,
                      buffering_impact: float = 0.6) -> Table:
    """Generate a synthetic Sessions table.

    Args:
        num_rows: Number of session log entries.
        seed: RNG seed (reproducible).
        mean_buffer_s: Mean buffering time (exponential).
        mean_play_s: Baseline mean play time.
        buffering_impact: Strength of the negative buffer->play coupling;
            0 means independent columns.

    Returns:
        A table with ``session_id``, ``buffer_time``, ``play_time``.
    """
    if num_rows < 1:
        raise ValueError("num_rows must be >= 1")
    rng = np.random.default_rng(seed)
    buffer_time = rng.exponential(mean_buffer_s, num_rows)
    # Play time falls as buffering rises: retention decays with wait.
    decay = np.exp(-buffering_impact * buffer_time / mean_buffer_s)
    play_time = rng.exponential(mean_play_s, num_rows) * (0.4 + 0.6 * decay)
    return Table.from_columns(
        {
            "session_id": np.arange(1, num_rows + 1, dtype=np.int64),
            "buffer_time": buffer_time,
            "play_time": play_time,
        }
    )


def figure1_table() -> Table:
    """The concrete rows of the paper's Figure 1(b).

    Rows t1, t2, tn, tn+1, tn+2, t2n with the buffer/play values printed
    in the figure; used by the walk-through integration test that
    re-enacts the t1 decision flip between mini-batches.
    """
    return Table.from_columns(
        {
            "session_id": np.array([1, 2, 3, 4, 5, 6], dtype=np.int64),
            "buffer_time": np.array([36.0, 58.0, 17.0, 56.0, 19.0, 26.0]),
            "play_time": np.array([238.0, 135.0, 617.0, 194.0, 308.0,
                                   319.0]),
        }
    )
