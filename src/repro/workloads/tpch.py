"""Denormalized TPC-H-like workload and queries Q11, Q17, Q18, Q20.

The paper denormalizes TPC-H into a single fact table "to simplify
random partitioning during mini-batch execution" and notes (footnote 12)
that it modified very selective WHERE / GROUP BY clauses "to avoid
undesirably sparse results for small samples of data".  We do the same:

* one seeded, laptop-scale lineitem-centric fact table carrying the
  part/supplier/order/partsupp columns the four queries touch;
* query texts that preserve each query's *nested-aggregate structure*
  (which is what G-OLA is about) with de-selectivized filters.

Every query is non-monotonic: Q11 via an uncertain HAVING threshold,
Q17 and Q20 via correlated per-part inner aggregates, Q18 via an
uncertain IN-membership set.
"""

from __future__ import annotations

import numpy as np

from ..storage.table import Table

BRANDS = np.array([f"Brand#{i}" for i in range(1, 6)], dtype=object)
CONTAINERS = np.array(
    ["SM BOX", "SM PACK", "MED BOX", "MED PACK", "LG BOX", "LG PACK"],
    dtype=object,
)

#: Q11 — important stock identification.  Original shape: per-part value
#: SUM(ps_supplycost * ps_availqty) filtered by a HAVING against a global
#: fraction of total value.  Fraction raised from 0.0001 for density.
Q11_QUERY = """
SELECT l_partkey, SUM(ps_supplycost * l_quantity) AS part_value
FROM tpch
GROUP BY l_partkey
HAVING SUM(ps_supplycost * l_quantity) >
       (SELECT 0.002 * SUM(ps_supplycost * l_quantity) FROM tpch)
ORDER BY part_value DESC
"""

#: Q17 — small-quantity-order revenue.  The correlated inner aggregate
#: AVG(l_quantity) per part is the paper's running nested example; the
#: very selective brand/container filter is widened per footnote 12.
Q17_QUERY = """
SELECT SUM(l_extendedprice) / 7.0 AS avg_yearly
FROM tpch
WHERE container IN ('SM BOX', 'SM PACK', 'MED BOX', 'MED PACK')
  AND l_quantity < (SELECT 0.75 * AVG(l_quantity) FROM tpch t
                    WHERE t.l_partkey = tpch.l_partkey)
"""

#: Q18 — large-volume customers.  Membership of an order in the
#: "large-volume" set is decided by an uncertain per-order SUM.  The
#: paper's threshold (300) sits in the tail of order sizes, which is
#: what keeps the uncertain membership set small.
Q18_QUERY = """
SELECT o_custkey, SUM(l_quantity) AS total_qty
FROM tpch
WHERE l_orderkey IN (SELECT l_orderkey FROM tpch
                     GROUP BY l_orderkey
                     HAVING SUM(l_quantity) > 300)
GROUP BY o_custkey
ORDER BY total_qty DESC
LIMIT 20
"""

#: Q20 — potential part promotion.  Suppliers whose available quantity
#: exceeds half of the quantity sold of that part (correlated inner SUM,
#: scaled down for the denormalized/laptop setting).
Q20_QUERY = """
SELECT COUNT(*) AS promotable
FROM tpch
WHERE ps_availqty > (SELECT 0.005 * SUM(l_quantity) FROM tpch t
                     WHERE t.l_partkey = tpch.l_partkey)
"""

QUERIES = {
    "Q11": Q11_QUERY,
    "Q17": Q17_QUERY,
    "Q18": Q18_QUERY,
    "Q20": Q20_QUERY,
}


def generate_tpch(num_rows: int, seed: int = 0,
                  num_parts: int = 150,
                  num_suppliers: int = 50,
                  num_customers: int = 800,
                  bulk_order_fraction: float = 0.06) -> Table:
    """Generate the denormalized lineitem-centric fact table.

    Columns: ``l_orderkey, l_partkey, l_suppkey, o_custkey, l_quantity,
    l_extendedprice, l_discount, brand, container, p_size, ps_availqty,
    ps_supplycost, o_year``.

    Order-structured: most orders are small retail orders, a small
    fraction are bulk orders with many high-quantity lines.  This mirrors
    TPC-H's tail structure and keeps Q18's membership threshold (order
    quantity sum > 300) in the tail — most orders classify
    deterministically early, exactly the property G-OLA's uncertain sets
    depend on.  Per-part quantity regimes differ (retail vs bulk parts),
    which makes Q17's correlated per-part inner average informative.
    """
    if num_rows < 1:
        raise ValueError("num_rows must be >= 1")
    rng = np.random.default_rng(seed)

    # --- orders: draw line counts until we cover num_rows ----------------
    est_orders = max(int(num_rows / 3.5) + 10, 4)
    is_bulk = rng.random(est_orders) < bulk_order_fraction
    line_counts = np.where(
        is_bulk,
        rng.poisson(12.0, est_orders) + 8,
        rng.poisson(2.2, est_orders) + 1,
    )
    while line_counts.sum() < num_rows:
        more_bulk = rng.random(est_orders) < bulk_order_fraction
        is_bulk = np.concatenate([is_bulk, more_bulk])
        line_counts = np.concatenate(
            [line_counts,
             np.where(more_bulk, rng.poisson(12.0, est_orders) + 8,
                      rng.poisson(2.2, est_orders) + 1)]
        )
    ends = np.cumsum(line_counts)
    used_orders = int(np.searchsorted(ends, num_rows)) + 1
    line_counts = line_counts[:used_orders]
    is_bulk = is_bulk[:used_orders]
    line_counts[-1] -= int(ends[used_orders - 1] - num_rows)

    order_keys = np.arange(1, used_orders + 1, dtype=np.int64)
    l_orderkey = np.repeat(order_keys, line_counts)
    row_is_bulk = np.repeat(is_bulk, line_counts)
    o_custkey = np.repeat(
        rng.integers(1, num_customers + 1, used_orders, dtype=np.int64),
        line_counts,
    )
    o_year = np.repeat(
        rng.integers(1992, 1999, used_orders, dtype=np.int64), line_counts
    )

    # --- parts: retail parts vs bulk parts -------------------------------
    part_is_bulk = rng.random(num_parts) < 0.3
    retail_parts = np.nonzero(~part_is_bulk)[0] + 1
    bulk_parts = np.nonzero(part_is_bulk)[0] + 1
    if len(retail_parts) == 0:
        retail_parts = np.array([1], dtype=np.int64)
    if len(bulk_parts) == 0:
        bulk_parts = np.array([num_parts], dtype=np.int64)
    l_partkey = np.where(
        row_is_bulk,
        bulk_parts[rng.integers(0, len(bulk_parts), num_rows)],
        retail_parts[rng.integers(0, len(retail_parts), num_rows)],
    ).astype(np.int64)
    l_suppkey = rng.integers(1, num_suppliers + 1, num_rows, dtype=np.int64)

    # Quantities: tight around per-part means so Q17's correlated
    # threshold (0.6 * per-part average) has modest density around it.
    part_mean_qty = np.where(
        part_is_bulk,
        rng.uniform(120.0, 260.0, num_parts),
        rng.uniform(6.0, 24.0, num_parts),
    )
    mean_qty = part_mean_qty[l_partkey - 1]
    l_quantity = np.maximum(
        rng.normal(mean_qty, 0.35 * mean_qty), 1.0
    )

    # Per-unit price inversely related to the part's quantity regime
    # (bulk commodities are cheap per unit), keeping line revenues in a
    # comparable range across regimes — matching TPC-H's price structure
    # and the error-curve shape of the paper's Figure 3(a).
    part_price = (50_000.0 / part_mean_qty) \
        * rng.uniform(0.8, 1.2, num_parts)
    l_extendedprice = part_price[l_partkey - 1] * l_quantity \
        * rng.uniform(0.9, 1.1, num_rows)
    l_discount = rng.choice(
        np.array([0.0, 0.02, 0.04, 0.06, 0.08, 0.10]), num_rows
    )

    brand = BRANDS[(l_partkey - 1) % len(BRANDS)]
    container = CONTAINERS[(l_partkey * 7 - 1) % len(CONTAINERS)]
    p_size = ((l_partkey * 13) % 50 + 1).astype(np.int64)

    ps_availqty = rng.integers(1, 10000, num_rows, dtype=np.int64)
    ps_supplycost = rng.gamma(shape=3.0, scale=120.0, size=num_rows) + 20.0

    return Table.from_columns(
        {
            "l_orderkey": l_orderkey,
            "l_partkey": l_partkey,
            "l_suppkey": l_suppkey,
            "o_custkey": o_custkey,
            "l_quantity": l_quantity,
            "l_extendedprice": l_extendedprice,
            "l_discount": l_discount,
            "brand": brand,
            "container": container,
            "p_size": p_size,
            "ps_availqty": ps_availqty,
            "ps_supplycost": ps_supplycost,
            "o_year": o_year,
        }
    )
