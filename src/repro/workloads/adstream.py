"""Ad-impression stream for the real-time ad-optimization demo scenario.

Paper section 6.2: "MyTube Inc. wants to adapt its policies and decisions
in near real time to maximize its ad revenue … aggregating over a number
of user metrics across multiple dimensions to understand how an ad
performs for a particular group of users or content at a particular time
of day."  The generator produces an impression log whose click-through
and revenue depend on ad, hour-of-day and region, and the module ships
the nested-aggregate queries the example application runs.
"""

from __future__ import annotations

import numpy as np

from ..storage.table import Table

REGIONS = np.array(["NA", "EU", "APAC", "LATAM"], dtype=object)

#: Ads that out-earn the average ad (uncertain revenue threshold) —
#: per-region performance of the over-performers.
OVERPERFORMERS_QUERY = """
SELECT region, COUNT(*) AS impressions, AVG(revenue) AS avg_revenue
FROM adstream
WHERE revenue > (SELECT 2.0 * AVG(revenue) FROM adstream)
GROUP BY region
ORDER BY region
"""

#: Click-through of impressions shown outside an ad's typical hour — the
#: inner aggregate is correlated per ad_id.
OFF_PEAK_CTR_QUERY = """
SELECT AVG(clicked) AS off_peak_ctr
FROM adstream
WHERE hour > (SELECT 1.25 * AVG(hour) FROM adstream a
              WHERE a.ad_id = adstream.ad_id)
"""

QUERIES = {
    "overperformers": OVERPERFORMERS_QUERY,
    "off_peak_ctr": OFF_PEAK_CTR_QUERY,
}


def generate_adstream(num_rows: int, seed: int = 0,
                      num_ads: int = 60,
                      num_contents: int = 300) -> Table:
    """Generate the ad-impression log.

    Columns: ``impression_id, ad_id, content_id, region, hour, clicked,
    view_ms, revenue``.
    """
    if num_rows < 1:
        raise ValueError("num_rows must be >= 1")
    rng = np.random.default_rng(seed)

    ad_id = rng.integers(1, num_ads + 1, num_rows, dtype=np.int64)
    region_idx = rng.integers(0, len(REGIONS), num_rows)
    region = REGIONS[region_idx]

    # Each ad has a preferred hour band; impressions cluster around it.
    ad_peak_hour = rng.integers(6, 23, num_ads)
    hour = np.clip(
        rng.normal(ad_peak_hour[ad_id - 1], 3.0), 0, 23
    ).astype(np.int64)

    # Ad quality drives CTR and revenue; regions modulate both.
    ad_quality = rng.beta(2.0, 8.0, num_ads)
    region_lift = np.array([1.2, 1.0, 0.9, 0.8])[region_idx]
    ctr = np.clip(ad_quality[ad_id - 1] * region_lift, 0.001, 0.9)
    clicked = (rng.random(num_rows) < ctr).astype(np.int64)

    view_ms = (rng.exponential(3500.0, num_rows)
               * (1.0 + clicked)).astype(np.int64)
    revenue = clicked * rng.gamma(2.0, 0.08, num_rows) \
        + 0.001 * rng.random(num_rows)

    return Table.from_columns(
        {
            "impression_id": np.arange(1, num_rows + 1, dtype=np.int64),
            "ad_id": ad_id,
            "content_id": rng.integers(1, num_contents + 1, num_rows,
                                       dtype=np.int64),
            "region": region,
            "hour": hour,
            "clicked": clicked,
            "view_ms": view_ms,
            "revenue": revenue,
        }
    )
