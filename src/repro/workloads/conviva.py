"""Conviva-like video-delivery trace and the C1–C3 queries.

The paper evaluates on a 100 GB slice of a 10 TB proprietary Conviva
trace — a single denormalized fact table of session logs.  We substitute
a seeded synthetic generator that reproduces the properties the C
queries exercise: heavy-tailed buffering, buffering-dependent retention
and join failures, and categorical dimensions (geo, content, device,
CDN) with skewed popularity.

C1–C3 follow the paper's description: "statistics (such as histograms of
play_time and join_failure_rate) of sessions with abnormal behaviors
(e.g., those with a longer than average buffering time)" — each is a
nested-aggregate (non-monotonic) query.
"""

from __future__ import annotations

import numpy as np

from ..storage.table import Table

GEOS = np.array(["US", "EU", "IN", "BR", "JP", "AU", "CA", "KR"],
                dtype=object)
DEVICES = np.array(["web", "ios", "android", "tv", "console"], dtype=object)
CDNS = np.array(["cdn_a", "cdn_b", "cdn_c"], dtype=object)

#: C1 — play-time histogram of slow-buffering ("abnormal") sessions.
C1_QUERY = """
SELECT FLOOR(play_time / 120) AS bucket, COUNT(*) AS sessions
FROM conviva
WHERE buffer_time > (SELECT AVG(buffer_time) FROM conviva)
GROUP BY FLOOR(play_time / 120)
ORDER BY bucket
"""

#: C2 — join-failure rate per geo among slow-buffering sessions.
C2_QUERY = """
SELECT geo, AVG(join_failure) AS failure_rate, COUNT(*) AS sessions
FROM conviva
WHERE buffer_time > (SELECT AVG(buffer_time) FROM conviva)
GROUP BY geo
ORDER BY geo
"""

#: C3 — retention of sessions buffering far above their content's norm
#: (correlated inner aggregate, per content_id).
C3_QUERY = """
SELECT AVG(play_time) AS retention
FROM conviva
WHERE buffer_time >
      (SELECT 2.0 * AVG(buffer_time) FROM conviva c
       WHERE c.content_id = conviva.content_id)
"""

QUERIES = {"C1": C1_QUERY, "C2": C2_QUERY, "C3": C3_QUERY}


def generate_conviva(num_rows: int, seed: int = 0,
                     num_contents: int = 100,
                     num_users: int = 5000) -> Table:
    """Generate the synthetic Conviva-like fact table.

    Columns: ``session_id, user_id, content_id, geo, device, cdn,
    buffer_time, play_time, join_time, join_failure, bitrate_kbps``.

    Content popularity is Zipf-like; per-content baseline buffering
    varies (some contents are poorly cached), which is what makes C3's
    correlated inner aggregate informative.
    """
    if num_rows < 1:
        raise ValueError("num_rows must be >= 1")
    rng = np.random.default_rng(seed)

    # Zipf-ish content popularity.
    ranks = np.arange(1, num_contents + 1)
    popularity = 1.0 / ranks
    popularity /= popularity.sum()
    content_id = rng.choice(num_contents, size=num_rows, p=popularity)
    content_id = content_id.astype(np.int64) + 1

    # Per-content baseline buffering (cache quality differs by content).
    content_base = rng.gamma(shape=4.0, scale=6.0, size=num_contents)
    buffer_time = rng.exponential(
        content_base[content_id - 1], size=num_rows
    ) + rng.exponential(5.0, num_rows)

    geo = GEOS[rng.integers(0, len(GEOS), num_rows)]
    device = DEVICES[rng.integers(0, len(DEVICES), num_rows)]
    cdn = CDNS[rng.integers(0, len(CDNS), num_rows)]

    # Retention decays with buffering; failures spike with buffering.
    mean_buffer = buffer_time.mean() if num_rows else 1.0
    decay = np.exp(-0.5 * buffer_time / max(mean_buffer, 1e-9))
    play_time = rng.exponential(420.0, num_rows) * (0.3 + 0.7 * decay)
    join_time = rng.exponential(2.0, num_rows) + 0.05 * buffer_time
    failure_p = np.clip(
        0.02 + 0.10 * buffer_time / (buffer_time + mean_buffer), 0.0, 0.6
    )
    join_failure = (rng.random(num_rows) < failure_p).astype(np.int64)
    bitrate = rng.choice(
        np.array([400, 800, 1600, 3200, 6400], dtype=np.int64), num_rows
    )

    return Table.from_columns(
        {
            "session_id": np.arange(1, num_rows + 1, dtype=np.int64),
            "user_id": rng.integers(1, num_users + 1, num_rows,
                                    dtype=np.int64),
            "content_id": content_id,
            "geo": geo,
            "device": device,
            "cdn": cdn,
            "buffer_time": buffer_time,
            "play_time": play_time,
            "join_time": join_time,
            "join_failure": join_failure,
            "bitrate_kbps": bitrate,
        }
    )
