"""Workload generators and the paper's query suites."""

from .adstream import generate_adstream
from .adstream import QUERIES as ADSTREAM_QUERIES
from .conviva import C1_QUERY, C2_QUERY, C3_QUERY, generate_conviva
from .conviva import QUERIES as CONVIVA_QUERIES
from .sessions import SBI_QUERY, figure1_table, generate_sessions
from .taxi import QUERIES as TAXI_QUERIES
from .taxi import generate_taxi, register_taxi
from .tpch import Q11_QUERY, Q17_QUERY, Q18_QUERY, Q20_QUERY, generate_tpch
from .tpch import QUERIES as TPCH_QUERIES

__all__ = [
    "ADSTREAM_QUERIES",
    "C1_QUERY",
    "C2_QUERY",
    "C3_QUERY",
    "CONVIVA_QUERIES",
    "Q11_QUERY",
    "Q17_QUERY",
    "Q18_QUERY",
    "Q20_QUERY",
    "SBI_QUERY",
    "TAXI_QUERIES",
    "TPCH_QUERIES",
    "figure1_table",
    "generate_adstream",
    "generate_conviva",
    "generate_sessions",
    "generate_taxi",
    "generate_tpch",
    "register_taxi",
]
