"""SQL front-end: lexer, AST and parser."""

from .ast_nodes import SelectStmt
from .parser import parse_sql

__all__ = ["SelectStmt", "parse_sql"]
