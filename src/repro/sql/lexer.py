"""SQL tokenizer.

Produces a flat token stream for the recursive-descent parser.  Keywords
are case-insensitive; identifiers preserve case but compare lowercased
downstream.  Comments (``-- ...`` to end of line) are skipped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from ..errors import ParseError


class TokenType(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    EOF = "eof"


KEYWORDS = frozenset(
    """
    select distinct from where group by having order limit as and or not
    between in is null case when then else end join inner left on asc desc
    true false over rows preceding
    """.split()
)

# Multi-character symbols first so the scanner is greedy.
SYMBOLS = ("<=", ">=", "!=", "<>", "=", "<", ">", "(", ")", ",", "+", "-",
           "*", "/", "%", ".")


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def matches_keyword(self, *words: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in words

    def matches_symbol(self, *symbols: str) -> bool:
        return self.type is TokenType.SYMBOL and self.value in symbols


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``, raising :class:`ParseError` on bad input."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch == "'":
            j = i + 1
            parts = []
            while True:
                if j >= n:
                    raise ParseError("unterminated string literal", i, text)
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":  # escaped quote
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(text[j])
                j += 1
            tokens.append(Token(TokenType.STRING, "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = text[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < n and text[j] in "+-":
                        j += 1
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, i))
            else:
                tokens.append(Token(TokenType.IDENT, word, i))
            i = j
            continue
        for sym in SYMBOLS:
            if text.startswith(sym, i):
                tokens.append(Token(TokenType.SYMBOL, sym, i))
                i += len(sym)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", i, text)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
