"""Recursive-descent SQL parser.

Covers the dialect the paper's workloads need: SELECT lists with
aggregates and expressions, single-table FROM with INNER/LEFT equi-joins,
WHERE with arbitrarily nested scalar and IN subqueries (including
equality-correlated ones), GROUP BY / HAVING, ORDER BY, LIMIT, CASE,
BETWEEN and IN lists.

Grammar (precedence low to high)::

    expr        := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | predicate
    predicate   := additive (cmp additive
                             | [NOT] BETWEEN additive AND additive
                             | [NOT] IN '(' (select | expr_list) ')')?
    additive    := multiplicative (('+'|'-') multiplicative)*
    multiplicative := unary (('*'|'/'|'%') unary)*
    unary       := '-' unary | primary
    primary     := literal | CASE ... END | ident ['(' args ')']
                 | '(' select ')' | '(' expr ')'
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import ParseError
from .ast_nodes import (
    BetweenExpr,
    Binary,
    BoolLit,
    Call,
    CaseExpr,
    Ident,
    InListExpr,
    InSelectExpr,
    JoinClause,
    NumberLit,
    ScalarSelect,
    SelectItem,
    SelectStmt,
    SqlExpr,
    StringLit,
    TableRef,
    Unary,
    WindowExpr,
)
from .lexer import Token, TokenType, tokenize

_COMPARE_OPS = ("=", "!=", "<>", "<", "<=", ">", ">=")


class Parser:
    """One-shot parser over a token list; use :func:`parse_sql`."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    def _peek(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def _error(self, message: str) -> ParseError:
        return ParseError(message, self._peek().position, self.text)

    def _expect_keyword(self, word: str) -> Token:
        tok = self._peek()
        if not tok.matches_keyword(word):
            raise self._error(f"expected {word.upper()}, found {tok.value!r}")
        return self._advance()

    def _expect_symbol(self, symbol: str) -> Token:
        tok = self._peek()
        if not tok.matches_symbol(symbol):
            raise self._error(f"expected {symbol!r}, found {tok.value!r}")
        return self._advance()

    def _accept_keyword(self, *words: str) -> Optional[Token]:
        if self._peek().matches_keyword(*words):
            return self._advance()
        return None

    def _accept_symbol(self, *symbols: str) -> Optional[Token]:
        if self._peek().matches_symbol(*symbols):
            return self._advance()
        return None

    def _expect_ident(self) -> str:
        tok = self._peek()
        if tok.type is not TokenType.IDENT:
            raise self._error(f"expected identifier, found {tok.value!r}")
        return self._advance().value

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def parse_statement(self) -> SelectStmt:
        stmt = self._parse_select()
        if self._peek().type is not TokenType.EOF:
            raise self._error(
                f"unexpected trailing input {self._peek().value!r}"
            )
        return stmt

    def _parse_select(self) -> SelectStmt:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct") is not None

        items = [self._parse_select_item()]
        while self._accept_symbol(","):
            items.append(self._parse_select_item())

        self._expect_keyword("from")
        from_table = self._parse_table_ref()

        joins: List[JoinClause] = []
        while True:
            how = None
            if self._accept_keyword("join"):
                how = "inner"
            elif self._peek().matches_keyword("inner", "left"):
                how = self._advance().value
                if how == "left":
                    # Allow LEFT JOIN and LEFT OUTER-free form.
                    pass
                self._expect_keyword("join")
            else:
                break
            table = self._parse_table_ref()
            self._expect_keyword("on")
            condition = self.parse_expression()
            joins.append(JoinClause(table, condition, how))

        where = None
        if self._accept_keyword("where"):
            where = self.parse_expression()

        group_by: List[SqlExpr] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self.parse_expression())
            while self._accept_symbol(","):
                group_by.append(self.parse_expression())

        having = None
        if self._accept_keyword("having"):
            having = self.parse_expression()

        order_by: List[Tuple[SqlExpr, bool]] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._parse_order_item())
            while self._accept_symbol(","):
                order_by.append(self._parse_order_item())

        limit = None
        if self._accept_keyword("limit"):
            tok = self._peek()
            if tok.type is not TokenType.NUMBER:
                raise self._error("LIMIT expects a number")
            self._advance()
            limit = int(float(tok.value))

        return SelectStmt(
            items=tuple(items),
            from_table=from_table,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def _parse_select_item(self) -> SelectItem:
        expr = self.parse_expression()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().value
        return SelectItem(expr, alias)

    def _parse_table_ref(self) -> TableRef:
        name = self._expect_ident()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().value
        return TableRef(name, alias)

    def _parse_order_item(self) -> Tuple[SqlExpr, bool]:
        expr = self.parse_expression()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        return expr, descending

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def parse_expression(self) -> SqlExpr:
        return self._parse_or()

    def _parse_or(self) -> SqlExpr:
        left = self._parse_and()
        while self._accept_keyword("or"):
            left = Binary("or", left, self._parse_and())
        return left

    def _parse_and(self) -> SqlExpr:
        left = self._parse_not()
        while self._accept_keyword("and"):
            left = Binary("and", left, self._parse_not())
        return left

    def _parse_not(self) -> SqlExpr:
        if self._accept_keyword("not"):
            return Unary("not", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> SqlExpr:
        left = self._parse_additive()
        tok = self._peek()
        if tok.matches_symbol(*_COMPARE_OPS):
            op = self._advance().value
            right = self._parse_additive()
            return Binary("<>" if op == "<>" else op, left, right)
        negated = False
        if tok.matches_keyword("not"):
            nxt = self.tokens[self.pos + 1]
            if nxt.matches_keyword("between", "in"):
                self._advance()
                negated = True
                tok = self._peek()
        if tok.matches_keyword("between"):
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return BetweenExpr(left, low, high, negated)
        if tok.matches_keyword("in"):
            self._advance()
            self._expect_symbol("(")
            if self._peek().matches_keyword("select"):
                select = self._parse_select()
                self._expect_symbol(")")
                return InSelectExpr(left, select, negated)
            options = [self.parse_expression()]
            while self._accept_symbol(","):
                options.append(self.parse_expression())
            self._expect_symbol(")")
            return InListExpr(left, tuple(options), negated)
        return left

    def _parse_additive(self) -> SqlExpr:
        left = self._parse_multiplicative()
        while True:
            tok = self._accept_symbol("+", "-")
            if tok is None:
                return left
            left = Binary(tok.value, left, self._parse_multiplicative())

    def _parse_multiplicative(self) -> SqlExpr:
        left = self._parse_unary()
        while True:
            tok = self._accept_symbol("*", "/", "%")
            if tok is None:
                return left
            left = Binary(tok.value, left, self._parse_unary())

    def _parse_unary(self) -> SqlExpr:
        if self._accept_symbol("-"):
            return Unary("-", self._parse_unary())
        if self._accept_symbol("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> SqlExpr:
        tok = self._peek()

        if tok.type is TokenType.NUMBER:
            self._advance()
            value = float(tok.value)
            is_int = "." not in tok.value and "e" not in tok.value.lower()
            return NumberLit(value, is_int)

        if tok.type is TokenType.STRING:
            self._advance()
            return StringLit(tok.value)

        if tok.matches_keyword("true", "false"):
            self._advance()
            return BoolLit(tok.value == "true")

        if tok.matches_keyword("case"):
            return self._parse_case()

        if tok.matches_symbol("("):
            self._advance()
            if self._peek().matches_keyword("select"):
                select = self._parse_select()
                self._expect_symbol(")")
                return ScalarSelect(select)
            inner = self.parse_expression()
            self._expect_symbol(")")
            return inner

        if tok.type is TokenType.IDENT:
            name = self._advance().value
            if self._peek().matches_symbol("("):
                call = self._parse_call(name)
                if self._peek().matches_keyword("over"):
                    return self._parse_over(call)
                return call
            parts = [name]
            while self._accept_symbol("."):
                parts.append(self._expect_ident())
            return Ident(tuple(parts))

        raise self._error(f"unexpected token {tok.value!r}")

    def _parse_call(self, name: str) -> SqlExpr:
        self._expect_symbol("(")
        if self._accept_symbol("*"):
            self._expect_symbol(")")
            return Call(name, (), star=True)
        distinct = self._accept_keyword("distinct") is not None
        args: List[SqlExpr] = []
        if not self._peek().matches_symbol(")"):
            args.append(self.parse_expression())
            while self._accept_symbol(","):
                args.append(self.parse_expression())
        self._expect_symbol(")")
        return Call(name, tuple(args), distinct=distinct)

    def _parse_over(self, call: SqlExpr) -> SqlExpr:
        """``OVER (ORDER BY col [ROWS n PRECEDING])`` following a call."""
        if not isinstance(call, Call):
            raise self._error("OVER must follow a function call")
        self._expect_keyword("over")
        self._expect_symbol("(")
        self._expect_keyword("order")
        self._expect_keyword("by")
        order = self.parse_expression()
        preceding = None
        if self._accept_keyword("rows"):
            tok = self._peek()
            if tok.type is not TokenType.NUMBER:
                raise self._error("ROWS expects a number")
            self._advance()
            preceding = int(float(tok.value))
            self._expect_keyword("preceding")
        self._expect_symbol(")")
        return WindowExpr(call, order, preceding)

    def _parse_case(self) -> SqlExpr:
        self._expect_keyword("case")
        whens: List[Tuple[SqlExpr, SqlExpr]] = []
        while self._accept_keyword("when"):
            cond = self.parse_expression()
            self._expect_keyword("then")
            value = self.parse_expression()
            whens.append((cond, value))
        if not whens:
            raise self._error("CASE requires at least one WHEN")
        otherwise = None
        if self._accept_keyword("else"):
            otherwise = self.parse_expression()
        self._expect_keyword("end")
        return CaseExpr(tuple(whens), otherwise)


def parse_sql(text: str) -> SelectStmt:
    """Parse one SELECT statement (trailing semicolon allowed)."""
    stripped = text.strip()
    if stripped.endswith(";"):
        stripped = stripped[:-1]
    return Parser(stripped).parse_statement()
