"""SQL abstract syntax tree.

Pure data: the parser builds these, the binder turns them into logical
plans.  Keeping the AST independent of plans lets tests assert on parse
results without a catalog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


class SqlExpr:
    """Base class for SQL expression AST nodes."""


@dataclass(frozen=True)
class NumberLit(SqlExpr):
    value: float
    is_integer: bool = False


@dataclass(frozen=True)
class StringLit(SqlExpr):
    value: str


@dataclass(frozen=True)
class BoolLit(SqlExpr):
    value: bool


@dataclass(frozen=True)
class Ident(SqlExpr):
    """A possibly-qualified identifier, e.g. ``s.buffer_time``."""

    parts: Tuple[str, ...]

    @property
    def name(self) -> str:
        return self.parts[-1]

    @property
    def qualifier(self) -> Optional[str]:
        return self.parts[0] if len(self.parts) > 1 else None


@dataclass(frozen=True)
class Call(SqlExpr):
    """A function or aggregate call; ``star`` marks ``COUNT(*)``."""

    name: str
    args: Tuple[SqlExpr, ...]
    distinct: bool = False
    star: bool = False


@dataclass(frozen=True)
class Unary(SqlExpr):
    op: str  # '-' or 'not'
    operand: SqlExpr


@dataclass(frozen=True)
class Binary(SqlExpr):
    """Arithmetic, comparison, AND and OR share this node; op disambiguates."""

    op: str
    left: SqlExpr
    right: SqlExpr


@dataclass(frozen=True)
class BetweenExpr(SqlExpr):
    value: SqlExpr
    low: SqlExpr
    high: SqlExpr
    negated: bool = False


@dataclass(frozen=True)
class InListExpr(SqlExpr):
    value: SqlExpr
    options: Tuple[SqlExpr, ...]
    negated: bool = False


@dataclass(frozen=True)
class InSelectExpr(SqlExpr):
    value: SqlExpr
    select: "SelectStmt"
    negated: bool = False


@dataclass(frozen=True)
class ScalarSelect(SqlExpr):
    """A parenthesized subquery used as a scalar value."""

    select: "SelectStmt"


@dataclass(frozen=True)
class WindowExpr(SqlExpr):
    """``func(arg) OVER (ORDER BY col [ROWS n PRECEDING])``.

    ``call`` is the windowed function (SUM/AVG/COUNT over an output
    column); ``preceding`` is the frame extent in rows before the current
    row, or None for a cumulative (unbounded) frame.
    """

    call: Call
    order: SqlExpr
    preceding: Optional[int] = None


@dataclass(frozen=True)
class CaseExpr(SqlExpr):
    whens: Tuple[Tuple[SqlExpr, SqlExpr], ...]
    otherwise: Optional[SqlExpr] = None


@dataclass(frozen=True)
class SelectItem:
    expr: SqlExpr
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return (self.alias or self.name).lower()


@dataclass(frozen=True)
class JoinClause:
    table: TableRef
    condition: SqlExpr
    how: str = "inner"


@dataclass(frozen=True)
class SelectStmt:
    items: Tuple[SelectItem, ...]
    from_table: TableRef
    joins: Tuple[JoinClause, ...] = ()
    where: Optional[SqlExpr] = None
    group_by: Tuple[SqlExpr, ...] = ()
    having: Optional[SqlExpr] = None
    order_by: Tuple[Tuple[SqlExpr, bool], ...] = ()  # (expr, descending)
    limit: Optional[int] = None
    distinct: bool = False
