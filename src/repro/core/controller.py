"""The G-OLA query controller (paper section 4, component 2).

Drives one online query end to end:

* randomly partitions the streamed relation into ``k`` uniform
  mini-batches (via :class:`~repro.storage.partition.MiniBatchPartitioner`);
* draws one shared Poisson bootstrap weight matrix per batch so every
  lineage block sees consistent simulated databases per trial;
* evaluates *static* subqueries (those over non-streamed dimension
  tables) exactly once, publishing them as certain (degenerate-range)
  slot states;
* per batch, steps the lineage blocks in dependency order — inner blocks
  refresh their uncertain values first, outer blocks then validate their
  guards (recomputing on a range violation) and fold the batch;
* assembles an :class:`~repro.core.result.OnlineSnapshot` from the main
  block after each batch.
"""

from __future__ import annotations

import hashlib
import logging
from contextlib import nullcontext
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..config import GolaConfig
from ..engine.aggregates import GroupIndex, UDAFRegistry
from ..engine.executor import BatchExecutor
from ..errors import CheckpointError, ExecutionError, ShardLostError
from ..estimate.bootstrap import PoissonWeightSource
from ..estimate.intervals import basic_intervals, relative_stdevs
from ..estimate.variation import VariationRange
from ..expr.expressions import Environment
from ..expr.functions import DEFAULT_FUNCTIONS, FunctionRegistry
from ..faults import (
    FaultInjector,
    RetryPolicy,
    RunCheckpoint,
    config_fingerprint,
    query_fingerprint,
)
from ..obs import Timer, Tracer, tracer_from_config
from ..parallel import ParallelExecutor
from ..plan.logical import Query
from ..storage.colstore.dataset import ColstoreDataset
from ..storage.colstore.projections import ProjectionStore
from ..storage.partition import MiniBatchPartitioner
from ..storage.table import Table
from .meta_plan import compile_meta_plan
from .result import ColumnErrors, OnlineSnapshot
from .uncertain import (
    TRI_FALSE,
    TRI_TRUE,
    KeyedSlotState,
    ScalarSlotState,
    SetSlotState,
)

logger = logging.getLogger("repro.core")


#: Shared no-op scope used when tracing is disabled (nullcontext is
#: stateless, so one instance is safely re-entered).
_NO_SCOPE = nullcontext()


class QueryController:
    """Coordinates one online query run."""

    def __init__(self, query: Query, tables: Dict[str, Table],
                 streamed: Dict[str, bool], config: GolaConfig,
                 udafs: Optional[UDAFRegistry] = None,
                 functions: FunctionRegistry = DEFAULT_FUNCTIONS,
                 tracer: Optional[Tracer] = None,
                 parallel: Optional[ParallelExecutor] = None,
                 scan_cache=None):
        self.query = query
        self.config = config
        self.tables = {k.lower(): v for k, v in tables.items()}
        self.streamed = {k.lower(): v for k, v in streamed.items()}
        # Colstore datasets stay lazy only on the streamed side; a
        # dimension table is read whole by static subqueries and block
        # joins, so materialize it up front (original row order, hence
        # bit-identical to registering the in-memory table).
        for name, value in list(self.tables.items()):
            if (isinstance(value, ColstoreDataset)
                    and not self.streamed.get(name, False)):
                self.tables[name] = value.to_table()
        self.udafs = udafs
        self.functions = functions
        self.tracer = (
            tracer if tracer is not None else tracer_from_config(config)
        )

        self.meta_plan = compile_meta_plan(
            query, self.tables, self.streamed, config, udafs
        )
        self.streamed_table = self.meta_plan.streamed_table
        self.streamed_tables = self.meta_plan.streamed_tables
        self.block_tables = self.meta_plan.block_tables
        self.runtimes = self.meta_plan.runtimes
        self.injector = FaultInjector.from_config(config, tracer=self.tracer)
        # A scheduler may inject a pool shared by many concurrent
        # queries; the controller then must not close it between runs.
        # An executor the controller builds itself shares the run's
        # injector, so supervised-pool fault streams are checkpointed
        # and restored with everything else.
        self._owns_parallel = parallel is None
        self.parallel = (
            parallel if parallel is not None
            else ParallelExecutor.from_config(
                config, tracer=self.tracer, injector=self.injector
            )
        )
        #: Optional shared :class:`~repro.serve.BatchScanCache`; when
        #: set, mini-batch partitions come from (and are shared through)
        #: the cache instead of being sliced per run.
        self.scan_cache = scan_cache
        for runtime in self.runtimes.values():
            runtime.tracer = self.tracer
            runtime.executor = self.parallel
        self._online_blocks = self.meta_plan.online_blocks
        #: Blocks grouped by dependency level: blocks in one level
        #: neither produce nor consume each other's slots, so they can
        #: fold a batch concurrently (publish stays sequential).
        self._block_levels = _block_levels(self._online_blocks)
        self.static_states: Dict[int, object] = {
            spec.slot: self._run_static(spec)
            for spec in self.meta_plan.static_specs
        }
        self.main_runtime = self.meta_plan.main_runtime
        self._retry_policy = RetryPolicy.from_faults(config.faults)
        self._run_state: Optional[dict] = None
        self._exec: Optional[dict] = None
        self._projection_ctx: Optional[dict] = None
        self._stopped = False

    # ------------------------------------------------------------------

    def _run_static(self, spec) -> object:
        """Evaluate a dimension-table subquery exactly, once.

        Static values are certain: their variation ranges are degenerate
        and their replicas constant, so consumers classify against them
        deterministically from the first batch.
        """
        executor = BatchExecutor(self.tables, self.udafs, self.functions,
                                 tracer=self.tracer)
        with self.tracer.span("phase:static", slot=spec.slot,
                              kind=spec.kind):
            result = executor.run_plan(spec.plan)
        trials = self.config.bootstrap_trials
        if spec.kind == "scalar":
            values = result.column(spec.value_column)
            value = float(values[0]) if len(values) else float("nan")
            return ScalarSlotState(
                slot=spec.slot, estimate=value,
                replicas=np.full(trials, value),
                vrange=VariationRange.degenerate(value),
            )
        if spec.kind == "keyed":
            keys = result.column(spec.key_column)
            values = result.column(spec.value_column).astype(np.float64)
            index = GroupIndex()
            index.encode(keys)
            return KeyedSlotState(
                slot=spec.slot, index=index, estimates=values,
                replicas=np.repeat(values[:, None], trials, axis=1),
                lows=values.copy(), highs=values.copy(),
            )
        members = set(result.column(spec.value_column).tolist())
        return SetSlotState(
            slot=spec.slot, point_members=members,
            tri_status={k: TRI_TRUE for k in members},
            default_status=TRI_FALSE,
        )

    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Stop after the current batch (the user is satisfied)."""
        self._stopped = True

    def run(self, resume_from: Union[RunCheckpoint, str, Path, None] = None,
            ) -> Iterator[OnlineSnapshot]:
        """Process mini-batches, yielding one snapshot per batch.

        A thin generator over the incremental :meth:`begin` /
        :meth:`step` API (what the serving scheduler drives directly);
        both paths produce bit-identical snapshot streams.

        With faults enabled, a batch whose load keeps failing past the
        retry budget is *skipped and reweighted*: it is dropped for good,
        the multiplicity scale becomes ``k / folded`` (sound because the
        uniform random batches are exchangeable), and every snapshot from
        then on is flagged ``degraded``.  On the clean path ``folded == i``
        so the output is bit-identical to a run without the subsystem.

        ``resume_from`` (a :class:`RunCheckpoint` or a path to one saved
        by :meth:`checkpoint`) continues the run after the checkpointed
        batch instead of from scratch.

        When the iteration ends — completion, :meth:`stop`, or the
        generator being closed — the run's mini-batch memory (retained
        batches, block caches, checkpoint state) is released, so a
        finished query never pins it for the session's lifetime.  Take
        checkpoints *during* the run.
        """
        self.begin(resume_from=resume_from)
        try:
            while True:
                snapshot = self.step()
                if snapshot is None:
                    return
                yield snapshot
                if self._stopped:
                    return
        finally:
            self.release()

    # -- the incremental (step) API --------------------------------------

    def begin(self, resume_from: Union[RunCheckpoint, str, Path,
                                       None] = None) -> None:
        """Start an incremental run: partition, seed weights, open spans.

        After ``begin()``, call :meth:`step` once per mini-batch until it
        returns None (or :attr:`is_done`), then :meth:`finish` (or
        :meth:`release` to also drop the run's memory).  :meth:`run`
        wraps exactly this sequence in a generator.
        """
        if self._exec is not None:
            self.finish()
        self._stopped = False
        tracer = self.tracer
        storage = self.config.storage
        batches: Dict[str, List[Table]] = {}
        datasets: Dict[str, Optional[ColstoreDataset]] = {}
        for name in self.streamed_tables:
            batches[name], datasets[name] = self._make_batches(name)
        dataset = datasets[self.streamed_table]
        weight_sources = {
            name: PoissonWeightSource(
                self.config.bootstrap_trials, self.config.seed,
                label=f"bootstrap:{name}", tracer=tracer,
            )
            for name in self.streamed_tables
        }
        retained: Dict[str, List[Tuple[Table, np.ndarray]]] = {
            name: [] for name in self.streamed_tables
        }
        k = self.config.num_batches
        folded = 0
        skipped: List[int] = []
        lost_rows = 0
        start_at = 1
        if resume_from is not None:
            ck = (
                resume_from if isinstance(resume_from, RunCheckpoint)
                else RunCheckpoint.load(resume_from)
            )
            ck.verify(self.query, self.config)
            self._restore_weights(weight_sources, ck.weights_rng_state)
            self.injector.restore(ck.injector_state)
            for block_id, state in ck.copy_block_states().items():
                self.runtimes[block_id].restore_checkpoint(state)
            retained = self._restore_retained(ck.retained)
            folded = ck.folded_count
            skipped = list(ck.skipped_batches)
            lost_rows = ck.lost_rows
            start_at = ck.batch_index + 1
            if tracer.enabled:
                tracer.event("checkpoint.resumed",
                             batch_index=ck.batch_index, folded=folded)
        self._projection_ctx = None
        # Projection warm-starts cover the common single-fact case; a
        # multi-fact run's fold state spans several weight streams and is
        # simply recomputed from scratch.
        if (dataset is not None and storage.projections
                and resume_from is None
                and len(self.streamed_tables) == 1):
            store = ProjectionStore(
                Path(storage.projection_dir) if storage.projection_dir
                else dataset.projection_dir
            )
            digests = self._block_digests()
            self._projection_ctx = {
                "store": store, "table_fp": dataset.fingerprint,
                "digests": digests,
            }
            pck = store.load(
                dataset.fingerprint, query_fingerprint(self.query),
                config_fingerprint(self.config), block_digests=digests,
            )
            if pck is not None:
                try:
                    pck.verify(self.query, self.config)
                except CheckpointError:
                    pck = None
            if (pck is not None and not pck.skipped_batches
                    and pck.batch_index < k):
                self._restore_weights(weight_sources, pck.weights_rng_state)
                self.injector.restore(pck.injector_state)
                for block_id, state in pck.copy_block_states().items():
                    self.runtimes[block_id].restore_checkpoint(state)
                folded = pck.folded_count
                lost_rows = pck.lost_rows
                start_at = pck.batch_index + 1
                if self.config.retain_batches:
                    # Projections persist no raw batches; rebuild the
                    # retained list by replaying a fresh weight stream
                    # over the already-folded prefix.  The draws are
                    # identical to the original run's (per-batch
                    # streams keyed by seed and batch size), so later
                    # guard-violation rebuilds stay bit-exact.
                    replay = PoissonWeightSource(
                        self.config.bootstrap_trials, self.config.seed,
                        label=f"bootstrap:{self.streamed_table}",
                        tracer=tracer,
                    )
                    for bi in range(pck.batch_index):
                        bt = batches[self.streamed_table][bi]
                        retained[self.streamed_table].append(
                            (bt, replay.batch_weights(bt.num_rows))
                        )
                if tracer.enabled:
                    tracer.event("colstore.projection_warm",
                                 batch_index=pck.batch_index,
                                 folded=folded)
                if tracer.metrics.enabled:
                    tracer.metrics.counter(
                        "colstore.projection_warm_starts"
                    ).inc()
        # The query span stays open across steps, so its elapsed time
        # includes consumer think time between snapshots; per-batch work
        # is what the child batch spans measure.  It is entered here and
        # immediately popped off the thread-local span stack so that a
        # scheduler interleaving many queries on one thread cannot nest
        # one query's spans under another's; step() re-parents under it
        # explicitly.
        qspan = tracer.span("query", streamed_table=self.streamed_table,
                            num_batches=k, blocks=len(self._online_blocks))
        qspan.__enter__()
        qspan_id = getattr(qspan, "span_id", None)
        if qspan_id is not None:
            stack = tracer._stack
            if stack and stack[-1] == qspan_id:
                stack.pop()
        self._exec = {
            "batches": batches, "weight_sources": weight_sources,
            "retained": retained, "k": k, "folded": folded,
            "skipped": skipped, "lost_rows": lost_rows,
            "cursor": start_at, "span": qspan, "span_id": qspan_id,
        }

    def _make_batches(self, name: str):
        """Mini-batch partitions (and the backing colstore dataset, if
        any) for one streamed relation.  Every streamed table is cut
        into the same ``num_batches`` under the same seed, so batch ``i``
        is a consistent uniform slice across facts."""
        table = self.tables[name]
        storage = self.config.storage
        dataset: Optional[ColstoreDataset] = (
            table if isinstance(table, ColstoreDataset) else None
        )
        if dataset is not None:
            if dataset.config_matches(self.config):
                # Stream the stored partition files directly (decoded
                # lazily, one batch per step); zone maps ride along on
                # each batch only when pruning is enabled.
                return dataset.batches(prune=storage.prune), dataset
            # The stored partitioning does not match this run's
            # config: materialize (original row order) and re-slice
            # like any in-memory table.  No warm starts — the
            # stored batch layout is not what this run folds.
            partitioner = MiniBatchPartitioner(
                self.config.num_batches, seed=self.config.seed,
                shuffle=self.config.shuffle,
            )
            return partitioner.partition(table.to_table()), None
        if self.scan_cache is not None:
            return self.scan_cache.partitions(
                name, table, self.config
            ), None
        partitioner = MiniBatchPartitioner(
            self.config.num_batches, seed=self.config.seed,
            shuffle=self.config.shuffle,
        )
        return partitioner.partition(table), None

    def _restore_weights(self, weight_sources: Dict[str, PoissonWeightSource],
                         state) -> None:
        """Restore per-table weight streams from a checkpoint.

        Accepts both the current per-table mapping and the legacy flat
        single-stream state (pre-multi-fact checkpoints/projections).
        """
        if set(state) == set(weight_sources) and all(
            isinstance(v, dict) for v in state.values()
        ):
            for name, source in weight_sources.items():
                source.restore_state(state[name])
        else:
            weight_sources[self.streamed_table].restore_state(state)

    def _restore_retained(self, retained):
        """Per-table retained batches from a checkpoint (legacy lists
        belong to the primary streamed table)."""
        if isinstance(retained, dict):
            return {
                name: list(retained.get(name, ()))
                for name in self.streamed_tables
            }
        out = {name: [] for name in self.streamed_tables}
        out[self.streamed_table] = list(retained)
        return out

    @property
    def is_done(self) -> bool:
        """True when no active run remains: finished, stopped, or never
        begun."""
        ex = self._exec
        if ex is None:
            return True
        return self._stopped or ex["cursor"] > ex["k"]

    def step(self) -> Optional[OnlineSnapshot]:
        """Process the next mini-batch and return its snapshot.

        Returns None once the run is complete (or stopped).  Requires a
        preceding :meth:`begin`.
        """
        ex = self._exec
        if ex is None:
            raise ExecutionError("no active run; call begin() first")
        if self.is_done:
            return None
        tracer = self.tracer
        faults = self.config.faults
        i = ex["cursor"]
        table_batches = {
            name: ex["batches"][name][i - 1]
            for name in self.streamed_tables
        }
        batch_rows = sum(b.num_rows for b in table_batches.values())
        with tracer.scoped_parent(ex["span_id"]) if tracer.enabled \
                else _NO_SCOPE:
            failures = self.injector.batch_load_failures(
                "controller.batch_load"
            )
            if self._retry_policy.gives_up_after(failures):
                ex["skipped"].append(i)
                ex["lost_rows"] += batch_rows
                snapshot = self._skip_batch(
                    i, batch_rows, ex["k"], ex["folded"], ex["skipped"],
                    ex["lost_rows"],
                )
            else:
                if failures:
                    if tracer.enabled:
                        tracer.event(
                            "fault.batch_retry", batch_index=i,
                            attempts=failures,
                            backoff_s=round(
                                self._retry_policy.total_delay(failures),
                                9,
                            ),
                        )
                    if tracer.metrics.enabled:
                        tracer.metrics.counter(
                            "faults.batch_retries"
                        ).inc(failures)
                ex["folded"] += 1
                try:
                    snapshot = self._run_batch(
                        i, table_batches, ex["weight_sources"],
                        ex["retained"], ex["k"], ex["folded"],
                        ex["skipped"], ex["lost_rows"],
                    )
                except ShardLostError as exc:
                    # The supervised pool exhausted its whole recovery
                    # ladder (retries + serial fallback) for a shard of
                    # this batch.  Degrade exactly like a failed batch
                    # load: skip-and-reweight over the batches actually
                    # folded, never abort the run.  Blocks that folded
                    # the batch before the loss keep their contribution
                    # — a slight approximation on an already-degraded
                    # (flagged) estimate.
                    ex["folded"] -= 1
                    ex["skipped"].append(i)
                    ex["lost_rows"] += batch_rows
                    for name, batch in table_batches.items():
                        kept = ex["retained"][name]
                        if kept and kept[-1][0] is batch:
                            # Keep retained batches consistent with the
                            # skip: a dropped batch must not resurface in
                            # later uncertain-set rebuilds.
                            kept.pop()
                    if tracer.enabled:
                        tracer.event("fault.shard_lost", batch_index=i,
                                     error=str(exc))
                    if tracer.metrics.enabled:
                        tracer.metrics.counter("faults.shards_lost").inc()
                    snapshot = self._skip_batch(
                        i, batch_rows, ex["k"], ex["folded"],
                        ex["skipped"], ex["lost_rows"],
                    )
            self._run_state = {
                "batch_index": i, "folded": ex["folded"],
                "skipped": list(ex["skipped"]),
                "lost_rows": ex["lost_rows"],
                "weight_sources": ex["weight_sources"],
                "retained": ex["retained"],
            }
            pj = self._projection_ctx
            if (pj is not None and not ex["skipped"] and i < ex["k"]
                    and i % self.config.storage.projection_every == 0):
                # Partial-aggregate projection: the fold state after
                # batch i, minus the retained raw batches (rebuilt at
                # warm start by replaying the stateless weight streams).
                pck = self.checkpoint()
                pck.retained = []
                pj["store"].save(pck, pj["table_fp"],
                                 block_digests=pj["digests"])
                if tracer.enabled:
                    tracer.event("colstore.projection_saved",
                                 batch_index=i)
            if (faults.checkpoint_every
                    and faults.checkpoint_path is not None
                    and i % faults.checkpoint_every == 0):
                self.checkpoint().save(faults.checkpoint_path)
                if tracer.enabled:
                    tracer.event("checkpoint.saved", batch_index=i)
        ex["cursor"] = i + 1
        return snapshot

    def finish(self) -> None:
        """End the incremental run: close the query span, release owned
        pools.  Idempotent; keeps checkpoint/block state (see
        :meth:`release` for the memory-dropping variant)."""
        ex = self._exec
        if ex is not None:
            self._exec = None
            span = ex["span"]
            if ex["span_id"] is not None:
                # The span was popped off the stack at begin(); exit it
                # against a clean scope so the record still closes
                # correctly when other queries' spans are open.
                with self.tracer.scoped_parent(None):
                    span.__exit__(None, None, None)
            else:
                span.__exit__(None, None, None)
        if self._owns_parallel:
            # Pools restart lazily, so closing here keeps the controller
            # reusable while releasing workers between runs.  close()
            # also settles pipelined folds and unlinks every
            # shared-memory segment this run published.
            self.parallel.close()
        else:
            # A shared executor (serve scheduler) outlives this query:
            # settle any fold still in flight so its shared-memory
            # lease is released now, not at scheduler shutdown.
            try:
                self.parallel.drain()
            except Exception:
                logger.warning(
                    "pending sharded folds abandoned at finish",
                    exc_info=True,
                )

    def release(self) -> None:
        """Finish the run and drop its mini-batch memory.

        Clears the retained raw batches, the checkpointable run state
        and every block runtime's folded state and uncertain-row cache,
        so a stopped or completed query stops pinning memory.  The
        controller stays reusable — the next :meth:`begin` (or
        :meth:`run`) starts from scratch.
        """
        self.finish()
        self._run_state = None
        for runtime in self.runtimes.values():
            runtime.reset()

    def checkpoint(self) -> RunCheckpoint:
        """Snapshot the run's resumable state after the latest batch.

        Valid between batches of an active :meth:`run`/:meth:`step`
        iteration; raises if no batch has been processed yet or the
        run's state has already been released (a finished run drops its
        checkpointable state — take checkpoints during the run).
        """
        state = self._run_state
        if state is None:
            raise CheckpointError(
                "no batches processed yet; nothing to checkpoint"
            )
        return RunCheckpoint(
            query_fp=query_fingerprint(self.query),
            config_fp=config_fingerprint(self.config),
            batch_index=state["batch_index"],
            folded_count=state["folded"],
            skipped_batches=list(state["skipped"]),
            lost_rows=state["lost_rows"],
            weights_rng_state={
                name: source.state_dict()
                for name, source in state["weight_sources"].items()
            },
            injector_state=self.injector.state_dict(),
            block_states={
                block_id: runtime.state_checkpoint()
                for block_id, runtime in self.runtimes.items()
            },
            retained={
                name: list(kept)
                for name, kept in state["retained"].items()
            },
        )

    # ------------------------------------------------------------------

    def _block_digests(self) -> Dict[str, str]:
        """Stable per-lineage-block plan digests.

        Projections are keyed by these in addition to the query and
        config fingerprints, so any change to how a block's plan prints
        (operator reordering, rewrite-rule changes across versions)
        invalidates persisted fold state instead of resuming into an
        incompatible shape.
        """
        return {
            block.block_id: hashlib.sha256(
                block.plan.describe().encode()
            ).hexdigest()[:16]
            for block in self._online_blocks
        }

    def _publish_chain(self, slot_states: Dict[int, object],
                       penv: Environment, scale: float):
        """Re-publish every block's current state and snapshot the main
        block — without folding anything (used for skipped batches)."""
        for block in self._online_blocks:
            if block.produces is None:
                continue
            runtime = self.runtimes[block.block_id]
            state = runtime.publish(penv, slot_states, scale)
            slot_states[block.produces] = state
            state.bind_point(penv)
        return self.main_runtime.snapshot_output(penv, slot_states, scale)

    def _column_errors(self, out_table: Table,
                       col_replicas: Dict[str, np.ndarray],
                       ) -> Dict[str, ColumnErrors]:
        errors: Dict[str, ColumnErrors] = {}
        for name, matrix in col_replicas.items():
            # Basic (reverse-percentile) bootstrap: reflecting the replica
            # quantiles around the estimate keeps coverage nominal even
            # for nested-aggregate queries whose per-replica thresholds
            # bias the replica distribution (measured by `repro fuzz`'s
            # sibling, `repro calibrate`).
            lows, highs = basic_intervals(
                out_table.column(name).astype(np.float64), matrix,
                self.config.confidence,
            )
            errors[name] = ColumnErrors(
                lows=lows, highs=highs,
                rel_stdev=relative_stdevs(
                    out_table.column(name).astype(np.float64), matrix,
                ),
            )
        return errors

    def _skip_batch(self, i: int, batch_rows: int, k: int, folded: int,
                    skipped: List[int], lost_rows: int) -> OnlineSnapshot:
        """Drop a permanently failed batch; snapshot without folding it.

        The estimate is re-derived from the ``folded`` batches actually
        seen with scale ``k / folded`` — the same uniform-random-sample
        estimator, just over one fewer batch.  Publishing is
        side-effect-free, so re-publishing here does not disturb the
        delta state the next folded batch builds on.
        """
        tracer = self.tracer
        with tracer.span("batch", batch_index=i, rows_in=batch_rows,
                         skipped=True) as bspan, Timer() as batch_timer:
            if tracer.enabled:
                tracer.event("fault.batch_skipped", batch_index=i,
                             rows_lost=batch_rows)
            scale = k / max(folded, 1)
            slot_states: Dict[int, object] = dict(self.static_states)
            penv = Environment(functions=self.functions)
            for state in slot_states.values():
                state.bind_point(penv)
            out_table, col_replicas = self._publish_chain(
                slot_states, penv, scale
            )
            errors = self._column_errors(out_table, col_replicas)
            bspan.set("rows_processed", 0)
        metrics = tracer.metrics
        if metrics.enabled:
            metrics.counter("faults.batches_skipped").inc()
            metrics.counter("faults.rows_lost").inc(batch_rows)
        return OnlineSnapshot(
            batch_index=i, num_batches=k, table=out_table,
            errors=errors, uncertain_sizes={}, rows_processed={},
            rebuilds=[], elapsed_s=batch_timer.elapsed_s,
            confidence=self.config.confidence,
            degraded=True, skipped_batches=list(skipped),
            lost_rows=lost_rows,
        )

    def _process_block(self, block, i: int, batch: Table, weights,
                       slot_states: Dict[int, object], penv: Environment,
                       retained, parent_id: Optional[int]):
        """Fold one batch into one block (possibly on a worker thread).

        Only this block's own runtime state is mutated; ``slot_states``,
        ``penv`` and ``retained`` are read-only here, which is what makes
        same-level fan-out safe.  Spans are re-parented under the batch
        span so concurrent block traces nest correctly.
        """
        tracer = self.tracer
        with tracer.scoped_parent(parent_id):
            with tracer.span("block", block=block.block_id) as bl:
                stats = self.runtimes[block.block_id].process_batch(
                    i, batch, weights, slot_states, penv,
                    retained=retained,
                )
                bl.set("rows_in", stats.rows_in)
                bl.set("rows_processed", stats.rows_processed)
                bl.set("uncertain", stats.uncertain_size)
                if stats.rebuilt:
                    bl.set("rebuilt", True)
        return stats, bl.elapsed_s

    def _run_batch(self, i: int, table_batches: Dict[str, Table],
                   weight_sources: Dict[str, PoissonWeightSource],
                   retained: Dict[str, List[Tuple[Table, np.ndarray]]],
                   k: int, folded: int, skipped: List[int],
                   lost_rows: int) -> OnlineSnapshot:
        """Fold one mini-batch into every block and snapshot the result.

        ``table_batches`` maps each streamed relation to its ``i``-th
        mini-batch; each block folds its own relation's batch under that
        relation's weight stream.  Trial ``j`` pairs across tables —
        every block's j-th replica sees the same simulated database —
        which is what makes multi-fact variance estimates consistent
        under correlated resampling.
        """
        tracer = self.tracer
        phases: Optional[Dict[str, float]] = (
            {"fold": 0.0, "publish": 0.0, "snapshot": 0.0}
            if tracer.enabled else None
        )
        batch = table_batches[self.streamed_table]
        with tracer.span("batch", batch_index=i,
                         rows_in=batch.num_rows) as bspan, \
                Timer() as batch_timer:
            weights = {
                name: weight_sources[name].batch_weights(
                    table_batches[name].num_rows
                )
                for name in self.streamed_tables
            }
            if self.config.retain_batches:
                for name in self.streamed_tables:
                    retained[name].append(
                        (table_batches[name], weights[name])
                    )
            # Multiplicity over batches actually folded: k/i on the clean
            # path, k/folded after a skip (skip-and-reweight).  Every
            # streamed table is cut into the same k batches, so one scale
            # serves all of them.
            scale = k / folded

            slot_states: Dict[int, object] = dict(self.static_states)
            penv = Environment(functions=self.functions)
            for state in slot_states.values():
                state.bind_point(penv)

            rows_processed: Dict[str, int] = {}
            uncertain_sizes: Dict[str, int] = {}
            rebuilds: List[str] = []
            retain = self.config.retain_batches
            parent_id = getattr(bspan, "span_id", None)

            # Blocks within one level are independent (they only consume
            # slots published by earlier levels), so the level can fan
            # out across threads.  Publishing stays sequential, in block
            # order, so the environment each later level sees is exactly
            # what the serial loop would have produced.
            for level in self._block_levels:
                results = self.parallel.map_block_tasks([
                    (lambda b=block, t=self.block_tables[block.block_id]:
                        self._process_block(
                            b, i, table_batches[t], weights[t],
                            slot_states, penv,
                            retained[t] if retain else None, parent_id))
                    for block in level
                ])
                for block, (stats, elapsed_s) in zip(level, results):
                    if phases is not None:
                        phases["fold"] += elapsed_s
                    rows_processed[block.block_id] = stats.rows_processed
                    uncertain_sizes[block.block_id] = stats.uncertain_size
                    if stats.rebuilt:
                        rebuilds.append(block.block_id)
                for block in level:
                    if block.produces is None:
                        continue
                    runtime = self.runtimes[block.block_id]
                    with tracer.span("phase:publish",
                                     block=block.block_id) as pub:
                        state = runtime.publish(penv, slot_states, scale)
                    if phases is not None:
                        phases["publish"] += pub.elapsed_s
                    slot_states[block.produces] = state
                    state.bind_point(penv)

            with tracer.span("phase:snapshot") as snap_span:
                out_table, col_replicas = self.main_runtime.snapshot_output(
                    penv, slot_states, scale
                )
                errors = self._column_errors(out_table, col_replicas)
            if phases is not None:
                phases["snapshot"] += snap_span.elapsed_s
            total_rows = sum(rows_processed.values())
            total_uncertain = sum(uncertain_sizes.values())
            bspan.set("rows_processed", total_rows)
            bspan.set("uncertain", total_uncertain)
            bspan.set("rebuilds", len(rebuilds))
        # The snapshot above is the last consumer of this batch's dense
        # weights; drop the cached matrices so the retained-batch lists
        # hold spec-only handles.  A later guard rebuild regenerates
        # identical columns from the stateless streams.
        for handle in weights.values():
            handle.release()
        elapsed = batch_timer.elapsed_s
        metrics = tracer.metrics
        if metrics.enabled:
            metrics.counter("controller.batches").inc()
            metrics.counter("controller.rows_processed").inc(total_rows)
            metrics.counter("controller.rebuilds").inc(len(rebuilds))
            metrics.gauge("controller.uncertain").set(total_uncertain)
            metrics.histogram("controller.batch_seconds").observe(elapsed)
        return OnlineSnapshot(
            batch_index=i, num_batches=k, table=out_table,
            errors=errors, uncertain_sizes=uncertain_sizes,
            rows_processed=rows_processed, rebuilds=rebuilds,
            elapsed_s=elapsed, confidence=self.config.confidence,
            phase_seconds=phases,
            degraded=bool(skipped),
            skipped_batches=list(skipped) if skipped else None,
            lost_rows=lost_rows,
        )


def _block_levels(blocks) -> List[List]:
    """Group topologically ordered lineage blocks into dependency levels.

    A block lands one level below the deepest producer it consumes from;
    blocks that only consume static slots (produced by no online block)
    land at level 0.  Blocks sharing a level neither produce nor consume
    each other's slots, so one batch can be folded into all of them
    concurrently.  Within a level the original block order is kept, which
    keeps sequential publishing (and thus the output) identical to the
    plain topological loop.
    """
    placed: Dict[int, int] = {}
    levels: List[List] = []
    for block in blocks:
        level = 0
        for slot in block.consumes:
            if slot in placed:
                level = max(level, placed[slot] + 1)
        if level == len(levels):
            levels.append([])
        levels[level].append(block)
        if block.produces is not None:
            placed[block.produces] = level
    return levels
