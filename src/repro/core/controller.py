"""The G-OLA query controller (paper section 4, component 2).

Drives one online query end to end:

* randomly partitions the streamed relation into ``k`` uniform
  mini-batches (via :class:`~repro.storage.partition.MiniBatchPartitioner`);
* draws one shared Poisson bootstrap weight matrix per batch so every
  lineage block sees consistent simulated databases per trial;
* evaluates *static* subqueries (those over non-streamed dimension
  tables) exactly once, publishing them as certain (degenerate-range)
  slot states;
* per batch, steps the lineage blocks in dependency order — inner blocks
  refresh their uncertain values first, outer blocks then validate their
  guards (recomputing on a range violation) and fold the batch;
* assembles an :class:`~repro.core.result.OnlineSnapshot` from the main
  block after each batch.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..config import GolaConfig
from ..engine.aggregates import GroupIndex, UDAFRegistry
from ..engine.executor import BatchExecutor
from ..estimate.bootstrap import PoissonWeightSource
from ..estimate.intervals import percentile_intervals, relative_stdevs
from ..estimate.variation import VariationRange
from ..expr.expressions import Environment
from ..expr.functions import DEFAULT_FUNCTIONS, FunctionRegistry
from ..obs import Timer, Tracer, tracer_from_config
from ..plan.logical import Query
from ..storage.partition import MiniBatchPartitioner
from ..storage.table import Table
from .meta_plan import compile_meta_plan
from .result import ColumnErrors, OnlineSnapshot
from .uncertain import (
    TRI_FALSE,
    TRI_TRUE,
    KeyedSlotState,
    ScalarSlotState,
    SetSlotState,
)


class QueryController:
    """Coordinates one online query run."""

    def __init__(self, query: Query, tables: Dict[str, Table],
                 streamed: Dict[str, bool], config: GolaConfig,
                 udafs: Optional[UDAFRegistry] = None,
                 functions: FunctionRegistry = DEFAULT_FUNCTIONS,
                 tracer: Optional[Tracer] = None):
        self.query = query
        self.config = config
        self.tables = {k.lower(): v for k, v in tables.items()}
        self.streamed = {k.lower(): v for k, v in streamed.items()}
        self.udafs = udafs
        self.functions = functions
        self.tracer = (
            tracer if tracer is not None else tracer_from_config(config)
        )

        self.meta_plan = compile_meta_plan(
            query, self.tables, self.streamed, config, udafs
        )
        self.streamed_table = self.meta_plan.streamed_table
        self.runtimes = self.meta_plan.runtimes
        for runtime in self.runtimes.values():
            runtime.tracer = self.tracer
        self._online_blocks = self.meta_plan.online_blocks
        self.static_states: Dict[int, object] = {
            spec.slot: self._run_static(spec)
            for spec in self.meta_plan.static_specs
        }
        self.main_runtime = self.meta_plan.main_runtime
        self._stopped = False

    # ------------------------------------------------------------------

    def _run_static(self, spec) -> object:
        """Evaluate a dimension-table subquery exactly, once.

        Static values are certain: their variation ranges are degenerate
        and their replicas constant, so consumers classify against them
        deterministically from the first batch.
        """
        executor = BatchExecutor(self.tables, self.udafs, self.functions,
                                 tracer=self.tracer)
        with self.tracer.span("phase:static", slot=spec.slot,
                              kind=spec.kind):
            result = executor.run_plan(spec.plan)
        trials = self.config.bootstrap_trials
        if spec.kind == "scalar":
            values = result.column(spec.value_column)
            value = float(values[0]) if len(values) else float("nan")
            return ScalarSlotState(
                slot=spec.slot, estimate=value,
                replicas=np.full(trials, value),
                vrange=VariationRange.degenerate(value),
            )
        if spec.kind == "keyed":
            keys = result.column(spec.key_column)
            values = result.column(spec.value_column).astype(np.float64)
            index = GroupIndex()
            index.encode(keys)
            return KeyedSlotState(
                slot=spec.slot, index=index, estimates=values,
                replicas=np.repeat(values[:, None], trials, axis=1),
                lows=values.copy(), highs=values.copy(),
            )
        members = set(result.column(spec.value_column).tolist())
        return SetSlotState(
            slot=spec.slot, point_members=members,
            tri_status={k: TRI_TRUE for k in members},
            default_status=TRI_FALSE,
        )

    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Stop after the current batch (the user is satisfied)."""
        self._stopped = True

    def run(self) -> Iterator[OnlineSnapshot]:
        """Process mini-batches, yielding one snapshot per batch."""
        self._stopped = False
        tracer = self.tracer
        table = self.tables[self.streamed_table]
        partitioner = MiniBatchPartitioner(
            self.config.num_batches, seed=self.config.seed,
            shuffle=self.config.shuffle,
        )
        batches = partitioner.partition(table)
        weight_source = PoissonWeightSource(
            self.config.bootstrap_trials, self.config.seed,
            label=f"bootstrap:{self.streamed_table}",
            tracer=tracer,
        )
        retained: List[Tuple[Table, np.ndarray]] = []
        k = self.config.num_batches

        # The query span stays open across yields, so its elapsed time
        # includes consumer think time between snapshots; per-batch work
        # is what the child batch spans measure.
        with tracer.span("query", streamed_table=self.streamed_table,
                         num_batches=k, blocks=len(self._online_blocks)):
            for i, batch in enumerate(batches, start=1):
                snapshot = self._run_batch(
                    i, batch, weight_source, retained, k
                )
                yield snapshot
                if self._stopped:
                    return

    def _run_batch(self, i: int, batch: Table,
                   weight_source: PoissonWeightSource,
                   retained: List[Tuple[Table, np.ndarray]],
                   k: int) -> OnlineSnapshot:
        """Fold one mini-batch into every block and snapshot the result."""
        tracer = self.tracer
        phases: Optional[Dict[str, float]] = (
            {"fold": 0.0, "publish": 0.0, "snapshot": 0.0}
            if tracer.enabled else None
        )
        with tracer.span("batch", batch_index=i,
                         rows_in=batch.num_rows) as bspan, \
                Timer() as batch_timer:
            weights = weight_source.weights_for(batch.num_rows)
            if self.config.retain_batches:
                retained.append((batch, weights))
            scale = k / i

            slot_states: Dict[int, object] = dict(self.static_states)
            penv = Environment(functions=self.functions)
            for state in slot_states.values():
                state.bind_point(penv)

            rows_processed: Dict[str, int] = {}
            uncertain_sizes: Dict[str, int] = {}
            rebuilds: List[str] = []

            for block in self._online_blocks:
                runtime = self.runtimes[block.block_id]
                with tracer.span("block", block=block.block_id) as bl:
                    stats = runtime.process_batch(
                        i, batch, weights, slot_states, penv,
                        retained=(
                            retained if self.config.retain_batches else None
                        ),
                    )
                    bl.set("rows_in", stats.rows_in)
                    bl.set("rows_processed", stats.rows_processed)
                    bl.set("uncertain", stats.uncertain_size)
                    if stats.rebuilt:
                        bl.set("rebuilt", True)
                if phases is not None:
                    phases["fold"] += bl.elapsed_s
                rows_processed[block.block_id] = stats.rows_processed
                uncertain_sizes[block.block_id] = stats.uncertain_size
                if stats.rebuilt:
                    rebuilds.append(block.block_id)
                if block.produces is not None:
                    with tracer.span("phase:publish",
                                     block=block.block_id) as pub:
                        state = runtime.publish(penv, slot_states, scale)
                    if phases is not None:
                        phases["publish"] += pub.elapsed_s
                    slot_states[block.produces] = state
                    state.bind_point(penv)

            with tracer.span("phase:snapshot") as snap_span:
                out_table, col_replicas = self.main_runtime.snapshot_output(
                    penv, slot_states, scale
                )
                errors: Dict[str, ColumnErrors] = {}
                for name, matrix in col_replicas.items():
                    lows, highs = percentile_intervals(
                        matrix, self.config.confidence
                    )
                    errors[name] = ColumnErrors(
                        lows=lows, highs=highs,
                        rel_stdev=relative_stdevs(
                            out_table.column(name).astype(np.float64),
                            matrix,
                        ),
                    )
            if phases is not None:
                phases["snapshot"] += snap_span.elapsed_s
            total_rows = sum(rows_processed.values())
            total_uncertain = sum(uncertain_sizes.values())
            bspan.set("rows_processed", total_rows)
            bspan.set("uncertain", total_uncertain)
            bspan.set("rebuilds", len(rebuilds))
        elapsed = batch_timer.elapsed_s
        metrics = tracer.metrics
        if metrics.enabled:
            metrics.counter("controller.batches").inc()
            metrics.counter("controller.rows_processed").inc(total_rows)
            metrics.counter("controller.rebuilds").inc(len(rebuilds))
            metrics.gauge("controller.uncertain").set(total_uncertain)
            metrics.histogram("controller.batch_seconds").observe(elapsed)
        return OnlineSnapshot(
            batch_index=i, num_batches=k, table=out_table,
            errors=errors, uncertain_sizes=uncertain_sizes,
            rows_processed=rows_processed, rebuilds=rebuilds,
            elapsed_s=elapsed, confidence=self.config.confidence,
            phase_seconds=phases,
        )
