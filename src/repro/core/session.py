"""The public entry point: sessions and online queries.

Typical use::

    from repro import GolaSession, GolaConfig

    session = GolaSession(GolaConfig(num_batches=100, seed=7))
    session.register_table("sessions", table)
    query = session.sql(
        "SELECT AVG(play_time) FROM sessions "
        "WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)"
    )
    for snapshot in query.run_online():
        print(snapshot.describe())
        if snapshot.relative_stdev < 0.02:
            query.stop()          # satisfied — the OLA contract
    truth = session.execute_batch(query)
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Union

from ..config import GolaConfig
from ..engine.aggregates import UDAFRegistry, UDAFSpec
from ..engine.executor import BatchExecutor
from ..errors import QueryStopped
from ..expr.functions import FunctionRegistry
from ..faults import FaultInjector, RowQuarantine, RunCheckpoint
from ..obs import Tracer
from ..plan.binder import Binder
from ..plan.logical import Query
from ..plan.rewrite import rewrite_query
from ..sql.parser import parse_sql
from ..storage.catalog import Catalog
from ..storage.io import read_csv
from ..storage.table import Table
from .controller import QueryController
from .result import OnlineSnapshot


class OnlineQuery:
    """A bound query ready for online (or exact) execution."""

    def __init__(self, session: "GolaSession", query: Query, sql: str = ""):
        self.session = session
        self.query = query
        self.sql = sql
        self._controller: Optional[QueryController] = None

    @property
    def plan_description(self) -> str:
        """Human-readable logical plan (main plan + subquery blocks)."""
        return self.query.describe()

    def explain(self) -> str:
        """The full online execution strategy for this query.

        Shows the logical plan, then the compiled meta plan: lineage
        blocks in dependency order, what each consumes, how many
        uncertain predicates each classifies, and which subqueries are
        static (evaluated once over dimension tables).
        """
        from .meta_plan import compile_meta_plan

        meta = compile_meta_plan(
            self.query, self.session._tables(),
            {name: self.session.catalog.is_streamed(name)
             for name in self.session.catalog},
            self.session.config, self.session.udafs,
        )
        return (
            self.query.describe()
            + "\n\nonline meta plan:\n"
            + meta.describe()
        )

    def run_online(self, config: Optional[GolaConfig] = None,
                   resume_from: Optional[Union[RunCheckpoint, str]] = None,
                   ) -> Iterator[OnlineSnapshot]:
        """Process mini-batches, yielding one snapshot per batch.

        The iterator stops early after :meth:`stop` is called (the user's
        accuracy is met) or runs to the final batch, whose snapshot equals
        the exact answer up to bootstrap error bars collapsing.

        ``resume_from`` — a :class:`~repro.faults.RunCheckpoint` (from
        :meth:`checkpoint`) or a path to a saved one — continues a prior
        run from its last checkpointed batch instead of from scratch.
        """
        if self._controller is not None:
            # A superseded run must not keep pinning retained batches
            # and block caches for the session's lifetime.
            self._controller.release()
        self._controller = self.session._make_controller(
            self.query, config or self.session.config
        )
        return self._controller.run(resume_from=resume_from)

    def stop(self) -> None:
        """Stop the online run after the batch currently in flight.

        The run's iterator then ends, releasing its mini-batch memory
        (retained batches, block caches, checkpoint state) — a stopped
        query does not pin memory for the session's lifetime.
        """
        if self._controller is None:
            raise QueryStopped("query is not running")
        self._controller.stop()

    def checkpoint(self) -> RunCheckpoint:
        """Checkpoint the active run's state after its latest batch.

        Feed the result (or a path it was :meth:`~repro.faults.
        RunCheckpoint.save`-d to) back via ``run_online(resume_from=...)``
        to continue where the run left off.
        """
        if self._controller is None:
            raise QueryStopped("query is not running")
        return self._controller.checkpoint()

    def run_until(self, relative_stdev: float,
                  config: Optional[GolaConfig] = None) -> OnlineSnapshot:
        """Run until the (scalar) answer reaches the target accuracy.

        Returns the first snapshot whose relative standard deviation is at
        or below the target, or the final snapshot if the target is never
        met — the S-AQP "accuracy contract" G-OLA satisfies without
        predicting a sample size (paper section 1).
        """
        last = None
        for snapshot in self.run_online(config):
            last = snapshot
            try:
                reached = snapshot.relative_stdev <= relative_stdev
            except ValueError:
                reached = False
            if reached:
                self.stop()
        if last is None:
            raise QueryStopped("no batches were processed")
        return last

    def run_to_completion(self, config: Optional[GolaConfig] = None
                          ) -> OnlineSnapshot:
        """Process every batch and return the final snapshot."""
        last = None
        for snapshot in self.run_online(config):
            last = snapshot
        if last is None:
            raise QueryStopped("no batches were processed")
        return last


class GolaSession:
    """A FluoDB-style session: catalog + registries + execution services.

    ``tracer`` injects an explicit :class:`repro.obs.Tracer` shared by
    every controller and batch executor the session creates; when None,
    each run builds one from the config's ``trace``/``trace_path``/
    ``metrics`` knobs (a no-op tracer when those are off).
    """

    def __init__(self, config: Optional[GolaConfig] = None,
                 tracer: Optional[Tracer] = None):
        self.config = config or GolaConfig()
        self.catalog = Catalog()
        self.functions = FunctionRegistry()
        self.udafs = UDAFRegistry()
        self.tracer = tracer
        self.last_quarantine: Optional[RowQuarantine] = None

    # -- catalog ---------------------------------------------------------

    def register_table(self, name: str, table: Table,
                       streamed: bool = True, replace: bool = False) -> None:
        """Register an in-memory table.

        ``streamed=True`` marks the relation for online mini-batch
        processing (the fact table); dimension tables should pass
        ``streamed=False`` and are then read in entirety (paper
        section 2's per-relation control).
        """
        self.catalog.register(name, table, streamed=streamed, replace=replace)

    def register_colstore(self, name: str, dataset, streamed: bool = True,
                          replace: bool = False):
        """Register a converted colstore dataset (see ``repro convert``).

        ``dataset`` is a dataset directory path or an already-opened
        :class:`~repro.storage.colstore.ColstoreDataset`.  A streamed
        registration keeps the partition files on disk and decodes them
        one mini-batch per step (memory-mapped by default), so datasets
        larger than RAM stream through online queries; a dimension
        (``streamed=False``) registration is materialized in full when a
        query first needs it.  Returns the dataset.
        """
        from ..storage.colstore import ColstoreDataset, open_dataset

        if not isinstance(dataset, ColstoreDataset):
            dataset = open_dataset(dataset, mmap=self.config.storage.mmap)
        self.catalog.register(name, dataset, streamed=streamed,
                              replace=replace)
        return dataset

    def load_csv(self, name: str, path, streamed: bool = True) -> Table:
        """Load a CSV file and register it under ``name``.

        With faults enabled in the session config, malformed rows are
        quarantined (up to ``faults.row_error_budget``) instead of
        aborting the load; the collected rows are kept on
        ``session.last_quarantine`` for inspection.
        """
        faults = self.config.faults
        quarantine = None
        injector = None
        if faults.enabled:
            quarantine = RowQuarantine(
                error_budget=faults.row_error_budget, label=name,
            )
            if self.tracer is not None:
                quarantine.tracer = self.tracer
            if faults.row_corruption_prob > 0.0:
                injector = FaultInjector.from_config(
                    self.config, tracer=self.tracer
                )
        table = read_csv(path, quarantine=quarantine, injector=injector)
        self.last_quarantine = quarantine
        self.register_table(name, table, streamed=streamed)
        return table

    # -- extensibility ----------------------------------------------------

    def register_udf(self, name: str, fn: Callable) -> None:
        """Register a vectorized scalar UDF callable from SQL."""
        self.functions.register(name, fn)

    def register_udaf(self, name: str, init: Callable, update: Callable,
                      merge: Callable, finalize: Callable) -> None:
        """Register a mergeable user-defined aggregate.

        ``finalize(state, scale)`` receives the multiplicity scale so
        SUM-like UDAFs can honour the multiset semantics.
        """
        self.udafs.register(
            UDAFSpec(name=name, init=init, update=update, merge=merge,
                     finalize=finalize)
        )

    # -- queries -----------------------------------------------------------

    def sql(self, text: str) -> OnlineQuery:
        """Parse, bind and optimize a SQL query against the catalog."""
        stmt = parse_sql(text)
        query = Binder(self.catalog, self.udafs).bind(stmt)
        query = rewrite_query(query)
        return OnlineQuery(self, query, sql=text)

    def execute_batch(self, query: Union[OnlineQuery, str]) -> Table:
        """Run a query exactly (the traditional batch engine)."""
        if isinstance(query, str):
            query = self.sql(query)
        tables = {
            # The exact engine scans whole relations; materialize any
            # registered colstore dataset (original row order) up front.
            name: value.to_table()
            if not isinstance(value, Table) and hasattr(value, "to_table")
            else value
            for name, value in self._tables().items()
        }
        executor = BatchExecutor(
            tables, self.udafs, self.functions,
            tracer=self.tracer,
        )
        return executor.execute(query.query)

    # -- internal ----------------------------------------------------------

    def _tables(self) -> Dict[str, Table]:
        return {name: self.catalog.get(name) for name in self.catalog}

    def _make_controller(self, query: Query, config: GolaConfig,
                         parallel=None, scan_cache=None,
                         tracer: Optional[Tracer] = None) -> QueryController:
        """Build a controller; ``parallel``/``scan_cache``/``tracer``
        let the serving scheduler share one worker pool, one batch-scan
        cache and one tracer across every concurrent query."""
        streamed = {
            name: self.catalog.is_streamed(name) for name in self.catalog
        }
        return QueryController(
            query, self._tables(), streamed, config,
            udafs=self.udafs, functions=self.functions,
            tracer=tracer if tracer is not None else self.tracer,
            parallel=parallel, scan_cache=scan_cache,
        )
