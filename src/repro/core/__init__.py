"""G-OLA core: delta maintenance, classification, controller, sessions."""

from .classify import IntervalEnv, classify, interval_eval, tri_eval
from .controller import QueryController
from .delta import BlockRuntime, CachedRows, parse_block
from .lineage import lineage_columns
from .meta_plan import MetaPlan, compile_meta_plan
from .result import ColumnErrors, OnlineSnapshot
from .session import GolaSession, OnlineQuery
from .uncertain import (
    TRI_FALSE,
    TRI_TRUE,
    TRI_UNKNOWN,
    KeyedSlotState,
    ScalarSlotState,
    SetSlotState,
)

__all__ = [
    "BlockRuntime",
    "CachedRows",
    "ColumnErrors",
    "GolaSession",
    "IntervalEnv",
    "KeyedSlotState",
    "MetaPlan",
    "OnlineQuery",
    "OnlineSnapshot",
    "QueryController",
    "ScalarSlotState",
    "SetSlotState",
    "TRI_FALSE",
    "TRI_TRUE",
    "TRI_UNKNOWN",
    "classify",
    "compile_meta_plan",
    "interval_eval",
    "lineage_columns",
    "parse_block",
    "tri_eval",
]
