"""Uncertain/deterministic tuple classification (paper section 3.2).

At any predicate ``x θ y`` involving uncertain values, G-OLA classifies
input tuples into the *deterministic set* (``R(x) ∩ R(y) = ∅`` — the
predicate's outcome can never flip during online processing) and the
*uncertain set* (the ranges overlap — the outcome may change as the inner
aggregates refine).

We implement this with interval arithmetic plus Kleene three-valued
logic: every expression evaluates to a per-row interval ``[low, high]``
of values it can take across the variation ranges of the uncertain
values it references; comparisons then yield TRUE (holds over the whole
range product), FALSE (fails over the whole range product) or UNKNOWN.
Tuples evaluating TRUE are deterministic-pass, FALSE deterministic-fail
and UNKNOWN uncertain.  This single mechanism covers scalar thresholds
(SBI), correlated per-group thresholds (TPC-H Q17), HAVING thresholds
(Q11) and uncertain IN-membership (Q18).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from ..errors import ExecutionError
from ..expr.expressions import (
    Between,
    BinaryOp,
    BooleanOp,
    CaseWhen,
    Comparison,
    Environment,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    Negate,
    SubqueryRef,
)
from ..storage.table import Table
from .uncertain import (
    TRI_FALSE,
    TRI_TRUE,
    TRI_UNKNOWN,
    KeyedSlotState,
    ScalarSlotState,
    SetSlotState,
)

# Monotone-increasing scalar functions through which intervals map
# endpoint-to-endpoint.
_MONOTONE_FUNCTIONS = frozenset({"sqrt", "exp", "ln", "log", "log2", "log10"})


@dataclass
class IntervalEnv:
    """Everything interval evaluation needs.

    ``slots`` holds the current slot states; ``point`` is the matching
    point environment (used verbatim for certain sub-expressions, which
    collapse to degenerate intervals).
    """

    slots: Dict[int, object] = field(default_factory=dict)
    point: Environment = field(default_factory=Environment)


def _point(expr: Expression, table: Table, env: IntervalEnv) -> np.ndarray:
    raw = expr.evaluate(table, env.point)
    arr = np.asarray(raw, dtype=np.float64)
    if arr.ndim == 0:
        arr = np.full(table.num_rows, float(arr))
    return arr


def interval_eval(expr: Expression, table: Table,
                  env: IntervalEnv) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row value intervals of ``expr`` across all variation ranges.

    Certain expressions return degenerate intervals; conservative
    over-approximation (never under-approximation) is used where exact
    interval propagation is not available, so classification errs toward
    "uncertain" — which is always safe, merely less efficient.
    """
    if not expr.subquery_slots():
        point = _point(expr, table, env)
        return point, point.copy()

    if isinstance(expr, SubqueryRef):
        state = env.slots.get(expr.slot)
        if state is None:
            raise ExecutionError(f"no state for subquery slot {expr.slot}")
        if isinstance(state, ScalarSlotState):
            n = table.num_rows
            return (np.full(n, state.vrange.low),
                    np.full(n, state.vrange.high))
        if isinstance(state, KeyedSlotState):
            keys = np.asarray(expr.correlation.evaluate(table, env.point))
            return state.interval_for_keys(keys)
        raise ExecutionError(
            f"slot {expr.slot} is a set; use IN, not a scalar reference"
        )

    if isinstance(expr, Negate):
        low, high = interval_eval(expr.operand, table, env)
        return -high, -low

    if isinstance(expr, BinaryOp):
        a_lo, a_hi = interval_eval(expr.left, table, env)
        b_lo, b_hi = interval_eval(expr.right, table, env)
        if expr.op == "+":
            return a_lo + b_lo, a_hi + b_hi
        if expr.op == "-":
            return a_lo - b_hi, a_hi - b_lo
        if expr.op == "*":
            products = np.stack(
                [a_lo * b_lo, a_lo * b_hi, a_hi * b_lo, a_hi * b_hi]
            )
            return products.min(axis=0), products.max(axis=0)
        if expr.op == "/":
            crosses_zero = (b_lo <= 0) & (b_hi >= 0)
            safe_b_lo = np.where(crosses_zero, 1.0, b_lo)
            safe_b_hi = np.where(crosses_zero, 1.0, b_hi)
            quotients = np.stack(
                [a_lo / safe_b_lo, a_lo / safe_b_hi,
                 a_hi / safe_b_lo, a_hi / safe_b_hi]
            )
            low = np.where(crosses_zero, -np.inf, quotients.min(axis=0))
            high = np.where(crosses_zero, np.inf, quotients.max(axis=0))
            return low, high
        # Modulo over an uncertain operand: conservative.
        n = table.num_rows
        return np.full(n, -np.inf), np.full(n, np.inf)

    if isinstance(expr, FunctionCall) and expr.name in _MONOTONE_FUNCTIONS:
        low, high = interval_eval(expr.args[0], table, env)
        fn = env.point.functions.lookup(expr.name)
        with np.errstate(divide="ignore", invalid="ignore"):
            return fn(low), fn(high)

    if isinstance(expr, CaseWhen):
        # Union of reachable branch intervals under three-valued guards.
        n = table.num_rows
        low = np.full(n, np.inf)
        high = np.full(n, -np.inf)
        undecided = np.ones(n, dtype=bool)
        for cond, value in expr.whens:
            tri = tri_eval(cond, table, env)
            reachable = undecided & (tri != TRI_FALSE)
            v_lo, v_hi = interval_eval(value, table, env)
            low = np.where(reachable, np.minimum(low, v_lo), low)
            high = np.where(reachable, np.maximum(high, v_hi), high)
            undecided &= tri != TRI_TRUE
        if expr.otherwise is not None:
            v_lo, v_hi = interval_eval(expr.otherwise, table, env)
        else:
            v_lo = v_hi = np.zeros(n)
        low = np.where(undecided, np.minimum(low, v_lo), low)
        high = np.where(undecided, np.maximum(high, v_hi), high)
        return low, high

    # Anything else over uncertain inputs: fully conservative.
    n = table.num_rows
    return np.full(n, -np.inf), np.full(n, np.inf)


def tri_eval(expr: Expression, table: Table, env: IntervalEnv) -> np.ndarray:
    """Three-valued truth of a predicate per row (TRI_* encoding)."""
    n = table.num_rows
    if not expr.subquery_slots():
        point = np.broadcast_to(
            np.asarray(expr.evaluate(table, env.point), dtype=bool), (n,)
        )
        return np.where(point, TRI_TRUE, TRI_FALSE).astype(np.int8)

    if isinstance(expr, Comparison):
        a_lo, a_hi = interval_eval(expr.left, table, env)
        b_lo, b_hi = interval_eval(expr.right, table, env)
        return _tri_compare(expr.op, a_lo, a_hi, b_lo, b_hi)

    if isinstance(expr, BooleanOp):
        if expr.op == "NOT":
            return (TRI_TRUE - tri_eval(expr.operands[0], table, env)
                    + TRI_FALSE).astype(np.int8)
        parts = [tri_eval(o, table, env) for o in expr.operands]
        out = parts[0]
        for part in parts[1:]:
            out = np.minimum(out, part) if expr.op == "AND" \
                else np.maximum(out, part)
        return out.astype(np.int8)

    if isinstance(expr, Between):
        lower = Comparison("<=", expr.low, expr.value)
        upper = Comparison("<=", expr.value, expr.high)
        return np.minimum(
            tri_eval(lower, table, env), tri_eval(upper, table, env)
        ).astype(np.int8)

    if isinstance(expr, InSubquery):
        state = env.slots.get(expr.slot)
        if not isinstance(state, SetSlotState):
            raise ExecutionError(
                f"slot {expr.slot} is not a set subquery"
            )
        keys = np.asarray(expr.value.evaluate(table, env.point))
        tri = state.tri_for_keys(keys)
        if expr.negated:
            tri = (TRI_TRUE - tri + TRI_FALSE).astype(np.int8)
        return tri

    if isinstance(expr, InList):
        low, high = interval_eval(expr.value, table, env)
        degenerate = low == high
        out = np.full(n, TRI_UNKNOWN, dtype=np.int8)
        if degenerate.any():
            member = np.zeros(n, dtype=bool)
            for option in expr.options:
                member |= low == option
            out[degenerate & member] = TRI_TRUE
            out[degenerate & ~member] = TRI_FALSE
        return out

    # Unknown predicate shape over uncertain inputs: conservative.
    return np.full(n, TRI_UNKNOWN, dtype=np.int8)


def _tri_compare(op: str, a_lo, a_hi, b_lo, b_hi) -> np.ndarray:
    shape = np.broadcast(a_lo, b_lo).shape
    out = np.full(shape, TRI_UNKNOWN, dtype=np.int8)
    if op == "<":
        out[a_hi < b_lo] = TRI_TRUE
        out[a_lo >= b_hi] = TRI_FALSE
    elif op == "<=":
        out[a_hi <= b_lo] = TRI_TRUE
        out[a_lo > b_hi] = TRI_FALSE
    elif op == ">":
        out[a_lo > b_hi] = TRI_TRUE
        out[a_hi <= b_lo] = TRI_FALSE
    elif op == ">=":
        out[a_lo >= b_hi] = TRI_TRUE
        out[a_hi < b_lo] = TRI_FALSE
    elif op == "=":
        disjoint = (a_hi < b_lo) | (b_hi < a_lo)
        exact = (a_lo == a_hi) & (b_lo == b_hi) & (a_lo == b_lo)
        out[disjoint] = TRI_FALSE
        out[exact] = TRI_TRUE
    elif op == "!=":
        disjoint = (a_hi < b_lo) | (b_hi < a_lo)
        exact = (a_lo == a_hi) & (b_lo == b_hi) & (a_lo == b_lo)
        out[disjoint] = TRI_TRUE
        out[exact] = TRI_FALSE
    else:
        raise ExecutionError(f"unknown comparison {op!r}")
    return out


def classify(predicates, table: Table, env: IntervalEnv) -> np.ndarray:
    """Classify rows under a conjunction of predicates.

    Returns a TRI_* array: TRI_TRUE rows are deterministic-pass,
    TRI_FALSE deterministic-fail, TRI_UNKNOWN form the uncertain set.
    """
    if table.num_rows == 0:
        return np.empty(0, dtype=np.int8)
    out = np.full(table.num_rows, TRI_TRUE, dtype=np.int8)
    for predicate in predicates:
        out = np.minimum(out, tri_eval(predicate, table, env))
        if not out.any():  # everything already deterministic-fail
            break
    return out.astype(np.int8)
