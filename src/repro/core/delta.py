"""Per-lineage-block delta maintenance (paper section 3).

Each lineage block (one SPJA subtree — a subquery or the main query) gets
a :class:`BlockRuntime` holding:

* **folded state** — mergeable aggregate states (exact + one per
  bootstrap trial) containing every tuple whose predicate decisions are
  deterministic under the variation ranges in force when it was folded;
* **the uncertain set** — cached tuples whose decisions may still flip,
  stored with exactly the lineage the block needs (predicate columns,
  group indices, aggregate argument values, bootstrap weight rows);
* **guards** — the intersection of every variation range under which this
  block ever folded a decision; if a consumed slot's running value or any
  bootstrap replica escapes its guard, the block's folded decisions are
  no longer trustworthy and it *rebuilds* from the retained raw batches
  (the paper's failure-recovery path).

Per batch the block touches ``O(|ΔD_i| + |U_{i-1}|)`` rows instead of
``O(|D_i|)`` — the whole point of G-OLA.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..config import GolaConfig
from ..engine.aggregates import (
    AggState,
    GroupIndex,
    UDAFRegistry,
    make_state,
)
from ..errors import ExecutionError, RangeViolation, UnsupportedQueryError
from ..estimate.bootstrap import as_batch_weights
from ..estimate.variation import (
    VariationRange,
    range_from_replicas,
    ranges_from_replica_matrix,
)
from ..expr.expressions import (
    ColumnRef,
    Environment,
    Expression,
    InSubquery,
    conjuncts,
    evaluate_mask,
)
from ..obs import NULL_TRACER
from ..parallel import SERIAL_EXECUTOR
from ..plan.lineage_blocks import LineageBlock
from ..engine.operators import window_order, windowed_values
from ..plan.logical import (
    Aggregate,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Sort,
    SubquerySpec,
    Window,
)
from ..storage.colstore.prune import (
    chunk_decisions,
    match_uncertain_comparison,
    pruned_filter_mask,
)
from ..storage.table import Schema, Table
from .classify import IntervalEnv, interval_eval, tri_eval
from .lineage import lineage_columns
from .uncertain import (
    TRI_FALSE,
    TRI_TRUE,
    TRI_UNKNOWN,
    KeyedSlotState,
    ScalarSlotState,
    SetSlotState,
)


@dataclass
class BlockPipeline:
    """The parsed structure of one lineage block's plan."""

    scan: Scan
    certain_steps: List  # mix of ("filter", Expression) and ("join", Join)
    uncertain_predicates: List[Expression]
    aggregate: Aggregate
    project: Optional[Project]
    window: Optional[Window]
    sort: Optional[Sort]
    limit: Optional[Limit]


def parse_block(plan: LogicalPlan) -> BlockPipeline:
    """Decompose a block plan into its online-executable pieces."""
    sort = limit = project = window = None
    node = plan
    if isinstance(node, Limit):
        limit = node
        node = node.input
    if isinstance(node, Sort):
        sort = node
        node = node.input
    if isinstance(node, Window):
        window = node
        node = node.input
    if isinstance(node, Project):
        project = node
        node = node.input
    if not isinstance(node, Aggregate):
        raise UnsupportedQueryError(
            "online execution requires an aggregate query (OLA refines "
            "aggregates; plain SELECTs have nothing to refine)"
        )
    aggregate = node

    certain_steps: List = []
    uncertain_predicates: List[Expression] = []
    node = aggregate.input
    while True:
        if isinstance(node, Filter):
            for conj in conjuncts(node.predicate):
                if conj.subquery_slots():
                    uncertain_predicates.append(conj)
                else:
                    certain_steps.append(("filter", conj))
            node = node.input
        elif isinstance(node, Join):
            certain_steps.append(("join", node))
            node = node.left
        elif isinstance(node, Scan):
            break
        else:
            raise UnsupportedQueryError(
                f"unsupported operator {type(node).__name__} below an "
                "aggregate in online mode"
            )
    certain_steps.reverse()  # apply bottom-up: scan order first

    for expr, _ in aggregate.group_by:
        if expr.subquery_slots():
            raise UnsupportedQueryError(
                "GROUP BY expressions cannot reference subqueries"
            )
    for call in aggregate.aggregates:
        if call.arg is not None and call.arg.subquery_slots():
            raise UnsupportedQueryError(
                "aggregate arguments cannot reference subqueries"
            )

    return BlockPipeline(
        scan=node,
        certain_steps=certain_steps,
        uncertain_predicates=uncertain_predicates,
        aggregate=aggregate,
        project=project,
        window=window,
        sort=sort,
        limit=limit,
    )


@dataclass
class CachedRows:
    """The uncertain set, with its lineage, weights and precomputations."""

    table: Table  # lineage columns needed to re-evaluate predicates
    weights: np.ndarray  # (m, B)
    group_idx: np.ndarray  # (m,) dense indices into the block's GroupIndex
    values: Dict[str, np.ndarray]  # agg alias -> (m,) argument values

    @property
    def size(self) -> int:
        # The lineage table may have zero columns (no predicate lineage
        # needed), so row count is tracked by the always-present arrays.
        return len(self.group_idx)

    @staticmethod
    def empty(schema: Schema, aliases: Sequence[str],
              trials: int) -> "CachedRows":
        return CachedRows(
            table=Table.empty(schema),
            weights=np.empty((0, trials)),
            group_idx=np.empty(0, dtype=np.int64),
            values={a: np.empty(0) for a in aliases},
        )

    @staticmethod
    def concat(parts: Sequence["CachedRows"]) -> "CachedRows":
        if len(parts[0].table.schema):
            table = Table.concat([p.table for p in parts])
        else:
            table = parts[0].table
        return CachedRows(
            table=table,
            weights=np.concatenate([p.weights for p in parts]),
            group_idx=np.concatenate([p.group_idx for p in parts]),
            values={
                a: np.concatenate([p.values[a] for p in parts])
                for a in parts[0].values
            },
        )

    def take(self, mask: np.ndarray) -> "CachedRows":
        table = (
            self.table.take(mask) if len(self.table.schema) else self.table
        )
        return CachedRows(
            table=table,
            weights=self.weights[mask],
            group_idx=self.group_idx[mask],
            values={a: v[mask] for a, v in self.values.items()},
        )


class _ScalarGuard:
    """Intersection of scalar variation ranges a block folded under.

    Fallback guard for predicates whose shape does not decompose into
    "certain side θ uncertain side" (see :class:`_DecisionGuard`); it is
    conservative — any drift of the slot outside every range ever used
    triggers a rebuild — but always sound.
    """

    def __init__(self) -> None:
        self.range: Optional[VariationRange] = None

    def check(self, state: ScalarSlotState) -> bool:
        if self.range is None:
            return True
        return (
            self.range.contains(state.estimate)
            and self.range.contains_all(state.replicas)
        )

    def commit(self, state: ScalarSlotState) -> None:
        if self.range is None:
            self.range = state.vrange
        else:
            self.range = self.range.intersect(state.vrange)

    def reset(self) -> None:
        self.range = None


class _KeyedRangeGuard:
    """Fallback per-group range-intersection guard (keyed slots).

    Only used for exotic predicate shapes where decision-level guarding
    does not apply; conservative but sound.
    """

    def __init__(self) -> None:
        self.lows = np.empty(0)
        self.highs = np.empty(0)

    def _grow(self, g: int) -> None:
        if g > len(self.lows):
            pad = g - len(self.lows)
            self.lows = np.concatenate([self.lows, np.full(pad, -np.inf)])
            self.highs = np.concatenate([self.highs, np.full(pad, np.inf)])

    def check(self, state: KeyedSlotState) -> bool:
        g = min(len(self.lows), len(state.estimates))
        if g == 0:
            return True
        present = state._present()[:g]
        lo, hi = self.lows[:g], self.highs[:g]
        est = state.estimates[:g]
        if (present & ((est < lo) | (est > hi))).any():
            return False
        reps = state.replicas[:g]
        inside = (reps >= lo[:, None]) & (reps <= hi[:, None])
        return bool(inside[present].all())

    def commit(self, state: KeyedSlotState) -> None:
        self._grow(len(state.estimates))
        used = np.nonzero(state._present())[0]
        if used.size == 0:
            return
        np.maximum.at(self.lows, used, state.lows[used])
        np.minimum.at(self.highs, used, state.highs[used])

    def reset(self) -> None:
        self.lows = np.empty(0)
        self.highs = np.empty(0)


_FLIP_OP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


class _DecisionGuard:
    """Decision-validity guard for ``certain θ uncertain`` comparisons.

    A deterministic fold of row ``r`` under predicate ``c(r) θ u`` stays
    valid exactly while ``c(r)`` remains clear of the uncertain side's
    *current* variation range.  By monotonicity only the extreme folded
    values matter, so the guard keeps, per producer group (or globally
    for scalar slots), the extremes of the certain side among TRUE-folds
    and FALSE-folds and re-checks them against the fresh range each batch
    — O(G) vectorized work, and dramatically less conservative than
    intersecting ranges across batches (whose ever-tightening guard makes
    rebuilds near-certain for keyed slots with many small groups).

    ``certain_side`` is row-dependent; ``uncertain_side`` may be any
    expression whose only row dependence flows through the correlation
    key (e.g. ``0.6 * AVG(...)`` per part), so its per-group range hull
    is obtained with the ordinary interval evaluator over a pseudo-table
    of one row per producer group.
    """

    def __init__(self, op: str, certain_side: Expression,
                 uncertain_side: Expression, slot: int,
                 correlation_name: Optional[str]):
        self.op = op  # normalized: certain_side op uncertain_side
        self.certain_side = certain_side
        self.uncertain_side = uncertain_side
        self.slot = slot
        self.correlation_name = correlation_name
        # Extremes of the certain side among folded rows; grown lazily.
        self.max_true = np.full(1, -np.inf)
        self.min_true = np.full(1, np.inf)
        self.max_false = np.full(1, -np.inf)
        self.min_false = np.full(1, np.inf)

    def _grow(self, g: int) -> None:
        if g > len(self.max_true):
            pad = g - len(self.max_true)
            self.max_true = np.concatenate(
                [self.max_true, np.full(pad, -np.inf)])
            self.min_true = np.concatenate(
                [self.min_true, np.full(pad, np.inf)])
            self.max_false = np.concatenate(
                [self.max_false, np.full(pad, -np.inf)])
            self.min_false = np.concatenate(
                [self.min_false, np.full(pad, np.inf)])

    def commit(self, candidates: "CachedRows", tri_p: np.ndarray,
               tri_final: np.ndarray, slot_states, penv) -> None:
        true_mask = tri_final == TRI_TRUE  # implies tri_p TRUE
        false_mask = (tri_final == TRI_FALSE) & (tri_p == TRI_FALSE)
        if not (true_mask.any() or false_mask.any()):
            return
        c_vals = np.asarray(
            self.certain_side.evaluate(candidates.table, penv),
            dtype=np.float64,
        )
        if c_vals.ndim == 0:
            c_vals = np.full(candidates.size, float(c_vals))
        if self.correlation_name is None:
            idx = np.zeros(candidates.size, dtype=np.int64)
        else:
            state = slot_states[self.slot]
            keys = np.asarray(
                candidates.table.column(self.correlation_name)
            )
            idx = state.index.encode(keys, add_new=False)
            self._grow(len(state.estimates))
        for mask, maxes, mins in (
            (true_mask, self.max_true, self.min_true),
            (false_mask, self.max_false, self.min_false),
        ):
            use = mask & (idx >= 0)
            if use.any():
                np.maximum.at(maxes, idx[use], c_vals[use])
                np.minimum.at(mins, idx[use], c_vals[use])

    def check(self, slot_states, ienv: "IntervalEnv") -> bool:
        """Are all folded decisions point-correct under the new values?

        Validity is checked against the uncertain side's current *point*
        value (per group), which is exactly what snapshot correctness —
        equality with ``Q(D_i, k/i)`` — requires.  Checking against the
        full variation range instead would be needlessly strict: with
        many small groups (e.g. Q17's per-part averages) the replica hull
        jitters by more than the fold margin every batch and rebuilds
        become near-certain.  Per-trial classification drift is the
        approximation the paper itself accepts (classification is shared
        across bootstrap trials); ε controls the fold margin and hence
        the residual violation probability.
        """
        g = len(self.max_true)
        state = slot_states[self.slot]
        if self.correlation_name is None:
            pseudo = _ArrayTable({}, 1)
        else:
            keys = np.array(state.index.keys())
            if len(keys) == 0:
                return True
            pseudo = _ArrayTable({self.correlation_name: keys}, len(keys))
        # Bind the slot's point values locally so the check is
        # self-contained (callers need not pre-bind the environment).
        env = Environment(functions=ienv.point.functions)
        state.bind_point(env)
        raw = self.uncertain_side.evaluate(pseudo, env)
        side = np.asarray(raw, dtype=np.float64)
        if side.ndim == 0:
            side = np.full(pseudo.num_rows, float(side))
        n = min(g, len(side))
        point = side[:n]
        with np.errstate(invalid="ignore"):
            if self.op == "<":
                ok_true = self.max_true[:n] < point
                ok_false = self.min_false[:n] >= point
            elif self.op == "<=":
                ok_true = self.max_true[:n] <= point
                ok_false = self.min_false[:n] > point
            elif self.op == ">":
                ok_true = self.min_true[:n] > point
                ok_false = self.max_false[:n] <= point
            else:  # ">="
                ok_true = self.min_true[:n] >= point
                ok_false = self.max_false[:n] < point
        # Vacuous where no fold happened (extremes still at +-inf);
        # groups with no point value yet (NaN side) can have no folds.
        ok_true |= np.isneginf(self.max_true[:n]) \
            & np.isposinf(self.min_true[:n])
        ok_false |= np.isneginf(self.max_false[:n]) \
            & np.isposinf(self.min_false[:n])
        return bool(ok_true.all() and ok_false.all())

    def reset(self) -> None:
        g = len(self.max_true)
        self.max_true = np.full(g, -np.inf)
        self.min_true = np.full(g, np.inf)
        self.max_false = np.full(g, -np.inf)
        self.min_false = np.full(g, np.inf)


def _analyze_guard(predicate: Expression):
    """Pick the guard strategy for one uncertain predicate.

    Returns ``("set", node)``, ``("decision", guard)`` or
    ``("fallback", slots)``.
    """
    if isinstance(predicate, InSubquery):
        return ("set", predicate)
    from ..expr.expressions import Comparison as _Comparison, SubqueryRef

    if isinstance(predicate, _Comparison) and predicate.op in _FLIP_OP:
        left_slots = predicate.left.subquery_slots()
        right_slots = predicate.right.subquery_slots()
        if left_slots and not right_slots:
            uncertain, certain = predicate.left, predicate.right
            op = _FLIP_OP[predicate.op]
        elif right_slots and not left_slots:
            uncertain, certain = predicate.right, predicate.left
            op = predicate.op
        else:
            return ("fallback", predicate.subquery_slots())
        refs = [r for r in _collect_refs(uncertain)]
        if len({r.slot for r in refs}) != 1 or any(
            isinstance(r, InSubquery) for r in refs
        ):
            return ("fallback", predicate.subquery_slots())
        ref = refs[0]
        if ref.correlation is None:
            if uncertain.references():
                return ("fallback", predicate.subquery_slots())
            corr_name = None
        else:
            from ..expr.expressions import ColumnRef as _ColumnRef

            if not isinstance(ref.correlation, _ColumnRef):
                return ("fallback", predicate.subquery_slots())
            corr_name = ref.correlation.name
            if uncertain.references() - {corr_name}:
                return ("fallback", predicate.subquery_slots())
        return (
            "decision",
            _DecisionGuard(op, certain, uncertain, ref.slot, corr_name),
        )
    return ("fallback", predicate.subquery_slots())


def _collect_refs(expr: Expression):
    from ..expr.expressions import SubqueryRef

    out = []
    if isinstance(expr, SubqueryRef):
        out.append(expr)
    for child in expr.children():
        out.extend(_collect_refs(child))
    return out


class _SetGuard:
    """Deterministic membership commitments against a set slot."""

    def __init__(self) -> None:
        self.committed_in: Set = set()
        self.committed_out: Set = set()

    def check(self, state: SetSlotState) -> bool:
        return (
            self.committed_in <= state.point_members
            and self.committed_out.isdisjoint(state.point_members)
        )

    def commit(self, keys: np.ndarray, tri: np.ndarray) -> None:
        key_list = keys.tolist()
        for key, status in zip(key_list, tri.tolist()):
            if status == int(TRI_TRUE):
                self.committed_in.add(key)
            elif status == int(TRI_FALSE):
                self.committed_out.add(key)

    def reset(self) -> None:
        self.committed_in.clear()
        self.committed_out.clear()


@dataclass
class BlockBatchStats:
    """Per-batch accounting the benchmarks and the simulator consume."""

    batch_index: int
    rows_in: int
    candidates: int
    folded_pass: int
    folded_fail: int
    uncertain_size: int
    rebuilt: bool
    rebuild_rows: int

    @property
    def rows_processed(self) -> int:
        return self.candidates + self.rebuild_rows


class _MatrixColumns:
    """Adapter exposing (G, B) replica matrices as 'columns'.

    Lets the ordinary expression evaluator compute projection expressions
    over per-trial aggregate replicas: ``(G, 1)`` group keys broadcast
    against ``(G, B)`` aggregate matrices.
    """

    def __init__(self, columns: Dict[str, np.ndarray], num_rows: int):
        self._columns = columns
        self.num_rows = num_rows

    def column(self, name: str) -> np.ndarray:
        if name not in self._columns:
            raise ExecutionError(f"unknown column {name!r} in replica eval")
        return self._columns[name]


class BlockRuntime:
    """Online (delta-maintained) execution state for one lineage block."""

    def __init__(self, block: LineageBlock, spec: Optional[SubquerySpec],
                 config: GolaConfig, dimension_tables: Dict[str, Table],
                 udafs: Optional[UDAFRegistry] = None):
        self.block = block
        self.spec = spec
        self.config = config
        self.trials = config.bootstrap_trials
        self.udafs = udafs
        self.pipeline = parse_block(block.plan)
        self.dimension_tables = dimension_tables
        self._join_indices: Dict[int, Dict] = {}

        agg = self.pipeline.aggregate
        self.group_index = GroupIndex()
        self.exact_states: Dict[str, AggState] = {}
        self.boot_states: Dict[str, AggState] = {}
        #: Folded qualifying rows per group — distinguishes "no data yet"
        #: groups (whose values are undefined) from genuine zeros.
        self.presence_counts = np.empty(0, dtype=np.int64)
        self._init_states()

        self._needed_columns = self._compute_needed_columns()
        self.cache = CachedRows.empty(
            Schema([]), [c.alias for c in agg.aggregates], self.trials
        )
        self._cache_schema_ready = False

        #: One guard strategy per uncertain predicate (same order).
        self.pred_guards = [
            _analyze_guard(p) for p in self.pipeline.uncertain_predicates
        ]
        self.guards: Dict[int, object] = {}  # fallback/set guards by slot
        self.stats_history: List[BlockBatchStats] = []
        self.recompute_count = 0
        #: Observability hook; the controller installs its tracer here.
        self.tracer = NULL_TRACER
        #: Bootstrap-fold executor; the controller installs a configured
        #: :class:`~repro.parallel.ParallelExecutor` here.  The default
        #: runs everything inline with identical results.
        self.executor = SERIAL_EXECUTOR

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _init_states(self) -> None:
        agg = self.pipeline.aggregate
        self.exact_states = {}
        self.boot_states = {}
        for i, call in enumerate(agg.aggregates):
            seed = self.config.seed + i
            self.exact_states[call.alias] = make_state(
                call, trials=None, udafs=self.udafs,
                quantile_capacity=self.config.max_quantile_sample, seed=seed,
            )
            try:
                self.boot_states[call.alias] = make_state(
                    call, trials=self.trials, udafs=self.udafs,
                    quantile_capacity=self.config.max_quantile_sample,
                    seed=seed,
                )
            except ExecutionError as exc:
                raise UnsupportedQueryError(
                    f"aggregate {call.func!r} cannot run online (no "
                    f"bootstrap support): {exc}; use execute_batch()"
                ) from exc

    def _compute_needed_columns(self) -> List[str]:
        """Lineage minimization: only keep what re-evaluation needs."""
        return lineage_columns(
            self.pipeline.uncertain_predicates,
            self.pipeline.aggregate.group_by,
            self._post_certain_schema(),
        )

    def _post_certain_schema(self) -> Schema:
        schema = self.pipeline.scan.schema
        for kind, step in self.pipeline.certain_steps:
            if kind == "join":
                schema = step.schema
        return schema

    # ------------------------------------------------------------------
    # Certain pipeline
    # ------------------------------------------------------------------

    def _apply_certain(self, table: Table, penv: Environment,
                       ) -> Tuple[Table, Optional[np.ndarray]]:
        """Run the stable (slot-free) filters and dimension joins.

        Returns the surviving rows plus their positions in the original
        batch (None when every row survived) — the indirection that lets
        bootstrap weights stay lazy until a kernel actually needs them.
        """
        pos: Optional[np.ndarray] = None
        for step_id, (kind, step) in enumerate(self.pipeline.certain_steps):
            # No early-out on an empty table: join steps must still run
            # for their schema effect, or a batch filtered to zero rows
            # loses the dimension columns its group-by/aggregates
            # reference (caught by the deep fuzz grammar's empty-group
            # bias).
            if kind == "filter":
                zones = getattr(table, "_colstore_zones", None)
                if zones is not None:
                    # A colstore batch straight off the scan: consult
                    # its zone maps so chunks the predicate can never
                    # match are neither decoded into the mask pass nor
                    # touched again.  The mask is identical to the
                    # unpruned evaluation (row-local predicate), so
                    # downstream folds are bit-exact.
                    with self.tracer.span(
                        "colstore.prune", block=self.block.block_id,
                        rows_in=table.num_rows,
                    ) as pspan:
                        mask, pruned = pruned_filter_mask(
                            step, table, penv, zones
                        )
                        if self.tracer.enabled:
                            pspan.set("chunks_pruned", pruned)
                    if pruned and self.tracer.metrics.enabled:
                        self.tracer.metrics.counter(
                            "colstore.chunks_pruned"
                        ).inc(pruned)
                else:
                    mask = evaluate_mask(step, table, penv)
                table = table.take(mask)
                pos = np.nonzero(mask)[0] if pos is None else pos[mask]
            else:
                table, keep = self._join_step(step_id, step, table)
                if keep is not None:
                    pos = np.nonzero(keep)[0] if pos is None else pos[keep]
        return table, pos

    def _join_step(self, step_id: int, join: Join, table: Table):
        right = self.dimension_tables.get(join.right.table_name)
        if right is None:
            raise ExecutionError(
                f"dimension table {join.right.table_name!r} not bound"
            )
        index = self._join_indices.get(step_id)
        if index is None:
            build_keys = _key_rows(right, [r for _, r in join.keys])
            index = {}
            for i, key in enumerate(build_keys):
                if key in index:
                    raise ExecutionError(
                        f"duplicate dimension key {key!r} in "
                        f"{join.right.table_name}"
                    )
                index[key] = i
            self._join_indices[step_id] = index
        probe = _key_rows(table, [l for l, _ in join.keys])
        match = np.fromiter(
            (index.get(k, -1) for k in probe), dtype=np.int64,
            count=table.num_rows,
        )
        if join.how == "inner":
            keep = match >= 0
            table = table.take(keep)
            right_idx = match[keep]
        else:
            keep = None
            right_idx = np.clip(match, 0, None)
        columns = {n: table.column(n) for n in table.schema.names}
        cols = list(table.schema.columns)
        right_key_names = {r for _, r in join.keys}
        for col in right.schema:
            if col.name in right_key_names:
                continue
            columns[col.name] = right.column(col.name)[right_idx]
            cols.append(col)
        return Table(Schema(cols), columns), keep

    # ------------------------------------------------------------------
    # Guards & failure handling
    # ------------------------------------------------------------------

    def check_guards(self, slot_states: Dict[int, object],
                     ienv: IntervalEnv) -> bool:
        """True when every folded decision is still valid."""
        return self.guard_violation(slot_states, ienv) is None

    def guard_violation(self, slot_states: Dict[int, object],
                        ienv: IntervalEnv) -> Optional[str]:
        """The first failing guard as a human-readable cause, or None.

        The cause string is what rebuild trace events report, so a
        profile can say *why* a block recomputed (which slot drifted,
        under which guard strategy), not just that it did.
        """
        for kind, guard in self.pred_guards:
            if kind == "decision":
                if not guard.check(slot_states, ienv):
                    return f"decision guard on slot#{guard.slot}"
        for slot, guard in self.guards.items():
            state = slot_states[slot]
            if not guard.check(state):
                return (
                    f"{type(guard).__name__.lstrip('_')} on slot#{slot}"
                )
        return None

    def _guard_for(self, slot: int, state) -> object:
        guard = self.guards.get(slot)
        if guard is None:
            if isinstance(state, ScalarSlotState):
                guard = _ScalarGuard()
            elif isinstance(state, KeyedSlotState):
                guard = _KeyedRangeGuard()
            else:
                guard = _SetGuard()
            self.guards[slot] = guard
        return guard

    # -- checkpoint / resume -------------------------------------------

    #: The mutable per-run state a checkpoint must capture.  Derived
    #: caches (join indices) and construction-time structure (pipeline,
    #: dimension tables, tracer) are rebuilt/re-injected on resume.
    _CHECKPOINT_FIELDS = (
        "exact_states", "boot_states", "presence_counts", "group_index",
        "cache", "pred_guards", "guards", "stats_history",
        "recompute_count", "_cache_schema_ready",
    )

    def state_checkpoint(self) -> dict:
        """Deep-copied folded state + uncertain cache + guards.

        The copy is detached from the live run: checkpointing between
        batches and continuing does not alias any mutable state.
        """
        self.executor.drain(self.boot_states)
        return copy.deepcopy(
            {name: getattr(self, name) for name in self._CHECKPOINT_FIELDS}
        )

    def restore_checkpoint(self, state: dict) -> None:
        """Install state captured by :meth:`state_checkpoint`.

        The incoming dict is deep-copied again so one checkpoint can
        seed several resumed runs.
        """
        # Settle any in-flight fold against the outgoing states before
        # they are replaced; a merge deferred past this point would
        # target a dict nothing reads anymore.
        self.executor.drain(self.boot_states)
        state = copy.deepcopy(state)
        for name in self._CHECKPOINT_FIELDS:
            setattr(self, name, state[name])

    def reset(self) -> None:
        """Drop all folded state (the rebuild entry point)."""
        self.executor.drain(self.boot_states)
        self._init_states()
        self.presence_counts = np.empty(0, dtype=np.int64)
        self.group_index = GroupIndex()
        self.cache = CachedRows.empty(
            self.cache.table.schema if self._cache_schema_ready else Schema([]),
            list(self.exact_states), self.trials,
        )
        for kind, guard in self.pred_guards:
            if kind == "decision":
                guard.reset()
        for guard in self.guards.values():
            guard.reset()

    # ------------------------------------------------------------------
    # Batch processing
    # ------------------------------------------------------------------

    def process_batch(self, batch_index: int, batch: Table,
                      weights,
                      slot_states: Dict[int, object],
                      penv: Environment,
                      retained: Optional[Sequence[Tuple[Table, np.ndarray]]] = None,
                      ) -> BlockBatchStats:
        """Fold one mini-batch, reclassify the uncertain set, update guards.

        ``weights`` is the batch's ``(n, B)`` Poisson matrix or a lazy
        :class:`~repro.estimate.bootstrap.BatchWeights` handle (the
        controller passes handles so sharded folds never materialize the
        dense matrix).  ``retained`` supplies the raw batches seen so far
        (including the current one) for the rebuild path; None disables
        recovery and a guard violation raises :class:`RangeViolation`.
        """
        tracer = self.tracer
        wsrc = as_batch_weights(weights)
        ienv = IntervalEnv(slots=slot_states, point=penv)
        with tracer.span("phase:guards", block=self.block.block_id) as gs:
            violation = self.guard_violation(slot_states, ienv)
            if violation is not None:
                gs.set("violation", violation)
        if violation is not None:
            if retained is None:
                self._raise_violation(slot_states)
            self.reset()
            self.recompute_count += 1
            merged = Table.concat([t for t, _ in retained])
            merged_w = np.concatenate(
                [as_batch_weights(w).dense() for _, w in retained]
            )
            rebuild_rows = merged.num_rows
            with tracer.span("phase:rebuild", block=self.block.block_id,
                             cause=violation, rows_in=rebuild_rows):
                stats = self._ingest(
                    batch_index, merged, as_batch_weights(merged_w),
                    slot_states, penv,
                )
            if tracer.metrics.enabled:
                tracer.metrics.counter("delta.rebuilds").inc()
                tracer.metrics.counter(
                    "delta.rebuild_rows"
                ).inc(rebuild_rows)
            stats = BlockBatchStats(
                batch_index=batch_index,
                rows_in=batch.num_rows,
                candidates=stats.candidates,
                folded_pass=stats.folded_pass,
                folded_fail=stats.folded_fail,
                uncertain_size=stats.uncertain_size,
                rebuilt=True,
                rebuild_rows=rebuild_rows,
            )
        else:
            stats = self._ingest(batch_index, batch, wsrc, slot_states,
                                 penv)
        if tracer.metrics.enabled:
            tracer.metrics.histogram(
                "delta.uncertain_size"
            ).observe(stats.uncertain_size)
        self.stats_history.append(stats)
        return stats

    def _raise_violation(self, slot_states) -> None:
        for slot in self.block.consumes:
            guard = self.guards.get(slot)
            state = slot_states[slot]
            if guard is None:
                continue
            if isinstance(state, ScalarSlotState) and not guard.check(state):
                rng = guard.range
                raise RangeViolation(
                    f"slot#{slot}", state.estimate, rng.low, rng.high
                )
        raise RangeViolation(
            f"block {self.block.block_id}", float("nan"), float("nan"),
            float("nan"),
        )

    def _ingest(self, batch_index: int, batch: Table, wsrc,
                slot_states: Dict[int, object],
                penv: Environment) -> BlockBatchStats:
        tracer = self.tracer
        rows_in = batch.num_rows
        piped, pos = self._apply_certain(batch, penv)
        incoming = self._prepare_rows(piped, penv)

        if not self.pipeline.uncertain_predicates:
            # No uncertain set: rows fold immediately, so the bootstrap
            # update can stream lazily — trial shards regenerate their
            # own weight columns and the dense (n, B) matrix is never
            # built when the executor shards.
            with tracer.span("phase:fold", block=self.block.block_id,
                             rows_in=incoming.size):
                self._fold_delta(incoming, wsrc, pos)
            if tracer.metrics.enabled:
                tracer.metrics.counter(
                    "delta.rows_folded"
                ).inc(incoming.size)
            return BlockBatchStats(
                batch_index=batch_index, rows_in=rows_in,
                candidates=incoming.size, folded_pass=incoming.size,
                folded_fail=0, uncertain_size=0, rebuilt=False,
                rebuild_rows=0,
            )

        # Uncertain path: cached rows carry their weight rows densely
        # (they may be re-folded under any future classification), so
        # materialize the incoming rows' weights now.
        incoming.weights = wsrc.rows(pos)
        cached_in = self.cache.size
        candidates = (
            CachedRows.concat([self.cache, incoming])
            if self.cache.size else incoming
        )
        ienv = IntervalEnv(slots=slot_states, point=penv)
        with tracer.span("phase:classify", block=self.block.block_id,
                         rows_in=candidates.size, cached_in=cached_in,
                         incoming=incoming.size) as cls_span:
            zones = getattr(batch, "_colstore_zones", None)
            if zones is not None and (
                    pos is not None or zones.num_rows != incoming.size):
                # Certain steps dropped/reordered rows: the incoming
                # slice of `candidates` no longer lines up with the
                # stored chunks, so zone maps cannot speak for it.
                zones = None
            p_tris = [
                self._tri_eval_pruned(predicate, candidates, cached_in,
                                      zones, ienv)
                for predicate in self.pipeline.uncertain_predicates
            ]
            tri = p_tris[0].copy()
            for p_tri in p_tris[1:]:
                tri = np.minimum(tri, p_tri)
            self._commit_guards(candidates, p_tris, tri, slot_states, ienv)

            pass_mask = tri == TRI_TRUE
            fail_mask = tri == TRI_FALSE
            unknown_mask = tri == TRI_UNKNOWN
            folded_pass = int(pass_mask.sum())
            folded_fail = int(fail_mask.sum())
            if tracer.enabled:
                # Cache accounting: a cached row re-classified to a
                # deterministic status is *resolved* (evicted from the
                # uncertain set); the rest are retained another batch.
                cache_retained = int(unknown_mask[:cached_in].sum())
                cls_span.set("folded_pass", folded_pass)
                cls_span.set("folded_fail", folded_fail)
                cls_span.set("unknown", int(unknown_mask.sum()))
                cls_span.set("cache_resolved", cached_in - cache_retained)
                cls_span.set("cache_retained", cache_retained)
        with tracer.span("phase:fold", block=self.block.block_id,
                         rows_in=folded_pass):
            self._fold(candidates, pass_mask)
        self.cache = candidates.take(unknown_mask)
        if tracer.metrics.enabled:
            tracer.metrics.counter("delta.rows_folded").inc(folded_pass)
            tracer.metrics.counter(
                "delta.rows_classified"
            ).inc(candidates.size)

        return BlockBatchStats(
            batch_index=batch_index, rows_in=rows_in,
            candidates=candidates.size,
            folded_pass=folded_pass,
            folded_fail=folded_fail,
            uncertain_size=self.cache.size,
            rebuilt=False, rebuild_rows=0,
        )

    def _tri_eval_pruned(self, predicate: Expression,
                         candidates: CachedRows, cached_in: int,
                         zones, ienv: IntervalEnv) -> np.ndarray:
        """Tri-state classification, skipping chunks zone maps decide.

        For a simple ``column <op> uncertain`` predicate, a chunk whose
        zone interval is entirely on one side of the uncertain value's
        current variation range classifies every row in it identically
        — and to exactly the value per-row :func:`tri_eval` would
        produce (the chunk interval contains each row's degenerate
        interval, and ``_tri_compare`` is monotone under interval
        containment).  Those rows are filled wholesale; only cached
        rows and rows of undecided chunks are evaluated per row, so
        the resulting classification — and every fold, guard
        commitment and uncertain-set decision downstream — is
        bit-identical to the unpruned path.
        """
        table = candidates.table
        if zones is None:
            return tri_eval(predicate, table, ienv)
        matched = match_uncertain_comparison(predicate)
        if matched is None:
            return tri_eval(predicate, table, ienv)
        col, op, unc_side = matched
        lo, hi = interval_eval(unc_side, _ArrayTable({}, 1), ienv)
        lo = np.asarray(lo, dtype=np.float64).reshape(-1)
        hi = np.asarray(hi, dtype=np.float64).reshape(-1)
        decisions = chunk_decisions(zones, col, op,
                                    float(lo[0]), float(hi[0]))
        if decisions is None or bool((decisions == TRI_UNKNOWN).all()):
            return tri_eval(predicate, table, ienv)
        n_in = zones.num_rows
        row_dec = np.repeat(decisions, zones.chunk_rows)[:n_in]
        undecided = np.flatnonzero(row_dec == TRI_UNKNOWN)
        idx = np.concatenate([
            np.arange(cached_in, dtype=np.int64),
            cached_in + undecided.astype(np.int64),
        ])
        out = np.empty(cached_in + n_in, dtype=np.int8)
        out[cached_in:] = row_dec
        if len(idx):
            out[idx] = tri_eval(predicate, table.take(idx), ienv)
        if self.tracer.metrics.enabled:
            self.tracer.metrics.counter(
                "colstore.chunks_tri_decided"
            ).inc(int((decisions != TRI_UNKNOWN).sum()))
        return out

    def _commit_guards(self, candidates: CachedRows, p_tris, tri_final,
                       slot_states, ienv: IntervalEnv) -> None:
        """Record what this batch's deterministic folds relied on.

        Only rows actually folded (final tri deterministic) impose
        validity constraints.  For a FALSE fold, each conjunct that
        itself evaluated FALSE is (conservatively) required to stay
        FALSE; conjuncts that were TRUE or UNKNOWN at fold time imposed
        nothing — Kleene AND needs a single FALSE.
        """
        penv = ienv.point
        any_fold = (tri_final != TRI_UNKNOWN).any()
        for (kind, guard), predicate, p_tri in zip(
            self.pred_guards, self.pipeline.uncertain_predicates, p_tris
        ):
            if kind == "decision":
                guard.commit(candidates, p_tri, tri_final, slot_states,
                             penv)
            elif kind == "set":
                state = slot_states[predicate.slot]
                set_guard = self._guard_for(predicate.slot, state)
                keys = np.asarray(
                    predicate.value.evaluate(candidates.table, penv)
                )
                folded = tri_final != TRI_UNKNOWN
                set_guard.commit(keys[folded], p_tri[folded])
            else:  # fallback: conservative range/membership commitments
                if not any_fold:
                    continue
                for node in _find_in_subqueries(predicate):
                    state = slot_states[node.slot]
                    set_guard = self._guard_for(node.slot, state)
                    keys = np.asarray(
                        node.value.evaluate(candidates.table, penv)
                    )
                    set_guard.commit(
                        keys, tri_eval(node, candidates.table, ienv)
                    )
                for slot in predicate.subquery_slots():
                    state = slot_states[slot]
                    if isinstance(state, SetSlotState):
                        continue  # handled above
                    self._guard_for(slot, state).commit(state)

    def _prepare_rows(self, table: Table,
                      penv: Environment) -> CachedRows:
        """Precompute group indices and aggregate args for new rows.

        The returned rows carry no weights (``weights=None``); callers
        that need dense weight rows assign them afterwards.
        """
        agg = self.pipeline.aggregate
        n = table.num_rows
        if agg.group_by:
            if len(agg.group_by) == 1:
                raw = np.asarray(agg.group_by[0][0].evaluate(table, penv))
                keys = np.broadcast_to(raw, (n,)) if raw.ndim == 0 else raw
            else:
                parts = [
                    np.asarray(e.evaluate(table, penv)) for e, _ in agg.group_by
                ]
                keys = np.empty(n, dtype=object)
                keys[:] = list(zip(*[p.tolist() for p in parts]))
            group_idx = self.group_index.encode(keys)
        else:
            self.group_index.encode(np.zeros(1, dtype=np.int64))
            group_idx = np.zeros(n, dtype=np.int64)

        values: Dict[str, np.ndarray] = {}
        for call in agg.aggregates:
            if call.arg is None:
                values[call.alias] = np.ones(n)
            else:
                raw = np.asarray(call.arg.evaluate(table, penv),
                                 dtype=np.float64)
                values[call.alias] = (
                    np.broadcast_to(raw, (n,)).copy() if raw.ndim == 0 else raw
                )

        lineage = (
            table.select(self._needed_columns)
            if self._needed_columns else Table.empty(Schema([]))
        )
        if not self._cache_schema_ready and self._needed_columns:
            self.cache = CachedRows.empty(
                lineage.schema, list(values), self.trials
            )
            self._cache_schema_ready = True
        return CachedRows(
            table=lineage, weights=None, group_idx=group_idx,
            values=values,
        )

    def _fold(self, rows: CachedRows, mask: Optional[np.ndarray]) -> None:
        if mask is not None:
            if not mask.any():
                return
            rows = rows.take(mask)
        if rows.size == 0:
            return
        self.presence_counts = _bump_counts(
            self.presence_counts, rows.group_idx
        )
        for alias, state in self.exact_states.items():
            state.update(rows.group_idx, rows.values[alias])
        self.executor.fold_boot_states(
            self.boot_states, rows.group_idx, rows.values, rows.weights,
            lazy=True,
        )

    def _fold_delta(self, rows: CachedRows, wsrc,
                    pos: Optional[np.ndarray]) -> None:
        """Fold freshly-arrived rows whose weights are still lazy.

        ``pos`` indexes the surviving rows into the batch's weight
        matrix; the executor either shards weight generation across
        workers or materializes the dense rows inline — bit-identical
        either way.
        """
        if rows.size == 0:
            return
        self.presence_counts = _bump_counts(
            self.presence_counts, rows.group_idx
        )
        for alias, state in self.exact_states.items():
            state.update(rows.group_idx, rows.values[alias])
        self.executor.fold_boot_states(
            self.boot_states, rows.group_idx, rows.values, wsrc,
            row_idx=pos, lazy=True,
        )

    # ------------------------------------------------------------------
    # Snapshots and publishing
    # ------------------------------------------------------------------

    def _temp_finalized(self, penv: Environment, slot_states, scale: float):
        """Finalize folded + currently-passing-uncertain into estimates.

        Returns ``(estimates, replicas, present)`` where estimates maps
        alias -> (G,), replicas maps alias -> (G, B), and present is the
        (G,) boolean mask of groups with at least one qualifying row
        under the current point values.
        """
        # Pipeline barrier: deferred sharded folds must land before the
        # bootstrap states are finalized (publish and snapshots both
        # come through here).
        self.executor.drain(self.boot_states)
        num_groups = max(self.group_index.num_groups, 1)
        passing = None
        if self.cache.size:
            mask = np.ones(self.cache.size, dtype=bool)
            for predicate in self.pipeline.uncertain_predicates:
                mask &= evaluate_mask(predicate, self.cache.table, penv)
            passing = self.cache.take(mask) if mask.any() else None

        counts = np.zeros(num_groups, dtype=np.int64)
        counts[: len(self.presence_counts)] = self.presence_counts
        if passing is not None:
            counts = _bump_counts(counts, passing.group_idx)
            counts = counts[:num_groups] if len(counts) > num_groups else counts
        present = counts > 0

        trial_masks = None
        if (
            passing is not None
            and self.config.trial_aware_uncertain
            and self.pipeline.uncertain_predicates
        ):
            trial_masks = self._trial_masks(slot_states, penv)

        estimates: Dict[str, np.ndarray] = {}
        replicas: Dict[str, np.ndarray] = {}
        for alias in self.exact_states:
            exact = self.exact_states[alias]
            boot = self.boot_states[alias]
            if passing is not None:
                exact = exact.copy()
                exact.update(passing.group_idx, passing.values[alias])
                boot = boot.copy()
                if trial_masks is not None:
                    # Each trial folds the cache rows IT would keep,
                    # under its own inner-aggregate replicas.
                    boot.update(
                        self.cache.group_idx, self.cache.values[alias],
                        self.cache.weights * trial_masks,
                    )
                else:
                    boot.update(passing.group_idx, passing.values[alias],
                                passing.weights)
            exact.ensure_groups(num_groups)
            boot.ensure_groups(num_groups)
            estimates[alias] = exact.finalize(scale)
            replicas[alias] = boot.finalize(scale)
        return estimates, replicas, present

    def _trial_masks(self, slot_states, penv: Environment) -> np.ndarray:
        """Per-trial pass masks for the uncertain cache: ``(|U|, B)``.

        Trial ``j`` binds every consumed scalar/keyed slot to its j-th
        bootstrap replica and re-evaluates the uncertain predicates over
        the cache — the per-trial analogue of the paper's "compute Q on
        the simulated database".  Set-membership slots fall back to point
        membership (per-trial membership would require re-running the
        producer's HAVING per trial).
        """
        m = self.cache.size
        out = np.empty((m, self.trials), dtype=np.float64)
        consumed = [
            (slot, slot_states[slot]) for slot in sorted(self.block.consumes)
        ]
        keyed_keys = {
            slot: state.index.keys()
            for slot, state in consumed if isinstance(state, KeyedSlotState)
        }
        for j in range(self.trials):
            env = Environment(functions=penv.functions)
            for slot, state in consumed:
                if isinstance(state, ScalarSlotState):
                    env.scalars[slot] = float(state.replicas[j])
                elif isinstance(state, KeyedSlotState):
                    present = state._present()
                    column = state.replicas[:, j]
                    env.keyed[slot] = {
                        key: value
                        for key, value, ok in zip(
                            keyed_keys[slot], column.tolist(), present
                        )
                        if ok
                    }
                else:
                    env.key_sets[slot] = state.point_members
            mask = np.ones(m, dtype=bool)
            for predicate in self.pipeline.uncertain_predicates:
                mask &= evaluate_mask(predicate, self.cache.table, env)
            out[:, j] = mask
        return out

    def publish(self, penv: Environment, slot_states, scale: float):
        """Produce this block's slot state for downstream consumers."""
        spec = self.spec
        if spec is None:
            raise ExecutionError("main block does not publish a slot")
        estimates, replicas, present = self._temp_finalized(
            penv, slot_states, scale
        )
        agg = self.pipeline.aggregate
        project = self.pipeline.project
        num_groups = max(self.group_index.num_groups, 1)

        point_cols = {a: v for a, v in estimates.items()}
        group_cols = self._group_key_columns(num_groups)
        point_cols.update(group_cols)

        matrix_cols: Dict[str, np.ndarray] = {
            a: m for a, m in replicas.items()
        }
        matrix_cols.update(
            {name: arr[:, None] for name, arr in group_cols.items()}
        )

        if spec.kind in ("scalar", "keyed"):
            value_expr = self._project_expr(spec.value_column)
            point_table = _ArrayTable(point_cols, num_groups)
            point_vals = np.asarray(
                value_expr.evaluate(point_table, penv), dtype=np.float64
            )
            if point_vals.ndim == 0:
                point_vals = np.full(num_groups, float(point_vals))
            replica_env = self._replica_env(penv, slot_states)
            matrix_table = _MatrixColumns(matrix_cols, num_groups)
            replica_vals = np.asarray(
                value_expr.evaluate(matrix_table, replica_env),
                dtype=np.float64,
            )
            if replica_vals.ndim < 2:
                replica_vals = np.broadcast_to(
                    replica_vals, (num_groups, self.trials)
                )
            if spec.kind == "scalar":
                return ScalarSlotState(
                    slot=spec.slot,
                    estimate=float(point_vals[0]),
                    replicas=replica_vals[0].copy(),
                    vrange=range_from_replicas(
                        float(point_vals[0]), replica_vals[0],
                        self.config.epsilon_multiplier,
                    ),
                )
            lows, highs = ranges_from_replica_matrix(
                point_vals, replica_vals, self.config.epsilon_multiplier
            )
            return KeyedSlotState(
                slot=spec.slot,
                index=self.group_index,
                estimates=point_vals,
                replicas=replica_vals,
                lows=lows,
                highs=highs,
                present=present,
            )

        # kind == "set": membership determined by the block's HAVING.
        having = agg.having
        keys = np.array(self.group_index.keys(), dtype=object)
        present_keys = present[: len(keys)]
        if having is None:
            point_members = set(keys[present_keys].tolist())
            tri_status = {
                k: (TRI_TRUE if ok else TRI_UNKNOWN)
                for k, ok in zip(keys.tolist(), present_keys)
            }
        else:
            point_table = _ArrayTable(point_cols, num_groups)
            point_mask = np.broadcast_to(
                np.asarray(having.evaluate(point_table, penv), dtype=bool),
                (num_groups,),
            )
            point_members = set(
                keys[point_mask[: len(keys)] & present_keys].tolist()
            )
            lows_cols = {}
            highs_cols = {}
            for alias, matrix in replicas.items():
                lo, hi = ranges_from_replica_matrix(
                    estimates[alias], matrix, self.config.epsilon_multiplier
                )
                lows_cols[alias] = lo
                highs_cols[alias] = hi
            tri = _tri_eval_with_column_intervals(
                having, point_cols, lows_cols, highs_cols, num_groups,
                slot_states, penv,
            )
            tri_status = {
                k: (int(t) if ok else int(TRI_UNKNOWN))
                for k, t, ok in zip(keys.tolist(), tri.tolist(), present_keys)
            }
        return SetSlotState(
            slot=spec.slot, point_members=point_members,
            tri_status=tri_status,
        )

    def snapshot_output(self, penv: Environment, slot_states, scale: float):
        """The main block's current result table plus per-column error data.

        Returns ``(table, column_replicas)`` where ``column_replicas`` maps
        numeric output columns to their ``(rows, B)`` replica matrices
        (aligned with the returned table's rows).
        """
        estimates, replicas, present = self._temp_finalized(
            penv, slot_states, scale
        )
        agg = self.pipeline.aggregate
        num_groups = max(self.group_index.num_groups, 1)

        group_cols = self._group_key_columns(num_groups)
        point_cols = dict(estimates)
        point_cols.update(group_cols)
        point_table = _ArrayTable(point_cols, num_groups)

        # Grouped queries emit only groups with qualifying data; a global
        # aggregate always emits its single row (SQL semantics).
        keep = present.copy() if agg.group_by else np.ones(num_groups,
                                                           dtype=bool)
        if agg.having is not None:
            having_mask = np.broadcast_to(
                np.asarray(agg.having.evaluate(point_table, penv),
                           dtype=bool),
                (num_groups,),
            )
            keep = keep & having_mask

        project = self.pipeline.project
        out_columns: Dict[str, np.ndarray] = {}
        col_replicas: Dict[str, np.ndarray] = {}
        replica_env = self._replica_env(penv, slot_states)
        matrix_cols = {a: m for a, m in replicas.items()}
        matrix_cols.update(
            {name: arr[:, None] for name, arr in group_cols.items()}
        )
        matrix_table = _MatrixColumns(matrix_cols, num_groups)

        exprs = (
            project.exprs if project is not None
            else [(ColumnRef(n), n) for n in agg.schema.names]
        )
        for expr, name in exprs:
            raw = np.asarray(expr.evaluate(point_table, penv))
            if raw.ndim == 0:
                raw = np.full(num_groups, raw[()])
            out_columns[name] = raw[keep]
            refs = expr.references()
            if refs & set(estimates):
                try:
                    matrix = np.asarray(
                        expr.evaluate(matrix_table, replica_env),
                        dtype=np.float64,
                    )
                    if matrix.ndim == 2:
                        col_replicas[name] = matrix[keep]
                except Exception:
                    pass  # non-replicable projection: no error bars

        if self.pipeline.window is not None:
            out_columns, col_replicas = self._apply_window(
                out_columns, col_replicas
            )
        table = Table.from_columns(out_columns)
        if self.pipeline.sort is not None:
            order = _sort_order(table, self.pipeline.sort)
            table = table.take(order)
            col_replicas = {k: v[order] for k, v in col_replicas.items()}
        if self.pipeline.limit is not None:
            n = min(self.pipeline.limit.n, table.num_rows)
            table = table.slice(0, n)
            col_replicas = {k: v[:n] for k, v in col_replicas.items()}
        return table, col_replicas

    def _apply_window(self, out_columns: Dict[str, np.ndarray],
                      col_replicas: Dict[str, np.ndarray]):
        """Evaluate the block's window calls over the snapshot rows.

        The total order comes from the *point* columns (the ORDER BY
        column plus group-key tiebreaks are exact values, identical
        across execution paths); the rolling transform is linear, so the
        same permutation applied per replica column yields each window
        column's bootstrap replicas.
        """
        window = self.pipeline.window
        for call in window.calls:
            order = window_order(out_columns, call, window.tiebreak)
            arg = out_columns[call.arg] if call.arg is not None else None
            out_columns[call.alias] = windowed_values(call, arg, order)
            if call.arg is not None and call.arg in col_replicas:
                col_replicas[call.alias] = windowed_values(
                    call, col_replicas[call.arg], order
                )
        ordered = {n: out_columns[n] for n in window.output_order}
        return ordered, col_replicas

    # ------------------------------------------------------------------

    def _group_key_columns(self, num_groups: int) -> Dict[str, np.ndarray]:
        agg = self.pipeline.aggregate
        if not agg.group_by:
            return {}
        keys = self.group_index.keys()
        out: Dict[str, np.ndarray] = {}
        if len(agg.group_by) == 1:
            name = agg.group_by[0][1]
            arr = np.empty(num_groups, dtype=object)
            arr[: len(keys)] = keys
            out[name] = arr
        else:
            for pos, (_, name) in enumerate(agg.group_by):
                arr = np.empty(num_groups, dtype=object)
                arr[: len(keys)] = [k[pos] for k in keys]
                out[name] = arr
        return out

    def _project_expr(self, name: str) -> Expression:
        project = self.pipeline.project
        if project is None:
            return ColumnRef(name)
        for expr, out_name in project.exprs:
            if out_name == name:
                return expr
        raise ExecutionError(f"projection has no column {name!r}")

    def _replica_env(self, penv: Environment, slot_states) -> Environment:
        """Environment for matrix (replica) evaluation of projections.

        Scalar slots are bound to their replica vectors so trial-wise
        arithmetic broadcasts; keyed slots fall back to point values (a
        documented approximation — error bars slightly understate the
        inner uncertainty there).
        """
        env = Environment(
            scalars=dict(penv.scalars), keyed=dict(penv.keyed),
            key_sets=dict(penv.key_sets), functions=penv.functions,
        )
        for slot, state in slot_states.items():
            if isinstance(state, ScalarSlotState):
                env.scalars[slot] = state.replicas
        return env


class _ArrayTable:
    """Minimal table adapter over plain 1-D arrays for point evaluation."""

    def __init__(self, columns: Dict[str, np.ndarray], num_rows: int):
        self._columns = columns
        self.num_rows = num_rows

    def column(self, name: str) -> np.ndarray:
        if name not in self._columns:
            raise ExecutionError(f"unknown column {name!r}")
        return self._columns[name]


def _key_rows(table: Table, names: Sequence[str]) -> List:
    if len(names) == 1:
        return table.column(names[0]).tolist()
    return list(zip(*[table.column(n).tolist() for n in names]))


def _sort_order(table: Table, sort: Sort) -> np.ndarray:
    order = np.arange(table.num_rows)
    for key, desc in reversed(sort.keys):
        col = table.column(key)[order]
        idx = np.argsort(col, kind="stable")
        if desc:
            idx = idx[::-1]
        order = order[idx]
    return order


def _bump_counts(counts: np.ndarray, group_idx: np.ndarray) -> np.ndarray:
    """Increment per-group row counts, growing the array as needed."""
    if len(group_idx) == 0:
        return counts
    need = int(group_idx.max()) + 1
    if need > len(counts):
        counts = np.concatenate(
            [counts, np.zeros(need - len(counts), dtype=np.int64)]
        )
    np.add.at(counts, group_idx, 1)
    return counts


def _find_in_subqueries(expr: Expression) -> List[InSubquery]:
    """All InSubquery nodes anywhere inside ``expr``."""
    out: List[InSubquery] = []
    if isinstance(expr, InSubquery):
        out.append(expr)
    for child in expr.children():
        out.extend(_find_in_subqueries(child))
    return out


def _tri_eval_with_column_intervals(expr, point_cols, lows, highs,
                                    num_groups, slot_states, penv):
    """Three-valued evaluation where some columns are intervals.

    A thin recursion mirroring :func:`repro.core.classify.tri_eval` but
    sourcing per-column intervals from the block's replica ranges.
    """
    from ..expr.expressions import (
        Between as _Between,
        BooleanOp as _BooleanOp,
        Comparison as _Comparison,
    )
    from .classify import IntervalEnv as _IEnv, _tri_compare

    ienv = _IEnv(slots=slot_states, point=penv)
    table = _ArrayTable(point_cols, num_groups)

    def col_interval(e):
        """Interval of an expression over interval-valued columns."""
        from ..expr.expressions import (
            BinaryOp as _BinaryOp,
            ColumnRef as _ColumnRef,
            Literal as _Literal,
            Negate as _Negate,
            SubqueryRef as _SubqueryRef,
        )

        if isinstance(e, _ColumnRef):
            if e.name in lows:
                return lows[e.name], highs[e.name]
            v = np.asarray(point_cols[e.name], dtype=np.float64)
            return v, v
        if isinstance(e, _Literal):
            v = np.full(num_groups, float(e.value))
            return v, v
        if isinstance(e, _SubqueryRef):
            state = slot_states[e.slot]
            if isinstance(state, ScalarSlotState):
                return (np.full(num_groups, state.vrange.low),
                        np.full(num_groups, state.vrange.high))
            raise ExecutionError("keyed slots in HAVING are unsupported")
        if isinstance(e, _Negate):
            lo, hi = col_interval(e.operand)
            return -hi, -lo
        if isinstance(e, _BinaryOp):
            a_lo, a_hi = col_interval(e.left)
            b_lo, b_hi = col_interval(e.right)
            if e.op == "+":
                return a_lo + b_lo, a_hi + b_hi
            if e.op == "-":
                return a_lo - b_hi, a_hi - b_lo
            if e.op == "*":
                prods = np.stack([a_lo * b_lo, a_lo * b_hi,
                                  a_hi * b_lo, a_hi * b_hi])
                return prods.min(axis=0), prods.max(axis=0)
            if e.op == "/":
                crosses = (b_lo <= 0) & (b_hi >= 0)
                sb_lo = np.where(crosses, 1.0, b_lo)
                sb_hi = np.where(crosses, 1.0, b_hi)
                qs = np.stack([a_lo / sb_lo, a_lo / sb_hi,
                               a_hi / sb_lo, a_hi / sb_hi])
                return (np.where(crosses, -np.inf, qs.min(axis=0)),
                        np.where(crosses, np.inf, qs.max(axis=0)))
        return (np.full(num_groups, -np.inf), np.full(num_groups, np.inf))

    def tri(e):
        if isinstance(e, _Comparison):
            a_lo, a_hi = col_interval(e.left)
            b_lo, b_hi = col_interval(e.right)
            return _tri_compare(e.op, a_lo, a_hi, b_lo, b_hi)
        if isinstance(e, _BooleanOp):
            if e.op == "NOT":
                return (TRI_TRUE - tri(e.operands[0]) + TRI_FALSE).astype(
                    np.int8
                )
            parts = [tri(o) for o in e.operands]
            out = parts[0]
            for part in parts[1:]:
                out = (np.minimum(out, part) if e.op == "AND"
                       else np.maximum(out, part))
            return out.astype(np.int8)
        if isinstance(e, _Between):
            return np.minimum(
                tri(_Comparison("<=", e.low, e.value)),
                tri(_Comparison("<=", e.value, e.high)),
            ).astype(np.int8)
        # Fallback: point evaluation decides, uncertainty ignored — make
        # it conservative instead.
        return np.full(num_groups, TRI_UNKNOWN, dtype=np.int8)

    return tri(expr)
