"""Run-time state of uncertain values (nested aggregate subquery results).

After every mini-batch, each producing lineage block publishes a *slot
state*: the current point estimate(s), the bootstrap replicas, and the
variation range(s) derived from them.  Consumers use the point values for
snapshot answers, the ranges for uncertain/deterministic classification,
and the replicas for their own failure checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

import numpy as np

from ..engine.aggregates import GroupIndex
from ..estimate.variation import VariationRange
from ..expr.expressions import Environment

# Three-valued logic encoding.  The ordering F < U < T makes Kleene AND a
# min and Kleene OR a max.
TRI_FALSE = np.int8(0)
TRI_UNKNOWN = np.int8(1)
TRI_TRUE = np.int8(2)


@dataclass
class ScalarSlotState:
    """An uncorrelated scalar subquery's current state."""

    slot: int
    estimate: float
    replicas: np.ndarray  # (B,)
    vrange: VariationRange

    def bind_point(self, env: Environment) -> None:
        env.scalars[self.slot] = self.estimate


@dataclass
class KeyedSlotState:
    """An equality-correlated subquery's per-group state.

    ``index`` maps correlation-key values to dense rows of the arrays.
    Groups that have not appeared yet are fully uncertain: consumers treat
    their range as ``(-inf, +inf)``.
    """

    slot: int
    index: GroupIndex
    estimates: np.ndarray  # (G,)
    replicas: np.ndarray  # (G, B)
    lows: np.ndarray  # (G,)
    highs: np.ndarray  # (G,)
    #: Which groups have actual qualifying data.  A group can exist in the
    #: index with zero presence (its rows are all cached as uncertain or
    #: filtered out); its value is then undefined, not zero, and must stay
    #: fully uncertain for consumers.  None means "all present" (static).
    present: Optional[np.ndarray] = None

    def _present(self) -> np.ndarray:
        if self.present is None:
            return np.ones(len(self.estimates), dtype=bool)
        return self.present

    def bind_point(self, env: Environment) -> None:
        present = self._present()
        env.keyed[self.slot] = {
            key: value
            for key, value, ok in zip(
                self.index.keys(), self.estimates.tolist(), present
            )
            if ok
        }

    def interval_for_keys(self, keys: np.ndarray):
        """Per-row (low, high) arrays for an array of correlation keys.

        Unknown or zero-presence keys are fully uncertain: (-inf, +inf).
        """
        idx = self.index.encode(keys, add_new=False)
        n = len(idx)
        lows = np.full(n, -np.inf)
        highs = np.full(n, np.inf)
        present = self._present()
        known = (idx >= 0) & np.where(idx >= 0, present[np.clip(idx, 0, None)],
                                      False)
        lows[known] = self.lows[idx[known]]
        highs[known] = self.highs[idx[known]]
        return lows, highs


@dataclass
class SetSlotState:
    """An IN-subquery's current membership state.

    ``point_members`` is membership under current point estimates;
    ``tri_status`` maps each key the producer has seen to TRI_TRUE /
    TRI_FALSE / TRI_UNKNOWN under the producer's variation ranges.
    ``default_status`` applies to unseen keys: TRI_UNKNOWN for streamed
    producers (new groups may still join the set) and TRI_FALSE for
    static (dimension-table) producers, whose membership is closed.
    """

    slot: int
    point_members: Set
    tri_status: Dict
    default_status: np.int8 = TRI_UNKNOWN

    def bind_point(self, env: Environment) -> None:
        env.key_sets[self.slot] = self.point_members

    def tri_for_keys(self, keys: np.ndarray) -> np.ndarray:
        get = self.tri_status.get
        default = self.default_status
        return np.array(
            [get(k, default) for k in keys.tolist()], dtype=np.int8
        )


SlotState = object  # union of the three dataclasses above


def bind_all(states: Dict[int, SlotState], env: Environment) -> None:
    """Bind every slot's point values into an expression environment."""
    for state in states.values():
        state.bind_point(env)
