"""Lineage capture for cached uncertain tuples (paper section 3.3).

To re-evaluate a cached uncertain tuple with the latest aggregate values,
G-OLA keeps the tuple's *lineage* — the values feeding its uncertain
attributes.  Propagating full lineage through aggregates would explode,
so lineage is confined to a lineage block and minimized to exactly the
columns the block's re-evaluation needs:

* columns referenced by the uncertain predicates (so classification and
  the lazy point re-evaluation can run on the cache alone), and
* columns referenced by GROUP BY expressions (group identity is
  precomputed into dense indices, but kept for auditability).

Aggregate *argument* values are precomputed into the cache as plain
vectors, so their source columns are dropped — the "broadcast only the
aggregate results between blocks" optimization.
"""

from __future__ import annotations

from typing import List, Set

from ..storage.table import Schema


def lineage_columns(uncertain_predicates, group_by, available: Schema
                    ) -> List[str]:
    """The minimal column set the uncertain cache must retain.

    Args:
        uncertain_predicates: the block's slot-referencing predicates.
        group_by: the block's (expression, name) grouping pairs.
        available: schema after the block's certain filter/join steps.

    Returns:
        Sorted column names to retain in the uncertain cache.
    """
    needed: Set[str] = set()
    for predicate in uncertain_predicates:
        needed |= predicate.references()
    for expr, _ in group_by:
        needed |= expr.references()
    return sorted(needed & set(available.names))
