"""The online query compiler (paper section 4, component 1).

"The online query compiler compiles the query into a *meta query plan*,
which when plugged with different mini-batches of data, turns into a
series of mini-batch queries [where] each mini-batch query depends on
the state computed in the previous iteration, and computes delta-updates
on the results of its predecessor."

Concretely, a :class:`MetaPlan` is:

* the lineage-block partition of the bound query, in broadcast
  (dependency) order;
* one :class:`~repro.core.delta.BlockRuntime` per block over the
  *streamed* relation — these hold the iteration-to-iteration state
  (folded aggregates, uncertain caches, guards);
* the set of *static* subqueries (blocks scanning only non-streamed
  dimension tables), which the controller evaluates exactly once and
  publishes as certain slot states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import GolaConfig
from ..engine.aggregates import UDAFRegistry
from ..errors import UnsupportedQueryError
from ..plan.lineage_blocks import LineageBlock, lineage_blocks
from ..plan.logical import Query, SubquerySpec
from ..storage.table import Table
from .delta import BlockRuntime, parse_block


@dataclass
class MetaPlan:
    """A compiled online query, ready to be driven batch by batch."""

    query: Query
    streamed_table: str
    #: Every streamed relation some online block scans, primary (the
    #: main block's fact table) first.  Multi-fact queries stream each
    #: fact independently: same batch count, independent weight streams.
    streamed_tables: List[str]
    #: block_id -> the streamed relation that block scans.
    block_tables: Dict[str, str]
    #: Online blocks in dependency order (inner producers first, the
    #: main block last).
    online_blocks: List[LineageBlock]
    #: block_id -> its delta-maintenance runtime.
    runtimes: Dict[str, BlockRuntime]
    #: Subqueries over non-streamed tables, evaluated once, exactly.
    static_specs: List[SubquerySpec]

    @property
    def main_runtime(self) -> BlockRuntime:
        return self.runtimes["main"]

    def describe(self) -> str:
        """Human-readable meta plan: blocks, dependencies, strategy."""
        lines = []
        for block in self.online_blocks:
            consumes = (
                ", ".join(f"#{s}" for s in sorted(block.consumes))
                or "nothing"
            )
            runtime = self.runtimes[block.block_id]
            uncertain = len(runtime.pipeline.uncertain_predicates)
            table = self.block_tables[block.block_id]
            lines.append(
                f"{block.block_id}: streams {table!r}, "
                f"consumes {consumes}, {uncertain} uncertain predicate(s)"
            )
        for spec in self.static_specs:
            lines.append(
                f"sub#{spec.slot}: static ({spec.kind}), evaluated once"
            )
        return "\n".join(lines)


def compile_meta_plan(query: Query, tables: Dict[str, Table],
                      streamed: Dict[str, bool], config: GolaConfig,
                      udafs: Optional[UDAFRegistry] = None) -> MetaPlan:
    """Partition a bound query into its meta plan.

    Raises :class:`~repro.errors.UnsupportedQueryError` if no streamed
    relation is involved or the main query does not scan it.
    """
    if query.streamed_table is None:
        raise UnsupportedQueryError(
            "online execution needs a streamed relation; register the "
            "fact table with streamed=True"
        )
    streamed_table = query.streamed_table
    dimension_tables = {
        name: table for name, table in tables.items()
        if not streamed.get(name, False)
    }

    online_blocks: List[LineageBlock] = []
    runtimes: Dict[str, BlockRuntime] = {}
    static_specs: List[SubquerySpec] = []
    streamed_tables: List[str] = [streamed_table]
    block_tables: Dict[str, str] = {}

    for block in lineage_blocks(query):
        spec = (
            query.subqueries.get(block.produces)
            if block.produces is not None else None
        )
        scan_name = parse_block(block.plan).scan.table_name
        if scan_name != streamed_table:
            if block.produces is None:
                raise UnsupportedQueryError(
                    "the main query must scan the streamed relation"
                )
            # A subquery over a *different streamed fact* is itself an
            # online block over that relation (multi-fact join); only
            # subqueries over pure dimension tables are static.
            if not streamed.get(scan_name, False):
                if spec.plan.subquery_slots():
                    raise UnsupportedQueryError(
                        "static subqueries cannot reference streamed "
                        "subqueries"
                    )
                static_specs.append(spec)
                continue
        online_blocks.append(block)
        block_tables[block.block_id] = scan_name
        if scan_name not in streamed_tables:
            streamed_tables.append(scan_name)
        runtimes[block.block_id] = BlockRuntime(
            block, spec, config, dimension_tables, udafs
        )

    return MetaPlan(
        query=query,
        streamed_table=streamed_table,
        streamed_tables=streamed_tables,
        block_tables=block_tables,
        online_blocks=online_blocks,
        runtimes=runtimes,
        static_specs=static_specs,
    )
