"""User-facing snapshots of an online query's progress.

One :class:`OnlineSnapshot` is produced per mini-batch: the current
approximate answer, bootstrap error bars per numeric output column, and
the delta-maintenance accounting (uncertain-set sizes, rows touched,
rebuilds) that the benchmarks and the cluster simulator consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..estimate.intervals import ConfidenceInterval
from ..storage.table import Table


@dataclass
class ColumnErrors:
    """Error summary for one numeric output column (row-aligned)."""

    lows: np.ndarray
    highs: np.ndarray
    rel_stdev: np.ndarray


@dataclass
class OnlineSnapshot:
    """The state of an online query after one mini-batch.

    Attributes:
        batch_index: 1-based index ``i`` of the batch just folded.
        num_batches: Total batch count ``k``.
        table: The approximate answer ``Q(D_i, k/i)``.
        errors: Per-column error bars for columns with replica support.
        uncertain_sizes: block id -> size of its uncertain set.
        rows_processed: block id -> rows touched this batch (candidates
            plus any rebuild work) — the quantity Figure 3(b) compares.
        rebuilds: block ids that recomputed due to a range violation.
        elapsed_s: Wall-clock seconds this batch took in this process.
        phase_seconds: phase name (fold/publish/snapshot) -> wall-clock
            seconds, populated when tracing is enabled (None otherwise).
        degraded: True once any mini-batch has been permanently skipped;
            the estimate is then re-derived from the batches actually
            folded (skip-and-reweight) rather than all of ``D_i``.
        skipped_batches: 1-based indices of the batches dropped so far
            (None on the clean path).
        lost_rows: Total rows in the dropped batches.
    """

    batch_index: int
    num_batches: int
    table: Table
    errors: Dict[str, ColumnErrors]
    uncertain_sizes: Dict[str, int]
    rows_processed: Dict[str, int]
    rebuilds: List[str]
    elapsed_s: float
    confidence: float
    phase_seconds: Optional[Dict[str, float]] = None
    degraded: bool = False
    skipped_batches: Optional[List[int]] = None
    lost_rows: int = 0

    @property
    def fraction(self) -> float:
        """Fraction of the dataset processed so far."""
        return self.batch_index / self.num_batches

    @property
    def is_final(self) -> bool:
        return self.batch_index == self.num_batches

    # -- single-value conveniences (1x1 results like the SBI query) ------

    def _single_column(self) -> str:
        names = self.table.schema.names
        if self.table.num_rows != 1 or len(names) != 1:
            raise ValueError(
                "snapshot is not a single value; inspect .table instead"
            )
        return names[0]

    @property
    def estimate(self) -> float:
        """The scalar estimate, for single-cell results."""
        return float(self.table.column(self._single_column())[0])

    @property
    def interval(self) -> ConfidenceInterval:
        """The scalar confidence interval, for single-cell results."""
        name = self._single_column()
        err = self.errors.get(name)
        if err is None:
            value = self.estimate
            return ConfidenceInterval(value, value, self.confidence)
        return ConfidenceInterval(
            float(err.lows[0]), float(err.highs[0]), self.confidence
        )

    @property
    def relative_stdev(self) -> float:
        """The scalar relative standard deviation, for single-cell results.

        Returns ``nan`` when the column has no bootstrap replica support
        (e.g. a non-replicable projection): "unknown error" must not
        read as "fully converged", or ``rsd < target`` early-stop loops
        would silently accept an answer with no error estimate.
        """
        name = self._single_column()
        err = self.errors.get(name)
        if err is None or len(err.rel_stdev) == 0:
            return float("nan")
        return float(err.rel_stdev[0])

    @property
    def total_rows_processed(self) -> int:
        return sum(self.rows_processed.values())

    @property
    def total_uncertain(self) -> int:
        return sum(self.uncertain_sizes.values())

    def describe(self) -> str:
        """A one-line progress summary for consoles."""
        pct = 100.0 * self.fraction
        parts = [f"batch {self.batch_index}/{self.num_batches} ({pct:.0f}%)"]
        try:
            parts.append(
                f"estimate={self.estimate:.6g} {self.interval} "
                f"rsd={format_rsd(self.relative_stdev)}"
            )
        except ValueError:
            parts.append(f"{self.table.num_rows} rows")
        parts.append(f"uncertain={self.total_uncertain}")
        if self.degraded:
            skipped = len(self.skipped_batches or [])
            parts.append(
                f"DEGRADED[skipped={skipped} lost_rows={self.lost_rows}]"
            )
        if self.rebuilds:
            parts.append(f"rebuilt={','.join(self.rebuilds)}")
        if self.phase_seconds:
            parts.append(
                "phases[" + " ".join(
                    f"{name}={seconds * 1e3:.1f}ms"
                    for name, seconds in self.phase_seconds.items()
                ) + "]"
            )
        return "  ".join(parts)


def format_rsd(value: float, digits: int = 3) -> str:
    """Render a relative stdev; NaN (no replica support) reads ``n/a``."""
    if value != value:  # NaN
        return "n/a"
    return f"{value:.{digits}%}"
