"""Observability: structured tracing, metrics and profiling hooks.

The online-execution claims of the paper — per-batch latency, the size
of the uncertain set, the cost of guard-violation rebuilds — are claims
about *where time and rows go per mini-batch*.  This package gives every
engine component one cheap, injectable instrumentation surface:

* :class:`Tracer` — hierarchical wall-clock spans (query → batch →
  lineage-block → phase) plus point events, fanned out to a
  :class:`TraceSink`;
* :class:`MetricsRegistry` — counters, gauges and histograms with
  mergeable snapshots;
* three sinks behind one interface: :class:`NullSink` (the default;
  near-zero overhead — every record site is guarded by a cheap
  ``enabled`` check), :class:`JsonlSink` (an event log for
  ``python -m repro report``), and :class:`AggregatingSink` (in-memory
  per-span statistics the console renders live);
* :func:`load_events` / :func:`render_profile` — turn a JSONL event log
  back into per-phase / per-operator profile tables;
* :mod:`repro.obs.live` — bounded log-bucketed quantile histograms
  (:class:`LogBuckets`) and sliding-window aggregations
  (:class:`SlidingWindow`, :class:`WindowedHistogram`) backing the
  serve layer's live ``/metrics`` surface.

A process-wide default tracer exists (:func:`get_tracer` /
:func:`set_tracer`) but every consumer also accepts an explicit
instance, so tests and concurrent sessions can stay isolated.
"""

from .live import (
    BUCKETS_PER_OCTAVE,
    GROWTH,
    LogBuckets,
    SlidingWindow,
    WindowedHistogram,
    WindowSnapshot,
    bucket_key,
    bucket_upper_edge,
    quantile_from_cumulative,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
)
from .report import (
    ProfileReport,
    build_profile,
    load_events,
    render_profile,
    render_recovery,
)
from .sinks import AggregatingSink, JsonlSink, NullSink, TeeSink, TraceSink
from .tracer import (
    NULL_TRACER,
    Span,
    Timer,
    Tracer,
    get_tracer,
    set_tracer,
    tracer_from_config,
)

__all__ = [
    "AggregatingSink",
    "BUCKETS_PER_OCTAVE",
    "Counter",
    "GROWTH",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "JsonlSink",
    "LogBuckets",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_TRACER",
    "NullSink",
    "ProfileReport",
    "SlidingWindow",
    "Span",
    "TeeSink",
    "Timer",
    "TraceSink",
    "Tracer",
    "WindowSnapshot",
    "WindowedHistogram",
    "bucket_key",
    "bucket_upper_edge",
    "build_profile",
    "get_tracer",
    "load_events",
    "quantile_from_cumulative",
    "render_profile",
    "render_recovery",
    "set_tracer",
    "tracer_from_config",
]
