"""Live telemetry primitives: log-bucketed histograms, sliding windows.

Serving an *interactive* system means answering distribution questions
about itself while it runs: "what is p99 first-answer latency right
now?", "how fast are snapshots flowing in the last minute?".  Both the
paper's evaluation and PF-OLA's parallel-OLA framing treat the estimator
as a continuously observable actor — this module gives the serve layer
the data structures for that:

* :class:`LogBuckets` — an HDR-style log-bucketed value histogram:
  bounded memory (bucket count is bounded by the float64 exponent range
  times the per-octave resolution, independent of observation count),
  quantile estimates accurate to one bucket (~9% relative), and
  associative/commutative merges — the same mergeable-snapshot
  discipline as :class:`~repro.obs.metrics.MetricsSnapshot`, so
  histograms from worker processes combine exactly.
* :class:`SlidingWindow` — a ring of time slots each holding one
  :class:`LogBuckets` plus count/sum, so "p95 over the last 10s/1m/5m"
  and event rates come from merging the live slots at read time; old
  slots expire in O(1) without rescanning history.

Everything here is plain Python over dicts — no numpy in the hot path —
because observations arrive one at a time from scheduler threads.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Sequence, Tuple

#: Buckets per power of two; 8 gives a bucket width (growth factor) of
#: ``2**(1/8) ~ 1.09``, i.e. quantiles accurate to ~9% relative error.
BUCKETS_PER_OCTAVE = 8

#: Multiplicative width of one bucket.
GROWTH = 2.0 ** (1.0 / BUCKETS_PER_OCTAVE)


def bucket_key(value: float) -> Tuple[int, int]:
    """The (sign, index) bucket a value falls into.

    ``sign`` is -1/0/+1; for nonzero values ``index`` is
    ``floor(log2(|v|) * BUCKETS_PER_OCTAVE)``, so bucket ``(1, i)``
    covers ``[2**(i/8), 2**((i+1)/8))``.  The index range representable
    by float64 is about [-8600, 8200] — the hard memory bound.
    """
    if value == 0.0:
        return (0, 0)
    magnitude = abs(value)
    index = math.floor(math.log2(magnitude) * BUCKETS_PER_OCTAVE)
    return (1 if value > 0.0 else -1, index)


def bucket_upper_edge(sign: int, index: int) -> float:
    """The least upper bound (in *value* order) of bucket (sign, index).

    Positive bucket i covers values up to ``2**((i+1)/8)``; negative
    bucket i covers ``(-2**((i+1)/8), -2**(i/8)]`` so its value-order
    upper edge is ``-2**(i/8)``; the zero bucket's is 0.
    """
    if sign == 0:
        return 0.0
    try:
        if sign > 0:
            return 2.0 ** ((index + 1) / BUCKETS_PER_OCTAVE)
        return -(2.0 ** (index / BUCKETS_PER_OCTAVE))
    except OverflowError:
        return math.inf if sign > 0 else -math.inf


class LogBuckets:
    """Sparse log-bucketed histogram of float observations.

    Not thread-safe on its own — owners (``obs.Histogram``, the sliding
    windows) serialize access behind their locks.  NaN observations are
    ignored (they have no place on the value axis); +/-inf land in the
    extreme buckets.
    """

    __slots__ = ("zero", "pos", "neg", "count")

    def __init__(self) -> None:
        self.zero = 0
        self.pos: Dict[int, int] = {}
        self.neg: Dict[int, int] = {}
        self.count = 0

    def observe(self, value: float) -> None:
        if value != value:  # NaN: not representable on the value axis
            return
        self.count += 1
        if value == 0.0:
            self.zero += 1
            return
        sign, index = bucket_key(value)
        store = self.pos if sign > 0 else self.neg
        store[index] = store.get(index, 0) + 1

    # -- merging (associative and commutative by construction) -----------

    def merge_from(self, other: "LogBuckets") -> None:
        self.zero += other.zero
        self.count += other.count
        for store, theirs in ((self.pos, other.pos), (self.neg, other.neg)):
            for index, n in theirs.items():
                store[index] = store.get(index, 0) + n

    def merge(self, other: "LogBuckets") -> "LogBuckets":
        out = self.copy()
        out.merge_from(other)
        return out

    def copy(self) -> "LogBuckets":
        out = LogBuckets()
        out.zero = self.zero
        out.count = self.count
        out.pos = dict(self.pos)
        out.neg = dict(self.neg)
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, LogBuckets):
            return NotImplemented
        return (self.count == other.count and self.zero == other.zero
                and self.pos == other.pos and self.neg == other.neg)

    def __repr__(self) -> str:
        return (f"LogBuckets(count={self.count}, "
                f"buckets={self.num_buckets})")

    @property
    def num_buckets(self) -> int:
        """Occupied buckets — the memory footprint, independent of count."""
        return len(self.pos) + len(self.neg) + (1 if self.zero else 0)

    # -- reading ---------------------------------------------------------

    def items(self) -> Iterator[Tuple[int, int, int]]:
        """(sign, index, count) triples in ascending *value* order."""
        for index in sorted(self.neg, reverse=True):
            yield (-1, index, self.neg[index])
        if self.zero:
            yield (0, 0, self.zero)
        for index in sorted(self.pos):
            yield (1, index, self.pos[index])

    def cumulative(self) -> List[Tuple[float, int]]:
        """(value upper edge, cumulative count) per occupied bucket,
        ascending — the shape Prometheus ``le`` buckets want."""
        out: List[Tuple[float, int]] = []
        running = 0
        for sign, index, n in self.items():
            running += n
            out.append((bucket_upper_edge(sign, index), running))
        return out

    def quantile(self, q: float) -> float:
        """The q-quantile, accurate to one bucket.

        Uses the ``lower`` order-statistic definition (rank
        ``floor(q * (count - 1))``) so the selected bucket is exactly
        the one holding that order statistic; the returned value is the
        bucket's value-order upper edge, hence within one bucket of the
        exact answer.  NaN when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return float("nan")
        rank = math.floor(q * (self.count - 1))
        running = 0
        for sign, index, n in self.items():
            running += n
            if running > rank:
                return bucket_upper_edge(sign, index)
        # Unreachable unless counts were mutated mid-iteration.
        return bucket_upper_edge(*max(
            [(1, i) for i in self.pos] or [(0, 0)]
        ))

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        return [self.quantile(q) for q in qs]

    # -- plain-data state (for snapshots / cross-process transfer) -------

    def state_dict(self) -> dict:
        return {"zero": self.zero, "count": self.count,
                "pos": dict(self.pos), "neg": dict(self.neg)}

    @classmethod
    def from_state(cls, state: dict) -> "LogBuckets":
        out = cls()
        out.zero = int(state.get("zero", 0))
        out.count = int(state.get("count", 0))
        out.pos = {int(k): int(v) for k, v in state.get("pos", {}).items()}
        out.neg = {int(k): int(v) for k, v in state.get("neg", {}).items()}
        return out


def quantile_from_cumulative(pairs: Sequence[Tuple[float, float]],
                             q: float) -> float:
    """Quantile estimate from (upper edge, cumulative count) pairs.

    The read-side twin of :meth:`LogBuckets.quantile` for consumers that
    only see exported cumulative buckets (``repro top`` re-deriving p99
    from a Prometheus scrape).  Pairs must be ascending in both fields;
    an ``inf`` edge (the ``+Inf`` bucket) falls back to the previous
    finite edge so the estimate stays usable.
    """
    if not pairs:
        return float("nan")
    total = pairs[-1][1]
    if total <= 0:
        return float("nan")
    rank = math.floor(q * (total - 1))
    previous = pairs[0][0]
    for edge, running in pairs:
        if running > rank:
            return previous if math.isinf(edge) else edge
        if not math.isinf(edge):
            previous = edge
    return previous


class _Slot:
    """One time slot of a sliding window."""

    __slots__ = ("slot_id", "count", "total", "buckets")

    def __init__(self, slot_id: int):
        self.slot_id = slot_id
        self.count = 0
        self.total = 0.0
        self.buckets = LogBuckets()


class WindowSnapshot:
    """Merged view of a sliding window's live slots at one moment."""

    __slots__ = ("window_s", "count", "total", "buckets")

    def __init__(self, window_s: float, count: int, total: float,
                 buckets: LogBuckets):
        self.window_s = window_s
        self.count = count
        self.total = total
        self.buckets = buckets

    @property
    def rate(self) -> float:
        """Observations per second over the window."""
        return self.count / self.window_s if self.window_s > 0 else 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        return self.buckets.quantile(q)


class SlidingWindow:
    """Fixed-horizon sliding aggregation over a ring of time slots.

    ``window_s`` seconds are covered by ``slots`` equal sub-slots; an
    observation lands in the current slot, and reads merge every slot
    younger than the horizon.  Expiry is O(1) per expired slot (popped
    off the ring) — no per-observation timestamps are kept, so memory is
    ``slots`` buckets regardless of traffic.  Thread-safe.
    """

    def __init__(self, window_s: float, slots: int = 12,
                 clock=time.monotonic):
        if window_s <= 0:
            raise ValueError("window_s must be > 0")
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.window_s = float(window_s)
        self.slots = slots
        self._slot_w = self.window_s / slots
        self._clock = clock
        self._ring: Deque[_Slot] = deque()
        self._lock = threading.Lock()

    def _prune(self, current_id: int) -> None:
        horizon = current_id - self.slots
        while self._ring and self._ring[0].slot_id <= horizon:
            self._ring.popleft()

    def observe(self, value: float, now: Optional[float] = None) -> None:
        if now is None:
            now = self._clock()
        slot_id = int(now // self._slot_w)
        with self._lock:
            if not self._ring or self._ring[-1].slot_id != slot_id:
                self._ring.append(_Slot(slot_id))
                self._prune(slot_id)
            slot = self._ring[-1]
            slot.count += 1
            slot.total += float(value)
            slot.buckets.observe(float(value))

    def snapshot(self, now: Optional[float] = None) -> WindowSnapshot:
        if now is None:
            now = self._clock()
        current_id = int(now // self._slot_w)
        merged = LogBuckets()
        count = 0
        total = 0.0
        with self._lock:
            self._prune(current_id)
            for slot in self._ring:
                count += slot.count
                total += slot.total
                merged.merge_from(slot.buckets)
        return WindowSnapshot(self.window_s, count, total, merged)


#: The live-view horizons every windowed instrument carries.
WINDOW_SPANS: Tuple[Tuple[str, float], ...] = (
    ("10s", 10.0), ("1m", 60.0), ("5m", 300.0),
)


class WindowedHistogram:
    """One value stream observed into all standard window horizons."""

    def __init__(self, spans: Tuple[Tuple[str, float], ...] = WINDOW_SPANS,
                 clock=time.monotonic):
        self.windows: Dict[str, SlidingWindow] = {
            label: SlidingWindow(seconds, clock=clock)
            for label, seconds in spans
        }

    def observe(self, value: float, now: Optional[float] = None) -> None:
        for window in self.windows.values():
            window.observe(value, now=now)

    def snapshots(self, now: Optional[float] = None
                  ) -> Dict[str, WindowSnapshot]:
        return {
            label: window.snapshot(now=now)
            for label, window in self.windows.items()
        }
