"""Turn a trace event log back into profile tables.

``python -m repro report trace.jsonl`` loads the JSONL events a
:class:`~repro.obs.sinks.JsonlSink` wrote and prints:

* a per-phase profile (span name, count, total/mean/max seconds, and
  summed row attributes) for wall-clock spans,
* a per-operator profile (``op:*`` spans with rows-in/rows-out), and
* the same tables for simulated-clock spans, when the cluster simulator
  contributed events — directly comparable because both clocks share
  one span vocabulary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .sinks import SpanStats


def load_events(path: str) -> List[dict]:
    """Read one JSONL trace file into a list of record dicts."""
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


@dataclass
class ProfileReport:
    """Aggregated view of one trace: spans by clock, events, batches."""

    #: clock name -> span name -> aggregate stats.
    spans: Dict[str, Dict[str, SpanStats]] = field(default_factory=dict)
    #: point-event name -> occurrence count.
    events: Dict[str, int] = field(default_factory=dict)
    #: per-batch accounting pulled from ``batch`` span attributes,
    #: in batch order: [{"batch_index": ..., "rows_processed": ...}].
    batches: List[dict] = field(default_factory=list)

    def span_stats(self, name: str,
                   clock: str = "wall") -> Optional[SpanStats]:
        return self.spans.get(clock, {}).get(name)


def build_profile(records: List[dict]) -> ProfileReport:
    """Fold raw trace records into a :class:`ProfileReport`."""
    report = ProfileReport()
    for record in records:
        kind = record.get("type")
        if kind == "span":
            clock = record.get("clock", "wall")
            by_name = report.spans.setdefault(clock, {})
            stats = by_name.get(record["name"])
            if stats is None:
                stats = by_name[record["name"]] = SpanStats()
            stats.observe(record.get("elapsed_s", 0.0),
                          record.get("attrs"))
            if record["name"] == "batch":
                report.batches.append(dict(record.get("attrs") or {}))
        elif kind == "event":
            name = record["name"]
            report.events[name] = report.events.get(name, 0) + 1
    report.batches.sort(key=lambda a: a.get("batch_index", 0))
    return report


def _fmt_seconds(value: float) -> str:
    if value >= 100:
        return f"{value:10.1f}"
    if value >= 0.1:
        return f"{value:10.4f}"
    return f"{value * 1e3:8.3f}ms"


def render_span_table(spans: Dict[str, SpanStats],
                      events: Optional[Dict[str, int]] = None,
                      indent: str = "") -> str:
    """One aligned profile table over a name -> stats mapping."""
    if not spans:
        return indent + "(no spans)"
    name_width = max(max(len(n) for n in spans), len("span"))
    header = (
        f"{'span':<{name_width}} {'count':>7} {'total':>10} "
        f"{'mean':>10} {'max':>10} {'rows':>14}"
    )
    lines = [indent + header, indent + "-" * len(header)]
    ordered = sorted(
        spans.items(), key=lambda kv: kv[1].total_s, reverse=True
    )
    for name, stats in ordered:
        rows = stats.attr_totals.get("rows_in")
        if rows is None:
            rows = stats.attr_totals.get("rows")
        rows_text = f"{int(rows):>14,}" if rows is not None else " " * 14
        lines.append(
            indent
            + f"{name:<{name_width}} {stats.count:>7} "
            f"{_fmt_seconds(stats.total_s):>10} "
            f"{_fmt_seconds(stats.mean_s):>10} "
            f"{_fmt_seconds(stats.max_s):>10} {rows_text}"
        )
    if events:
        lines.append("")
        for name in sorted(events):
            lines.append(indent + f"event {name}: {events[name]}")
    return "\n".join(lines)


def _render_operator_table(ops: Dict[str, SpanStats],
                           indent: str = "") -> str:
    name_width = max(max(len(n) for n in ops), len("operator"))
    header = (
        f"{'operator':<{name_width}} {'count':>7} {'total':>10} "
        f"{'rows in':>14} {'rows out':>14}"
    )
    lines = [indent + header, indent + "-" * len(header)]
    ordered = sorted(
        ops.items(), key=lambda kv: kv[1].total_s, reverse=True
    )
    for name, stats in ordered:
        rows_in = int(stats.attr_totals.get("rows_in", 0))
        rows_out = int(stats.attr_totals.get("rows_out", 0))
        lines.append(
            indent
            + f"{name:<{name_width}} {stats.count:>7} "
            f"{_fmt_seconds(stats.total_s):>10} "
            f"{rows_in:>14,} {rows_out:>14,}"
        )
    return "\n".join(lines)


#: Recovery-event names in display order, with console labels.
_RECOVERY_LABELS = (
    ("fault.task_retry", "task retries"),
    ("fault.task_failed", "permanent task failures"),
    ("fault.speculation", "speculative re-executions"),
    ("fault.batch_retry", "batch-load retries"),
    ("fault.batch_skipped", "batches skipped (reweighted)"),
    ("fault.batch_failed", "simulated batch failures"),
    ("fault.row_quarantined", "rows quarantined"),
    ("checkpoint.saved", "checkpoints saved"),
    ("checkpoint.resumed", "runs resumed"),
)


def render_recovery(report: ProfileReport) -> Optional[str]:
    """The recovery section, or None when the run had no faults.

    Summarizes every ``fault.*``/``checkpoint.*`` event the fault
    subsystem emitted, plus batch spans flagged skipped/failed, so a
    degraded run is visible from its trace alone.
    """
    recovery = {
        name: count for name, count in report.events.items()
        if name.startswith("fault.") or name.startswith("checkpoint.")
    }
    skipped = sum(1 for b in report.batches if b.get("skipped"))
    failed = sum(1 for b in report.batches if b.get("failed"))
    if not recovery and not skipped and not failed:
        return None
    lines = ["== recovery =="]
    known = set()
    for name, label in _RECOVERY_LABELS:
        known.add(name)
        if name in recovery:
            lines.append(f"{label:<30} {recovery[name]:>7}")
    for name in sorted(recovery):
        if name not in known:
            lines.append(f"{name:<30} {recovery[name]:>7}")
    if skipped or failed:
        lines.append(
            f"{'degraded batch spans':<30} {skipped + failed:>7}"
        )
    return "\n".join(lines)


def render_profile(report: ProfileReport) -> str:
    """The full multi-section profile ``python -m repro report`` prints."""
    sections = []
    for clock in sorted(report.spans):
        by_name = report.spans[clock]
        ops = {n: s for n, s in by_name.items() if n.startswith("op:")}
        others = {
            n: s for n, s in by_name.items() if not n.startswith("op:")
        }
        title = ("per-phase profile"
                 if clock == "wall" else f"{clock}-clock profile")
        sections.append(f"== {title} ==")
        sections.append(render_span_table(others))
        if ops:
            sections.append("")
            sections.append(f"== per-operator profile ({clock} clock) ==")
            sections.append(_render_operator_table(ops))
        sections.append("")
    if report.batches:
        total_rows = sum(
            int(b.get("rows_processed", 0)) for b in report.batches
        )
        rebuilds = sum(int(b.get("rebuilds", 0)) for b in report.batches)
        sections.append(
            f"batches: {len(report.batches)}   rows processed: "
            f"{total_rows:,}   rebuilds: {rebuilds}"
        )
    recovery = render_recovery(report)
    if recovery is not None:
        sections.append("")
        sections.append(recovery)
    if report.events:
        sections.append("events: " + ", ".join(
            f"{name}={count}" for name, count in sorted(
                report.events.items()
            )
        ))
    return "\n".join(sections).rstrip()
