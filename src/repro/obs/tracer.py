"""Hierarchical spans, point events and the one shared clock path.

Span hierarchy mirrors the execution model: ``query`` → ``batch`` →
``block`` → ``phase:*`` / ``op:*``.  A disabled tracer (the default)
hands back one shared no-op span, so instrumented hot paths pay a single
attribute check per record site.

The :class:`Timer` here is *the* clock path for every component that
reports elapsed seconds — the G-OLA controller, the CDM and batch
baselines — so cross-engine time ratios (Figure 3(b)) come from one
measurement discipline rather than ad-hoc ``perf_counter()`` bracketing.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import List, Optional

from .metrics import MetricsRegistry
from .sinks import (
    NULL_SINK,
    AggregatingSink,
    JsonlSink,
    TeeSink,
    TraceSink,
)


class Timer:
    """Context-manager stopwatch over the shared monotonic clock.

    Usable standalone (the baselines' timing bracket) or via
    :meth:`Tracer.timer`::

        with Timer() as t:
            work()
        print(t.elapsed_s)
    """

    __slots__ = ("started", "_stopped")

    def __init__(self) -> None:
        self.started = 0.0
        self._stopped: Optional[float] = None

    def __enter__(self) -> "Timer":
        self.started = time.perf_counter()
        self._stopped = None
        return self

    def __exit__(self, *exc) -> None:
        self._stopped = time.perf_counter()

    @property
    def elapsed_s(self) -> float:
        """Seconds since start; freezes once the context exits."""
        end = self._stopped
        if end is None:
            end = time.perf_counter()
        return end - self.started


class Span:
    """One timed region; records itself to the sink on exit."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id",
                 "start_ts", "elapsed_s")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.start_ts = 0.0
        self.elapsed_s = 0.0

    def set(self, key: str, value) -> None:
        """Attach/overwrite one attribute (visible in the record)."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        tracer = self.tracer
        self.span_id = tracer._alloc_id()
        stack = tracer._stack
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self.start_ts = time.perf_counter() - tracer.origin
        return self

    def __exit__(self, *exc) -> None:
        tracer = self.tracer
        self.elapsed_s = (
            time.perf_counter() - tracer.origin - self.start_ts
        )
        stack = tracer._stack
        if stack and stack[-1] == self.span_id:
            stack.pop()
        tracer._emit({
            "type": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "ts": round(self.start_ts, 9),
            "elapsed_s": self.elapsed_s,
            "clock": "wall",
            "attrs": self.attrs,
        })


class _NullSpan:
    """Shared do-nothing span for disabled tracers."""

    __slots__ = ()
    elapsed_s = 0.0

    def set(self, key: str, value) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Emits spans/events to one sink; owns a :class:`MetricsRegistry`.

    ``tracer.enabled`` is the one cheap check every record site guards
    with; when False, :meth:`span` returns a shared no-op and
    :meth:`event` returns immediately.

    Thread-aware: the open-span stack is thread-local (each worker
    thread nests its own spans), while id allocation and sink emission
    are serialized behind one lock so concurrent spans interleave
    safely in the event stream.  Worker threads parent their spans
    under a coordinator span via :meth:`scoped_parent`.
    """

    def __init__(self, sink: Optional[TraceSink] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.sink = sink if sink is not None else NULL_SINK
        self.enabled = self.sink.enabled
        self.metrics = (
            metrics if metrics is not None
            else MetricsRegistry(enabled=self.enabled)
        )
        self.origin = time.perf_counter()
        self._next_id = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    @property
    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _alloc_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def _emit(self, record: dict) -> None:
        with self._lock:
            self.sink.emit(record)

    @contextmanager
    def scoped_parent(self, parent_id: Optional[int]):
        """Run this thread's spans as children of ``parent_id``.

        Used when work is fanned out to worker threads: each worker
        enters the scope so its spans nest under the coordinator's span
        instead of floating at top level.
        """
        stack = self._stack
        saved = list(stack)
        stack[:] = [parent_id] if parent_id is not None else []
        try:
            yield
        finally:
            stack[:] = saved

    # -- recording -------------------------------------------------------

    def span(self, name: str, **attrs):
        """A timed child region of whatever span is currently open."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """A point-in-time record under the currently open span."""
        if not self.enabled:
            return
        stack = self._stack
        self._emit({
            "type": "event",
            "name": name,
            "parent": stack[-1] if stack else None,
            "ts": round(time.perf_counter() - self.origin, 9),
            "attrs": attrs,
        })

    def record_span(self, name: str, elapsed_s: float,
                    clock: str = "wall", **attrs) -> None:
        """Record a span whose duration was measured externally.

        The cluster simulator uses ``clock="simulated"`` so simulated
        per-batch/per-stage profiles land in the same event stream as
        real ones and the report can compare them side by side.
        """
        if not self.enabled:
            return
        stack = self._stack
        self._emit({
            "type": "span",
            "name": name,
            "id": self._alloc_id(),
            "parent": stack[-1] if stack else None,
            "ts": round(time.perf_counter() - self.origin, 9),
            "elapsed_s": float(elapsed_s),
            "clock": clock,
            "attrs": attrs,
        })

    def timer(self) -> Timer:
        """A standalone stopwatch on the shared clock path."""
        return Timer()

    def close(self) -> None:
        """Flush and close the sink (idempotent)."""
        self.sink.close()


#: The always-available disabled tracer; safe to share everywhere.
NULL_TRACER = Tracer(NULL_SINK)

_default_tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The process-wide default tracer (disabled unless installed)."""
    return _default_tracer


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install (or, with None, clear) the process-wide default tracer."""
    global _default_tracer
    _default_tracer = tracer if tracer is not None else NULL_TRACER
    return _default_tracer


def tracer_from_config(config) -> Tracer:
    """Build the tracer a :class:`~repro.config.GolaConfig` asks for.

    ``trace_path`` adds a JSONL event log; ``trace`` (or any path)
    enables in-memory aggregation for live rendering; ``metrics`` turns
    on the registry even without span sinks.  With everything off, the
    process-wide default is returned (normally :data:`NULL_TRACER`).
    """
    trace = bool(getattr(config, "trace", False))
    trace_path = getattr(config, "trace_path", None)
    metrics_on = bool(getattr(config, "metrics", False))
    if not trace and trace_path is None:
        if metrics_on:
            return Tracer(NULL_SINK, metrics=MetricsRegistry(enabled=True))
        return get_tracer()
    sinks: List[TraceSink] = [AggregatingSink()]
    if trace_path is not None:
        rotate_mb = float(getattr(config, "trace_rotate_mb", 0.0) or 0.0)
        sinks.append(JsonlSink(
            str(trace_path), max_bytes=int(rotate_mb * 2 ** 20),
        ))
    sink = sinks[0] if len(sinks) == 1 else TeeSink(*sinks)
    return Tracer(sink, metrics=MetricsRegistry(enabled=True))
