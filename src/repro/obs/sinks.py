"""Trace sinks: where span/event records go.

One interface, three implementations:

* :class:`NullSink` — the default; ``enabled`` is False so every record
  site short-circuits before building a record dict.
* :class:`JsonlSink` — one JSON object per line, the event log
  ``python -m repro report`` consumes (schema documented in README).
* :class:`AggregatingSink` — in-memory per-span-name statistics for live
  console rendering and tests.

:class:`TeeSink` fans one record out to several sinks (e.g. JSONL file +
live aggregation).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, TextIO, Union


class TraceSink:
    """Interface: receives record dicts; ``enabled`` gates producers."""

    enabled = True

    def emit(self, record: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/close underlying resources (idempotent)."""


class NullSink(TraceSink):
    """Discards everything; producers skip work entirely."""

    enabled = False

    def emit(self, record: dict) -> None:
        pass


NULL_SINK = NullSink()


class JsonlSink(TraceSink):
    """Writes one compact JSON object per record line.

    Accepts a path (opened lazily, owned and closed by the sink) or an
    already-open file-like object (borrowed, only flushed).

    Owned paths can rotate: when the current file exceeds ``max_bytes``
    or ``max_lines`` (0 disables either cap), it is rolled to
    ``<path>.1`` (existing backups shifting to ``.2``, ... up to
    ``backups``, oldest dropped) and a fresh file is started — so a
    long-running ``repro serve --trace`` keeps at most
    ``(backups + 1) * max_bytes`` of trace on disk.  Borrowed file
    objects never rotate.
    """

    def __init__(self, target: Union[str, "TextIO"],
                 max_bytes: int = 0, max_lines: int = 0, backups: int = 2):
        self._path: Optional[str] = None
        self._file: Optional[TextIO] = None
        if isinstance(target, str):
            self._path = target
        else:
            self._file = target
        self._owns = self._path is not None
        self.max_bytes = int(max_bytes)
        self.max_lines = int(max_lines)
        self.backups = max(int(backups), 0)
        self._bytes = 0
        self._lines = 0

    def _over_limit(self) -> bool:
        return (
            (self.max_bytes > 0 and self._bytes >= self.max_bytes)
            or (self.max_lines > 0 and self._lines >= self.max_lines)
        )

    def _rotate(self) -> None:
        self._file.close()
        self._file = None
        for i in range(self.backups, 1, -1):
            older = f"{self._path}.{i - 1}"
            if os.path.exists(older):
                os.replace(older, f"{self._path}.{i}")
        if self.backups > 0:
            os.replace(self._path, f"{self._path}.1")
        else:
            os.remove(self._path)
        self._bytes = 0
        self._lines = 0

    def emit(self, record: dict) -> None:
        if self._owns and self._file is not None and self._over_limit():
            self._rotate()
        if self._file is None:
            self._file = open(self._path, "w", encoding="utf-8")
        line = json.dumps(record, separators=(",", ":"), default=str) + "\n"
        self._file.write(line)
        if self._owns:
            self._bytes += len(line.encode("utf-8"))
            self._lines += 1

    def close(self) -> None:
        if self._file is None:
            return
        if self._owns:
            self._file.close()
            self._file = None
        else:
            self._file.flush()


@dataclass
class SpanStats:
    """Aggregate over all completions of one span name."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0
    #: Sums of integer-valued span attributes (rows_in, rows_out, ...).
    attr_totals: Dict[str, float] = None

    def __post_init__(self) -> None:
        if self.attr_totals is None:
            self.attr_totals = {}

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else float("nan")

    def observe(self, elapsed_s: float, attrs: Optional[dict]) -> None:
        self.count += 1
        self.total_s += elapsed_s
        if elapsed_s < self.min_s:
            self.min_s = elapsed_s
        if elapsed_s > self.max_s:
            self.max_s = elapsed_s
        if attrs:
            for key, value in attrs.items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                self.attr_totals[key] = (
                    self.attr_totals.get(key, 0.0) + value
                )


class AggregatingSink(TraceSink):
    """Folds span records into per-name statistics, in memory.

    ``spans`` maps span name -> :class:`SpanStats`; ``events`` counts
    point events by name.  ``render()`` produces the same per-phase
    profile table the CLI report prints, without any file round trip.
    """

    def __init__(self) -> None:
        self.spans: Dict[str, SpanStats] = {}
        self.events: Dict[str, int] = {}

    def emit(self, record: dict) -> None:
        kind = record.get("type")
        if kind == "span":
            stats = self.spans.get(record["name"])
            if stats is None:
                stats = self.spans[record["name"]] = SpanStats()
            stats.observe(record.get("elapsed_s", 0.0),
                          record.get("attrs"))
        elif kind == "event":
            name = record["name"]
            self.events[name] = self.events.get(name, 0) + 1

    def total_seconds(self, name: str) -> float:
        stats = self.spans.get(name)
        return stats.total_s if stats is not None else 0.0

    def render(self, indent: str = "") -> str:
        from .report import render_span_table  # local: avoid import cycle

        return render_span_table(self.spans, self.events, indent=indent)


class TeeSink(TraceSink):
    """Fans every record out to several child sinks."""

    def __init__(self, *sinks: TraceSink):
        self.sinks: List[TraceSink] = [s for s in sinks if s.enabled]
        self.enabled = bool(self.sinks)

    def emit(self, record: dict) -> None:
        for sink in self.sinks:
            sink.emit(record)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
