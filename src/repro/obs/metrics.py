"""Counters, gauges and histograms with mergeable snapshots.

The registry mirrors the mergeable-aggregate discipline of the engine
itself: every instrument folds into a plain-data snapshot, and snapshots
from independent runs (or simulated workers) merge associatively — the
property PF-OLA identifies as the precondition for cheap runtime
introspection in a parallel OLA framework.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Dict

from .live import LogBuckets


class Counter:
    """A monotonically increasing count (rows folded, rebuilds, ...).

    Increments are serialized behind a lock so concurrent worker threads
    (block fan-out in ``repro.parallel``) never lose updates.
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n


class Gauge:
    """A last-write-wins level (current uncertain-set size, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming summary of a value distribution (batch seconds, ...).

    Keeps count/total/min/max plus a sum of squares so snapshots expose
    mean and standard deviation, and a bounded log-bucket store
    (:class:`~repro.obs.live.LogBuckets`) so they expose quantiles.
    Memory is O(occupied buckets) — bounded by the float64 exponent
    range, never by the number of observations — and everything merges
    associatively.
    """

    __slots__ = ("count", "total", "sq_total", "min", "max", "buckets",
                 "_lock")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.sq_total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets = LogBuckets()
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.sq_total += value * value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self.buckets.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    @property
    def stdev(self) -> float:
        if self.count == 0:
            return float("nan")
        var = self.sq_total / self.count - self.mean ** 2
        return math.sqrt(max(var, 0.0))

    def snapshot(self) -> "HistogramSnapshot":
        """A consistent plain-data view (taken under the lock)."""
        with self._lock:
            return HistogramSnapshot(
                count=self.count, total=self.total, sq_total=self.sq_total,
                min=self.min, max=self.max, buckets=self.buckets.copy(),
            )


@dataclass
class HistogramSnapshot:
    """Plain-data view of one histogram, mergeable with another."""

    count: int = 0
    total: float = 0.0
    sq_total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    buckets: LogBuckets = field(default_factory=LogBuckets)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Quantile estimate, accurate to one log bucket (~9%)."""
        return self.buckets.quantile(q)

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        return HistogramSnapshot(
            count=self.count + other.count,
            total=self.total + other.total,
            sq_total=self.sq_total + other.sq_total,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
            buckets=self.buckets.merge(other.buckets),
        )


@dataclass
class MetricsSnapshot:
    """All instruments of a registry at one moment; mergeable."""

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistogramSnapshot] = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two snapshots: counters add, gauges last-write-wins,
        histograms merge component-wise."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        gauges.update(other.gauges)
        histograms = dict(self.histograms)
        for name, hist in other.histograms.items():
            mine = histograms.get(name)
            histograms[name] = hist if mine is None else mine.merge(hist)
        return MetricsSnapshot(
            counters=counters, gauges=gauges, histograms=histograms
        )

    def describe(self) -> str:
        """An aligned, stable-order text rendering for consoles/tests."""
        lines = []
        for name in sorted(self.counters):
            lines.append(f"counter   {name:<32} {self.counters[name]:>14,}")
        for name in sorted(self.gauges):
            lines.append(f"gauge     {name:<32} {self.gauges[name]:>14,.6g}")
        for name in sorted(self.histograms):
            h = self.histograms[name]
            lines.append(
                f"histogram {name:<32} n={h.count:<8,} mean={h.mean:.6g} "
                f"min={h.min:.6g} max={h.max:.6g}"
            )
        return "\n".join(lines)


class MetricsRegistry:
    """Lazily-created named instruments behind one ``enabled`` flag.

    Call sites hold the instrument and guard updates with
    ``registry.enabled`` (or just update — instruments are cheap); a
    disabled registry still hands out working instruments so code never
    branches on existence, only on cost.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter()
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge()
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram()
        return inst

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters={n: c.value for n, c in self._counters.items()},
            gauges={n: g.value for n, g in self._gauges.items()},
            histograms={
                n: h.snapshot() for n, h in self._histograms.items()
            },
        )

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
