"""Row quarantine: tolerate messy inputs instead of aborting on them.

In-situ OLA (OLA-RAW) must process raw files where a fraction of rows is
malformed; aborting a 100-node scan on the first bad row is how the
reproduction *used* to behave.  A :class:`RowQuarantine` collects the bad
rows (with their position and reason) up to a configurable error budget;
exceeding the budget still aborts, because a file that is mostly garbage
is a schema problem, not a data-quality blip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import SchemaError
from ..obs import NULL_TRACER, Tracer


@dataclass
class QuarantinedRow:
    """One rejected input row and why it was rejected."""

    line_number: int  # 1-based line in the source file (header = line 1)
    column: str
    value: str
    reason: str


@dataclass
class RowQuarantine:
    """Collects malformed rows during a load, bounded by an error budget.

    ``error_budget`` is the maximum tolerated *fraction* of quarantined
    rows; :meth:`check_budget` raises :class:`~repro.errors.SchemaError`
    beyond it.  Every quarantined row is also emitted as a
    ``fault.row_quarantined`` trace event so the recovery report can
    account for lost input.
    """

    error_budget: float = 0.05
    label: str = "rows"
    tracer: Tracer = field(default_factory=lambda: NULL_TRACER)
    rows: List[QuarantinedRow] = field(default_factory=list)
    total_seen: int = 0

    @property
    def count(self) -> int:
        return len(self.rows)

    @property
    def fraction(self) -> float:
        if self.total_seen <= 0:
            return 0.0
        return self.count / self.total_seen

    def add(self, line_number: int, column: str, value: str,
            reason: str) -> None:
        self.rows.append(QuarantinedRow(
            line_number=line_number, column=column, value=value,
            reason=reason,
        ))
        if self.tracer.enabled:
            self.tracer.event(
                "fault.row_quarantined", source=self.label,
                line=line_number, column=column, reason=reason,
            )
        if self.tracer.metrics.enabled:
            self.tracer.metrics.counter("faults.rows_quarantined").inc()

    def check_budget(self, total_rows: int, source: str = "") -> None:
        """Abort the load when quarantined rows exceed the budget."""
        self.total_seen = total_rows
        if total_rows <= 0:
            return
        if self.count > self.error_budget * total_rows:
            where = source or self.label
            first = self.rows[0]
            raise SchemaError(
                f"{where}: {self.count}/{total_rows} rows quarantined, "
                f"over the {self.error_budget:.1%} error budget (first: "
                f"line {first.line_number}, column {first.column!r}: "
                f"{first.reason})"
            )

    def summary(self) -> Optional[str]:
        """One line for consoles, or None when nothing was quarantined."""
        if not self.rows:
            return None
        return (
            f"quarantined {self.count}/{self.total_seen} rows "
            f"({self.fraction:.2%}, budget {self.error_budget:.1%})"
        )
