"""Checkpoint/resume for online runs.

A :class:`RunCheckpoint` captures everything a
:class:`~repro.core.controller.QueryController` needs to continue an
online run from the last completed mini-batch instead of from scratch:

* progress — last batch index, folded batch count, skipped batches and
  lost rows (the skip-and-reweight accounting);
* per-block delta state — folded aggregate states, the uncertain-set
  cache, guards and the group index (deep-copied so the live run can
  keep mutating);
* RNG state — the Poisson weight stream and the fault injector's
  per-point streams, so a resumed run draws exactly what the
  uninterrupted run would have;
* retained raw batches, when ``retain_batches`` is on, so guard-violation
  rebuilds still work after a resume.

Checkpoints are fingerprinted against the query plan and the
statistically relevant config knobs; restoring against a different query
or config raises :class:`~repro.errors.CheckpointError` instead of
silently producing garbage.  ``save``/``load`` use pickle — fine for
numpy state and plan objects; UDAF closures are the one thing that may
not round-trip through a file (in-memory checkpoints carry them fine).
"""

from __future__ import annotations

import copy
import hashlib
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

from ..errors import CheckpointError

CHECKPOINT_VERSION = 1


def config_fingerprint(config) -> str:
    """Hash of the config fields that determine the snapshot stream.

    Trace/metrics knobs are deliberately excluded: resuming with tracing
    toggled is safe and useful (e.g. resume a crashed run with tracing on
    to see why it crashed).
    """
    relevant = (
        config.num_batches, config.bootstrap_trials,
        config.epsilon_multiplier, config.confidence, config.seed,
        config.shuffle, config.retain_batches, config.max_quantile_sample,
        config.trial_aware_uncertain,
        config.faults.enabled, config.faults.seed,
        config.faults.batch_failure_prob, config.faults.max_retries,
    )
    return hashlib.sha256(repr(relevant).encode()).hexdigest()[:16]


def query_fingerprint(query) -> str:
    """Hash of the logical plan (its stable description)."""
    return hashlib.sha256(query.describe().encode()).hexdigest()[:16]


@dataclass
class RunCheckpoint:
    """Resumable state of an online run after some completed batch."""

    query_fp: str
    config_fp: str
    batch_index: int  # last batch processed (folded or skipped)
    folded_count: int
    skipped_batches: List[int]
    lost_rows: int
    weights_rng_state: dict
    injector_state: Dict[str, dict]
    block_states: Dict[str, dict]
    retained: List = field(default_factory=list)
    version: int = CHECKPOINT_VERSION

    def verify(self, query, config) -> None:
        """Refuse to restore against a different query or config."""
        if self.version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint version {self.version} != "
                f"{CHECKPOINT_VERSION}"
            )
        if self.query_fp != query_fingerprint(query):
            raise CheckpointError(
                "checkpoint was taken for a different query plan"
            )
        if self.config_fp != config_fingerprint(config):
            raise CheckpointError(
                "checkpoint was taken under a different configuration "
                "(batches/seed/bootstrap/faults must match)"
            )

    def save(self, path: Union[str, Path]) -> None:
        """Pickle the checkpoint to ``path`` (atomic rename)."""
        path = Path(path)
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "wb") as fh:
            pickle.dump(self, fh, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path)

    @staticmethod
    def load(path: Union[str, Path]) -> "RunCheckpoint":
        try:
            with open(path, "rb") as fh:
                out = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError) as exc:
            raise CheckpointError(
                f"cannot load checkpoint {path}: {exc}"
            ) from exc
        if not isinstance(out, RunCheckpoint):
            raise CheckpointError(f"{path} is not a run checkpoint")
        return out

    def copy_block_states(self) -> Dict[str, dict]:
        """Deep copies safe to hand to live runtimes."""
        return copy.deepcopy(self.block_states)
