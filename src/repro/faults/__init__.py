"""Fault injection, retry/speculation, and graceful degradation.

The paper's prototype runs on a 100-node Spark/EC2 cluster where task
failures, stragglers and lost partitions are routine; an online system
that aborts on the first hiccup never reaches its final batch.  This
package makes misbehavior a *first-class, deterministic* input:

* :class:`FaultInjector` — seeded per-fault-point RNG streams inject
  task failures, stragglers, batch-load errors and malformed rows at
  named fault points registered throughout the stack
  (:func:`register_fault_point` / :func:`fault_points`);
* :class:`RetryPolicy` — the shared bounded-retry/exponential-backoff
  policy (cluster tasks, controller batch loads);
* :class:`RowQuarantine` — collect malformed input rows up to an error
  budget instead of aborting the load;
* :class:`RunCheckpoint` — checkpoint/resume of online-run state
  (folded batches, uncertain-set caches, RNG streams).

Recovery semantics live in the layers themselves: the cluster simulator
re-executes failed/straggling tasks (latency curves include recovery
cost), and the controller degrades gracefully — a permanently failed
mini-batch is dropped and multiplicities/CIs are re-derived from the
batches actually folded (sound because batches are uniform random,
hence exchangeable), with snapshots flagged ``degraded``.
"""

from .chaos import ChaosRunner, ChaosSpec, snapshot_fingerprint
from .checkpoint import (
    RunCheckpoint,
    config_fingerprint,
    query_fingerprint,
)
from .injector import (
    FAULT_KINDS,
    NULL_INJECTOR,
    FaultInjector,
    FaultPoint,
    describe_fault_points,
    fault_points,
    register_fault_point,
)
from .policy import RetryPolicy
from .quarantine import QuarantinedRow, RowQuarantine

__all__ = [
    "ChaosRunner",
    "ChaosSpec",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPoint",
    "NULL_INJECTOR",
    "QuarantinedRow",
    "RetryPolicy",
    "RowQuarantine",
    "RunCheckpoint",
    "config_fingerprint",
    "describe_fault_points",
    "fault_points",
    "query_fingerprint",
    "register_fault_point",
    "snapshot_fingerprint",
]
