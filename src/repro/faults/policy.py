"""Recovery policies: bounded retry with exponential backoff.

One policy object is shared by every layer that retries — the cluster
simulator's task re-execution and the controller's mini-batch reloads —
so "how patient is the system" is a single configuration surface.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import FaultsConfig


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff.

    ``delay(attempt)`` is the pause before retry ``attempt`` (0-based):
    ``backoff_s * backoff_factor ** attempt``.  An operation that fails
    more than ``max_retries`` times is permanently failed and handed to
    the caller's degradation path (skip-and-reweight for batches, stage
    failure for simulated tasks).
    """

    max_retries: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0

    @classmethod
    def from_faults(cls, faults: FaultsConfig) -> "RetryPolicy":
        return cls(
            max_retries=faults.max_retries,
            backoff_s=faults.retry_backoff_s,
            backoff_factor=faults.retry_backoff_factor,
        )

    def delay(self, attempt: int) -> float:
        """Backoff pause before 0-based retry ``attempt``."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        return self.backoff_s * self.backoff_factor ** attempt

    def total_delay(self, attempts: int) -> float:
        """Summed backoff across the first ``attempts`` retries."""
        return sum(self.delay(a) for a in range(attempts))

    def gives_up_after(self, failures: int) -> bool:
        """Does ``failures`` consecutive failures exhaust the budget?"""
        return failures > self.max_retries
