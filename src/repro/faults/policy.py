"""Recovery policies: bounded retry with exponential backoff + jitter.

One policy object is shared by every layer that retries — the cluster
simulator's task re-execution, the controller's mini-batch reloads, the
supervised worker pool and the load generator's resubmissions — so "how
patient is the system" is a single configuration surface.

:meth:`RetryPolicy.delay` is the deterministic exponential *cap*;
:meth:`RetryPolicy.jittered_delay` draws seeded **full jitter**
(``uniform(0, cap)``, AWS-style) so many actors retrying the same
failure never synchronize into a retry storm, while two runs with the
same seeds still sleep identical sequences.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..config import FaultsConfig


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff.

    ``delay(attempt)`` is the pause cap before retry ``attempt``
    (0-based): ``backoff_s * backoff_factor ** attempt``.  An operation
    that fails more than ``max_retries`` times is permanently failed and
    handed to the caller's degradation path (skip-and-reweight for
    batches, stage failure for simulated tasks, poison quarantine for
    supervised shards).
    """

    max_retries: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0

    @classmethod
    def from_faults(cls, faults: FaultsConfig) -> "RetryPolicy":
        return cls(
            max_retries=faults.max_retries,
            backoff_s=faults.retry_backoff_s,
            backoff_factor=faults.retry_backoff_factor,
        )

    def delay(self, attempt: int) -> float:
        """Deterministic backoff cap before 0-based retry ``attempt``."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        return self.backoff_s * self.backoff_factor ** attempt

    def jitter_rng(self, seed: int, actor: str) -> random.Random:
        """A per-actor jitter stream: same (seed, actor) → same sleeps.

        Distinct actors (``"loadgen:c3"``, ``"supervisor:shard"``,
        ``"scheduler:q7"``) draw from decorrelated streams, which is the
        whole point — concurrent retriers spread out instead of waking
        in lockstep.
        """
        return random.Random(f"{seed}:{actor}:retry-jitter")

    def jittered_delay(self, attempt: int,
                       rng: "random.Random") -> float:
        """Full-jitter pause before retry ``attempt``: uniform in
        ``[0, delay(attempt)]``, drawn from ``rng`` (seeded, so runs
        replay the exact same pauses)."""
        return rng.uniform(0.0, self.delay(attempt))

    def total_delay(self, attempts: int) -> float:
        """Summed backoff caps across the first ``attempts`` retries."""
        return sum(self.delay(a) for a in range(attempts))

    def gives_up_after(self, failures: int) -> bool:
        """Does ``failures`` consecutive failures exhaust the budget?"""
        return failures > self.max_retries
