"""End-to-end chaos harness: the paper workload under real worker chaos.

The supervised pool's unit tests exercise each recovery path in
isolation; this harness proves the property that matters — **chaos is
invisible in the answers**.  For each paper query it

1. runs the query serially, faults off, and fingerprints the full
   snapshot stream (every estimate, CI bound, uncertain-set size and
   accounting field, bitwise);
2. re-runs it on a supervised process pool while workers are being
   SIGKILLed mid-shard, suspended past their deadlines and their results
   corrupted in flight — both through the seeded in-band injector
   (``parallel.worker_kill`` / ``worker_hang`` / ``result_corrupt``) and
   through an *external* seeded killer thread sending real ``SIGKILL`` /
   ``SIGSTOP`` to live worker PIDs;
3. asserts the chaotic stream is **bit-identical** to the serial one.

Bit-identity holds because every recovery action re-executes stateless
per-(batch, trial) shard specs: a re-dispatched, quarantined or
integrity-rejected shard recomputes exactly the same deterministic
function of its payload (see ``repro.parallel.supervisor``).

``repro chaos`` runs this and writes a JSON report; exit status 0 means
every query survived bit-identical.
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import FaultsConfig, GolaConfig, ParallelConfig
from ..obs import MetricsRegistry, Tracer

#: name -> (table, generator, sql attribute) resolved lazily from
#: ``repro.workloads`` (generators import numpy-heavy modules).
WORKLOAD_QUERIES = ("sbi", "c3", "q17")


@dataclass(frozen=True)
class ChaosSpec:
    """One chaos campaign: workload scale, fault mix, chaos sources."""

    rows: int = 24_000
    batches: int = 6
    trials: int = 24
    seed: int = 2015
    queries: Tuple[str, ...] = WORKLOAD_QUERIES
    workers: int = 4
    backend: str = "process"
    #: In-band seeded fault mix (drawn per shard attempt).
    kill_prob: float = 0.12
    hang_prob: float = 0.08
    hang_s: float = 2.0
    corrupt_prob: float = 0.12
    #: Supervision knobs under test.
    task_deadline_s: float = 1.0
    task_retries: int = 3
    #: Force sharding even for small chaos tables — the harness exists
    #: to exercise the pool, not to win the overhead trade-off.
    min_shard_rows: int = 128
    #: External killer: real SIGKILL/SIGSTOP against live worker PIDs
    #: from a seeded thread (process backend only).
    external_killer: bool = True
    killer_interval_s: float = 0.25
    killer_suspend_prob: float = 0.5

    @classmethod
    def smoke(cls) -> "ChaosSpec":
        """The CI-sized campaign: one query, small table, short hangs."""
        return cls(rows=8_000, batches=4, trials=16, queries=("sbi",),
                   kill_prob=0.15, hang_prob=0.1, hang_s=0.8,
                   corrupt_prob=0.15, task_deadline_s=0.8,
                   killer_interval_s=0.2)


@dataclass
class QueryReport:
    """Outcome of one query's serial-vs-chaos comparison."""

    name: str
    identical: bool
    snapshots: int
    serial_fingerprint: str
    chaos_fingerprint: str
    serial_s: float
    chaos_s: float
    counters: Dict[str, int] = field(default_factory=dict)


def snapshot_fingerprint(snapshots) -> Tuple[str, int]:
    """(sha256 hex, count) over everything user-visible in a stream.

    Bitwise: column payloads, CI bounds, uncertain-set sizes, row
    accounting, rebuilds and degradation flags all enter the digest, so
    "identical fingerprints" means "the user could not tell the runs
    apart".
    """
    digest = hashlib.sha256()
    count = 0
    for s in snapshots:
        count += 1
        digest.update(str(s.batch_index).encode())
        for name in s.table.schema.names:
            digest.update(name.encode())
            arr = s.table.column(name)
            if arr.dtype == object:
                # tobytes() on an object array hashes pointers, which
                # differ between value-identical strings produced by
                # different decode paths; hash the values instead.
                for value in arr:
                    encoded = str(value).encode()
                    digest.update(len(encoded).to_bytes(4, "little"))
                    digest.update(encoded)
            else:
                digest.update(arr.tobytes())
        for name in sorted(s.errors):
            err = s.errors[name]
            digest.update(name.encode())
            digest.update(err.lows.tobytes())
            digest.update(err.highs.tobytes())
        digest.update(repr((
            sorted(s.uncertain_sizes.items()),
            sorted(s.rows_processed.items()),
            tuple(s.rebuilds),
            s.degraded,
            tuple(s.skipped_batches or ()),
        )).encode())
    return digest.hexdigest(), count


def _workload(name: str, rows: int, seed: int):
    """Resolve a query name to (table_name, table, sql)."""
    from .. import workloads

    if name == "sbi":
        return "sessions", workloads.generate_sessions(rows, seed=seed), \
            workloads.SBI_QUERY
    if name.startswith("c"):
        return "conviva", workloads.generate_conviva(rows, seed=seed), \
            workloads.CONVIVA_QUERIES[name.upper()]
    if name.startswith("q"):
        return "tpch", workloads.generate_tpch(rows, seed=seed), \
            workloads.TPCH_QUERIES[name.upper()]
    raise ValueError(f"unknown chaos workload query {name!r}")


class _ExternalKiller:
    """A seeded thread throwing real signals at live pool workers.

    Every ``interval_s`` it picks a victim among the supervised pool's
    current worker PIDs and either SIGKILLs it (crash path) or SIGSTOPs
    it (hang path — the worker stays alive but silent until the round
    deadline has the pool abandoned, which SIGKILLs stopped processes
    too).  Seeded, so a campaign's external chaos is reproducible on one
    machine — though *when* a signal lands relative to shard execution
    is inherently racy; determinism of the answers comes from the
    supervisor, not from the chaos being replayable.
    """

    def __init__(self, pids, interval_s: float, suspend_prob: float,
                 seed: int):
        import random

        self._pids = pids  # callable -> List[int]
        self._interval_s = interval_s
        self._suspend_prob = suspend_prob
        self._rng = random.Random(f"{seed}:chaos-killer")
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="chaos-killer")
        self.kills = 0
        self.suspends = 0

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            pids = self._pids()
            if not pids:
                continue
            victim = self._rng.choice(sorted(pids))
            sig = (signal.SIGSTOP
                   if self._rng.random() < self._suspend_prob
                   else signal.SIGKILL)
            try:
                os.kill(victim, sig)
            except (ProcessLookupError, PermissionError):
                continue  # already reaped / not ours anymore
            if sig == signal.SIGKILL:
                self.kills += 1
            else:
                self.suspends += 1

    def __enter__(self) -> "_ExternalKiller":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=10.0)


class ChaosRunner:
    """Runs a :class:`ChaosSpec` campaign and builds its report."""

    def __init__(self, spec: Optional[ChaosSpec] = None,
                 progress=None):
        self.spec = spec if spec is not None else ChaosSpec()
        self._progress = progress if progress is not None else _silent

    def run(self) -> dict:
        spec = self.spec
        reports: List[QueryReport] = []
        kills = suspends = 0
        for name in spec.queries:
            report, killer = self._run_query(name)
            reports.append(report)
            if killer is not None:
                kills += killer.kills
                suspends += killer.suspends
        identical = all(r.identical for r in reports)
        return {
            "spec": asdict(self.spec),
            "queries": [asdict(r) for r in reports],
            "identical": identical,
            "external_kills": kills,
            "external_suspends": suspends,
        }

    # -- internals -------------------------------------------------------

    def _session(self, name: str, faults: FaultsConfig,
                 parallel: ParallelConfig, tracer=None):
        from ..core.session import GolaSession

        spec = self.spec
        table_name, table, sql = _workload(name, spec.rows, spec.seed)
        session = GolaSession(
            GolaConfig(num_batches=spec.batches,
                       bootstrap_trials=spec.trials, seed=spec.seed,
                       faults=faults, parallel=parallel),
            tracer=tracer,
        )
        session.register_table(table_name, table)
        return session.sql(sql)

    def _run_query(self, name: str
                   ) -> Tuple[QueryReport, Optional[_ExternalKiller]]:
        spec = self.spec
        self._progress(f"[{name}] serial reference ...")
        t0 = time.monotonic()
        query = self._session(name, FaultsConfig(), ParallelConfig())
        serial_fp, serial_n = snapshot_fingerprint(query.run_online())
        serial_s = time.monotonic() - t0

        faults = FaultsConfig(
            enabled=True, seed=spec.seed,
            worker_kill_prob=spec.kill_prob,
            worker_hang_prob=spec.hang_prob,
            worker_hang_s=spec.hang_s,
            result_corrupt_prob=spec.corrupt_prob,
        )
        parallel = ParallelConfig(
            workers=spec.workers, backend=spec.backend,
            task_deadline_s=spec.task_deadline_s,
            task_retries=spec.task_retries,
            min_shard_rows=spec.min_shard_rows,
        )
        tracer = Tracer(metrics=MetricsRegistry(enabled=True))
        query = self._session(name, faults, parallel, tracer=tracer)
        killer = None
        if spec.external_killer and spec.backend == "process":
            # The controller (and with it the supervised pool) exists
            # only once run_online is entered; resolve PIDs late.
            killer = _ExternalKiller(
                lambda: (query._controller.parallel.worker_pids()
                         if query._controller is not None else []),
                spec.killer_interval_s, spec.killer_suspend_prob,
                spec.seed,
            )
        self._progress(f"[{name}] chaos run (workers={spec.workers}, "
                       f"kill/hang/corrupt="
                       f"{spec.kill_prob}/{spec.hang_prob}/"
                       f"{spec.corrupt_prob}"
                       f"{', external killer' if killer else ''}) ...")
        t0 = time.monotonic()
        if killer is not None:
            with killer:
                chaos_fp, chaos_n = snapshot_fingerprint(
                    query.run_online()
                )
        else:
            chaos_fp, chaos_n = snapshot_fingerprint(query.run_online())
        chaos_s = time.monotonic() - t0
        counters = {
            k: v for k, v in
            tracer.metrics.snapshot().counters.items()
            if k.startswith(("parallel.", "faults."))
        }
        identical = chaos_fp == serial_fp and chaos_n == serial_n
        self._progress(
            f"[{name}] {'bit-identical' if identical else 'DIVERGED'} "
            f"({chaos_n} snapshots, serial {serial_s:.1f}s, "
            f"chaos {chaos_s:.1f}s, "
            f"restarts {counters.get('parallel.restarts', 0)})"
        )
        return QueryReport(
            name=name, identical=identical, snapshots=chaos_n,
            serial_fingerprint=serial_fp, chaos_fingerprint=chaos_fp,
            serial_s=round(serial_s, 3), chaos_s=round(chaos_s, 3),
            counters=counters,
        ), killer


def _silent(message: str) -> None:
    del message
