"""Seeded, deterministic fault injection.

The injector is the single source of "what goes wrong" for the whole
stack.  Components declare *named fault points* (``cluster.task``,
``controller.batch_load``, ``storage.row``, ...) in a process-wide
registry; at runtime each point draws from its own RNG stream derived
from the fault seed through the point's name, so

* two runs with the same :class:`~repro.config.FaultsConfig` inject
  identical fault sequences (the determinism the acceptance tests pin);
* adding draws at one point never perturbs another point's stream.

A disabled injector (the default) never touches an RNG and answers every
query with "no fault" — the hot paths stay bit-identical to a build
without the subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..config import FaultsConfig
from ..estimate.random_source import derive_rng
from ..obs import NULL_TRACER, Tracer

#: The fault kinds a point may declare.
FAULT_KINDS = ("task", "straggler", "batch", "row", "serve", "worker")


@dataclass(frozen=True)
class FaultPoint:
    """One named site in the stack where faults may be injected."""

    name: str
    kind: str
    description: str = ""


_REGISTRY: Dict[str, FaultPoint] = {}


def register_fault_point(name: str, kind: str,
                         description: str = "") -> FaultPoint:
    """Declare (idempotently) a named fault point.

    Registration is documentation plus validation: the injector refuses
    draws for unregistered points, so the set of places faults can occur
    is enumerable (``fault_points()``) rather than scattered.
    """
    if kind not in FAULT_KINDS:
        raise ValueError(f"unknown fault kind {kind!r}; one of {FAULT_KINDS}")
    existing = _REGISTRY.get(name)
    if existing is not None:
        if existing.kind != kind:
            raise ValueError(
                f"fault point {name!r} already registered with kind "
                f"{existing.kind!r}"
            )
        return existing
    point = FaultPoint(name=name, kind=kind, description=description)
    _REGISTRY[name] = point
    return point


def fault_points() -> Dict[str, FaultPoint]:
    """A copy of the fault-point registry (name -> point)."""
    return dict(_REGISTRY)


# The built-in fault points, one per layer the subsystem cuts across.
register_fault_point(
    "cluster.task", "task",
    "a simulated cluster task fails and is retried with backoff",
)
register_fault_point(
    "cluster.straggler", "straggler",
    "a simulated cluster task runs straggler_factor x slower",
)
register_fault_point(
    "controller.batch_load", "batch",
    "loading a mini-batch fails; retried, then skipped-and-reweighted",
)
register_fault_point(
    "storage.row", "row",
    "an input row is corrupted at load time and quarantined",
)
register_fault_point(
    "parallel.worker_kill", "worker",
    "a pool worker is SIGKILLed mid-shard; the supervisor rebuilds the "
    "pool and re-dispatches the lost shards",
)
register_fault_point(
    "parallel.worker_hang", "worker",
    "a pool worker hangs past the task deadline; the pool is abandoned "
    "and the shard re-dispatched",
)
register_fault_point(
    "parallel.result_corrupt", "worker",
    "a worker's partial aggregate state is corrupted in flight; the "
    "merge-time integrity check rejects it and the shard re-runs",
)
register_fault_point(
    "serve.submit", "serve",
    "admitting a query to the scheduler fails; retried, then rejected",
)
register_fault_point(
    "scheduler.step", "serve",
    "one scheduler step of a query crashes; retried, then quarantined",
)


class FaultInjector:
    """Draws deterministic fault decisions for registered fault points.

    One injector per run; its per-point RNG streams are part of the
    run's checkpointable state (:meth:`state_dict` / :meth:`restore`)
    so a resumed run injects exactly the faults the uninterrupted run
    would have.
    """

    def __init__(self, config: Optional[FaultsConfig] = None,
                 master_seed: int = 0,
                 tracer: Optional[Tracer] = None):
        self.config = config if config is not None else FaultsConfig()
        self.enabled = self.config.enabled
        self.seed = (
            self.config.seed if self.config.seed is not None else master_seed
        )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._rngs: Dict[str, np.random.Generator] = {}

    @classmethod
    def from_config(cls, config, tracer: Optional[Tracer] = None
                    ) -> "FaultInjector":
        """Build from a :class:`~repro.config.GolaConfig`."""
        return cls(getattr(config, "faults", None),
                   master_seed=getattr(config, "seed", 0), tracer=tracer)

    # -- streams ---------------------------------------------------------

    def _rng(self, point: str) -> np.random.Generator:
        if point not in _REGISTRY:
            raise ValueError(f"unregistered fault point {point!r}")
        rng = self._rngs.get(point)
        if rng is None:
            rng = self._rngs[point] = derive_rng(self.seed, f"faults:{point}")
        return rng

    def _failures(self, rng: np.random.Generator, prob: float,
                  size: int) -> np.ndarray:
        """Consecutive failed attempts before the first success, per draw."""
        if prob >= 1.0:
            # Never succeeds; report one more failure than any retry
            # budget could absorb.
            return np.full(size, self.config.max_retries + 1, dtype=np.int64)
        return rng.geometric(1.0 - prob, size=size).astype(np.int64) - 1

    # -- decision API ----------------------------------------------------

    def task_failures(self, point: str, num_tasks: int) -> np.ndarray:
        """Failed attempts per task before it would succeed (0 = clean)."""
        if not self.enabled or self.config.task_failure_prob <= 0.0 \
                or num_tasks <= 0:
            return np.zeros(max(num_tasks, 0), dtype=np.int64)
        return self._failures(
            self._rng(point), self.config.task_failure_prob, num_tasks
        )

    def straggler_factors(self, point: str, num_tasks: int) -> np.ndarray:
        """Per-task slowdown factors (1.0 = nominal speed)."""
        if not self.enabled or self.config.straggler_prob <= 0.0 \
                or num_tasks <= 0:
            return np.ones(max(num_tasks, 0))
        rng = self._rng(point)
        slow = rng.random(num_tasks) < self.config.straggler_prob
        return np.where(slow, self.config.straggler_factor, 1.0)

    def worker_faults(self, num_tasks: int) -> Dict[str, np.ndarray]:
        """Per-task worker-fault plans for one supervised ``map``.

        Returns ``{"kill": k, "hang": h, "corrupt": c}`` where each
        entry is an ``(num_tasks,)`` int array: attempt ``a`` of task
        ``t`` is injected with that fault while ``a < plan[t]`` (so a
        task's first clean attempt is deterministic).  Draw order is
        fixed (kill, hang, corrupt from their own streams), keeping the
        plans independent of each other and of every other fault point.
        """
        n = max(num_tasks, 0)
        zeros = np.zeros(n, dtype=np.int64)
        if not self.enabled or n == 0:
            return {"kill": zeros, "hang": zeros.copy(),
                    "corrupt": zeros.copy()}
        cfg = self.config
        plans = {}
        for key, point, prob in (
            ("kill", "parallel.worker_kill", cfg.worker_kill_prob),
            ("hang", "parallel.worker_hang", cfg.worker_hang_prob),
            ("corrupt", "parallel.result_corrupt", cfg.result_corrupt_prob),
        ):
            if prob <= 0.0:
                plans[key] = zeros.copy()
            else:
                plans[key] = self._failures(self._rng(point), prob, n)
        return plans

    def batch_load_failures(self, point: str) -> int:
        """Failed attempts before a mini-batch load would succeed."""
        if not self.enabled or self.config.batch_failure_prob <= 0.0:
            return 0
        return int(self._failures(
            self._rng(point), self.config.batch_failure_prob, 1
        )[0])

    def submit_failures(self, point: str = "serve.submit") -> int:
        """Failed attempts before a query submission would be admitted."""
        if not self.enabled or self.config.submit_failure_prob <= 0.0:
            return 0
        return int(self._failures(
            self._rng(point), self.config.submit_failure_prob, 1
        )[0])

    def step_failures(self, point: str = "scheduler.step") -> int:
        """Failed attempts before one scheduler step would succeed."""
        if not self.enabled or self.config.step_failure_prob <= 0.0:
            return 0
        return int(self._failures(
            self._rng(point), self.config.step_failure_prob, 1
        )[0])

    def corrupted_rows(self, point: str, num_rows: int) -> np.ndarray:
        """Boolean mask of input rows to corrupt at load time."""
        if not self.enabled or self.config.row_corruption_prob <= 0.0 \
                or num_rows <= 0:
            return np.zeros(max(num_rows, 0), dtype=bool)
        rng = self._rng(point)
        return rng.random(num_rows) < self.config.row_corruption_prob

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> Dict[str, dict]:
        """Per-point RNG states (resume restores the exact streams)."""
        return {
            point: rng.bit_generator.state
            for point, rng in self._rngs.items()
        }

    def restore(self, state: Dict[str, dict]) -> None:
        for point, rng_state in state.items():
            rng = self._rng(point)
            rng.bit_generator.state = rng_state


#: Shared always-disabled injector (the default wherever none is given).
NULL_INJECTOR = FaultInjector(FaultsConfig(), master_seed=0)


def describe_fault_points() -> str:
    """Human-readable listing of every registered fault point."""
    lines = []
    for name in sorted(_REGISTRY):
        point = _REGISTRY[name]
        lines.append(f"{name:<26} [{point.kind}]  {point.description}")
    return "\n".join(lines)
