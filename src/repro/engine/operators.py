"""Physical (vectorized) relational operators.

Each function evaluates one logical plan node over concrete
:class:`~repro.storage.table.Table` inputs.  They are shared by the exact
batch executor, the CDM baseline, and — for everything except Aggregate —
the online engine (which replaces aggregation with incremental state and
filters with uncertain/deterministic classification).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExecutionError
from ..expr.expressions import Environment, Expression, evaluate_mask
from ..plan.logical import Aggregate, Filter, Limit, Project, Sort, Window, WindowCall
from ..storage.table import ColumnType, Schema, Table
from .aggregates import (
    GroupIndex,
    UDAFRegistry,
    make_state,
)


def run_filter(node: Filter, table: Table, env: Environment) -> Table:
    """Apply a Filter node's predicate as a boolean mask.

    A table decoded straight from a colstore partition carries its
    per-chunk zone maps; chunks the predicate can never match are then
    skipped wholesale.  The resulting mask is identical to the plain
    evaluation (predicates are row-local), so this is purely a scan
    optimization.
    """
    if table.num_rows == 0:
        return table
    zones = getattr(table, "_colstore_zones", None)
    if zones is not None:
        from ..storage.colstore.prune import pruned_filter_mask

        mask, _ = pruned_filter_mask(node.predicate, table, env, zones)
        return table.take(mask)
    return table.take(evaluate_mask(node.predicate, table, env))


def run_project(node: Project, table: Table, env: Environment) -> Table:
    """Evaluate a Project node's expressions into output columns."""
    n = table.num_rows
    columns = {}
    for expr, name in node.exprs:
        raw = expr.evaluate(table, env)
        arr = np.asarray(raw)
        if arr.ndim == 0:
            arr = np.full(n, arr[()])
        if arr.dtype.kind in ("U", "S"):
            arr = arr.astype(object)
        columns[name] = arr
    return Table.from_columns(columns) if n or columns else Table.empty(
        node.schema
    )


def hash_join(left: Table, right: Table, keys: Sequence[Tuple[str, str]],
              how: str = "inner", span=None) -> Table:
    """Hash equi-join; right side is the build side (dimension table).

    Right-side rows must be unique per key combination (dimension
    semantics); duplicate build keys raise because fan-out joins would
    break the online multiplicity accounting.

    ``span`` is an optional observability span
    (:class:`repro.obs.Span`); when given, the match count is recorded.
    """
    if how not in ("inner", "left"):
        raise ExecutionError(f"unsupported join type {how!r}")
    build_keys = _key_rows(right, [r for _, r in keys])
    index: Dict = {}
    for i, key in enumerate(build_keys):
        if key in index:
            raise ExecutionError(
                f"duplicate key {key!r} on join build side; dimension "
                "tables must be unique per key"
            )
        index[key] = i
    probe_keys = _key_rows(left, [l for l, _ in keys])
    match = np.fromiter(
        (index.get(k, -1) for k in probe_keys), dtype=np.int64,
        count=left.num_rows,
    )
    if span is not None:
        span.set("matched", int((match >= 0).sum()))
    if how == "inner":
        keep = match >= 0
        left_out = left.take(keep)
        right_idx = match[keep]
    else:
        left_out = left
        right_idx = match  # -1 rows get fill values below

    columns = {n: left_out.column(n) for n in left_out.schema.names}
    cols = list(left_out.schema.columns)
    right_key_names = {r for _, r in keys}
    for col in right.schema:
        if col.name in right_key_names:
            continue
        arr = right.column(col.name)
        if how == "left":
            fill = _fill_value(col.ctype)
            gathered = np.where(
                right_idx >= 0, arr[np.clip(right_idx, 0, None)], fill
            )
            if col.ctype is ColumnType.STRING:
                gathered = gathered.astype(object)
        else:
            gathered = arr[right_idx]
        columns[col.name] = gathered
        cols.append(col)
    return Table(Schema(cols), columns)


def _key_rows(table: Table, names: Sequence[str]) -> List:
    if len(names) == 1:
        return table.column(names[0]).tolist()
    arrays = [table.column(n) for n in names]
    return list(zip(*[a.tolist() for a in arrays]))


def _fill_value(ctype: ColumnType):
    if ctype is ColumnType.FLOAT64:
        return np.nan
    if ctype is ColumnType.INT64:
        return 0
    if ctype is ColumnType.BOOL:
        return False
    return None


def group_indices(table: Table, group_by: Sequence[Tuple[Expression, str]],
                  env: Environment,
                  index: Optional[GroupIndex] = None) -> Tuple[np.ndarray, GroupIndex]:
    """Dense group indices for a table under the given grouping exprs.

    With no grouping every row maps to group 0 (a single global group).
    Passing an existing :class:`GroupIndex` extends it — the online engine
    uses this to keep group identities stable across mini-batches.
    """
    if index is None:
        index = GroupIndex()
    n = table.num_rows
    if not group_by:
        index.encode(np.zeros(1, dtype=np.int64))  # ensure group 0 exists
        return np.zeros(n, dtype=np.int64), index
    if len(group_by) == 1:
        raw = np.asarray(group_by[0][0].evaluate(table, env))
        keys = np.broadcast_to(raw, (n,)) if raw.ndim == 0 else raw
        return index.encode(keys), index
    parts = []
    for expr, _ in group_by:
        raw = np.asarray(expr.evaluate(table, env))
        parts.append(
            np.broadcast_to(raw, (n,)) if raw.ndim == 0 else raw
        )
    combined = np.empty(n, dtype=object)
    combined[:] = list(zip(*[p.tolist() for p in parts]))
    return index.encode(combined), index


def run_aggregate(node: Aggregate, table: Table, env: Environment,
                  scale: float = 1.0,
                  udafs: Optional[UDAFRegistry] = None,
                  quantile_capacity: int = 4096,
                  seed: int = 0, span=None) -> Table:
    """Exact one-shot aggregation (the batch path).

    ``scale`` implements the ``Q(D_i, k/i)`` multiset semantics when the
    input is a prefix of the mini-batch stream.  ``span`` is an optional
    observability span; when given, the group count is recorded.
    """
    group_idx, index = group_indices(table, node.group_by, env)
    # A grouped aggregate over empty input has zero output rows; only the
    # global (no GROUP BY) aggregate keeps its single row on empty input.
    num_groups = (index.num_groups if node.group_by
                  else max(index.num_groups, 1))
    if span is not None:
        span.set("groups", num_groups)

    agg_columns: Dict[str, np.ndarray] = {}
    for call in node.aggregates:
        state = make_state(call, trials=None, udafs=udafs,
                           quantile_capacity=quantile_capacity, seed=seed)
        state.ensure_groups(num_groups)
        if table.num_rows:
            values = None
            if call.arg is not None:
                raw = np.asarray(call.arg.evaluate(table, env))
                values = (
                    np.broadcast_to(raw, (table.num_rows,)).astype(np.float64)
                    if raw.ndim == 0 else raw.astype(np.float64)
                )
            state.update(group_idx, values)
        finalized = state.finalize(scale)
        if len(finalized) < num_groups:
            finalized = np.concatenate(
                [finalized, np.zeros(num_groups - len(finalized))]
            )
        agg_columns[call.alias] = finalized

    columns: Dict[str, np.ndarray] = {}
    if node.group_by:
        keys = index.keys()
        if len(node.group_by) == 1:
            name = node.group_by[0][1]
            ctype = node.schema.type_of(name)
            columns[name] = np.array(keys, dtype=ctype.numpy_dtype)
        else:
            for pos, (_, name) in enumerate(node.group_by):
                ctype = node.schema.type_of(name)
                columns[name] = np.array(
                    [k[pos] for k in keys], dtype=ctype.numpy_dtype
                )
    else:
        # Global aggregate: exactly one output row, even over empty input.
        pass
    columns.update(agg_columns)
    out = Table(node.schema, columns)

    if node.having is not None and out.num_rows:
        out = out.take(evaluate_mask(node.having, out, env))
    return out


def window_order(columns: Dict[str, np.ndarray], call: "WindowCall",
                 tiebreak: Sequence[str]) -> np.ndarray:
    """Deterministic total-order permutation for one window call.

    Stable successive argsorts over (order column, then the tiebreak
    columns — the projected group keys, whose tuple is unique per row),
    so the resulting order is identical however the input rows were
    physically arranged.  Shared by the batch operator and the online
    snapshot path: both must place every row in the same frame.
    """
    n = len(columns[call.order_column])
    order = np.arange(n)
    keys = [call.order_column] + [
        t for t in tiebreak if t != call.order_column
    ]
    for name in reversed(keys):
        values = columns[name]
        order = order[np.argsort(values[order], kind="stable")]
    return order


def windowed_values(call: "WindowCall", values: Optional[np.ndarray],
                    order: np.ndarray) -> np.ndarray:
    """Evaluate one window call given the total order.

    ``values`` is the argument column — ``(n,)`` point values or an
    ``(n, B)`` bootstrap replica matrix (the rolling transform is linear,
    so applying it per trial column gives the replica of the windowed
    value) — or None for COUNT, whose result is the frame row count.
    Cumulative sums plus a shifted subtraction implement the rolling
    frame in O(n) per column; the result scatters back to input order.
    """
    n = len(order)
    width = None if call.preceding is None else call.preceding + 1
    if call.func == "count":
        counts = np.arange(1, n + 1, dtype=np.float64)
        if width is not None:
            counts = np.minimum(counts, float(width))
        out = np.empty(n, dtype=np.float64)
        out[order] = counts
        return out
    if values is None:
        raise ExecutionError(f"window {call.func} requires an argument")
    vals = np.asarray(values, dtype=np.float64)
    sorted_vals = vals[order]
    cum = np.cumsum(sorted_vals, axis=0)
    if width is not None and n > width:
        roll = cum.copy()
        roll[width:] = cum[width:] - cum[:-width]
    else:
        roll = cum
    if call.func == "avg":
        counts = np.arange(1, n + 1, dtype=np.float64)
        if width is not None:
            counts = np.minimum(counts, float(width))
        roll = roll / (counts[:, None] if roll.ndim == 2 else counts)
    out = np.empty_like(roll)
    out[order] = roll
    return out


def run_window(node: Window, table: Table) -> Table:
    """Evaluate a Window node over a concrete (projected) table."""
    columns = {name: table.column(name) for name in table.schema.names}
    computed: Dict[str, np.ndarray] = {}
    for call in node.calls:
        order = window_order(columns, call, node.tiebreak)
        arg = columns[call.arg] if call.arg is not None else None
        computed[call.alias] = windowed_values(call, arg, order)
    final = {
        name: computed.get(name, columns.get(name))
        for name in node.output_order
    }
    return Table(node.schema, final)


def run_sort(node: Sort, table: Table) -> Table:
    return table.sort_by(
        [n for n, _ in node.keys], [d for _, d in node.keys]
    )


def run_limit(node: Limit, table: Table) -> Table:
    return table.slice(0, min(node.n, table.num_rows))
