"""Exact (batch) query execution.

Evaluates a bound :class:`~repro.plan.logical.Query` over concrete tables:
subqueries first (in dependency order, innermost out), binding each
result into the expression :class:`Environment`, then the main plan.

This is the ground-truth engine: the baseline the paper's Figure 3(a)
marks with a vertical bar, the inner engine of the CDM baseline, and the
oracle every online answer is tested against for convergence.
"""

from __future__ import annotations

from typing import Dict, Optional


from ..errors import ExecutionError
from ..expr.expressions import Environment
from ..expr.functions import DEFAULT_FUNCTIONS, FunctionRegistry
from ..obs import NULL_TRACER, Tracer
from ..plan.logical import (
    Aggregate,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Query,
    Scan,
    Sort,
    SubquerySpec,
    Window,
)
from ..storage.table import Table
from .aggregates import UDAFRegistry
from .operators import (
    hash_join,
    run_aggregate,
    run_filter,
    run_limit,
    run_project,
    run_sort,
    run_window,
)


class BatchExecutor:
    """Executes bound queries exactly over in-memory tables.

    Args:
        tables: name -> Table bindings (usually from the session catalog).
        udafs: user-defined aggregate registry, if any.
        functions: scalar function registry for expression evaluation.
        tracer: observability hook; when enabled, every operator records
            an ``op:<Node>`` span with rows-in/rows-out and elapsed time.
    """

    def __init__(self, tables: Dict[str, Table],
                 udafs: Optional[UDAFRegistry] = None,
                 functions: FunctionRegistry = DEFAULT_FUNCTIONS,
                 tracer: Optional[Tracer] = None):
        self.tables = {name.lower(): t for name, t in tables.items()}
        self.udafs = udafs
        self.functions = functions
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def execute(self, query: Query, scale: float = 1.0,
                overrides: Optional[Dict[str, Table]] = None) -> Table:
        """Run ``query`` and return its result table.

        Args:
            scale: multiplicity ``k/i`` for prefix (multiset) semantics;
                1.0 for a full exact run.
            overrides: per-call table substitutions (the CDM baseline
                passes the current prefix ``D_i`` for the streamed table).
        """
        env = Environment(functions=self.functions)
        rows_processed = [0]
        tables = dict(self.tables)
        if overrides:
            tables.update({k.lower(): v for k, v in overrides.items()})

        for slot in query.subquery_order():
            spec = query.subqueries[slot]
            result = self._run_plan(
                spec.plan, tables, env, scale, rows_processed
            )
            self._bind_subquery(spec, result, env)

        out = self._run_plan(query.plan, tables, env, scale, rows_processed)
        self.last_rows_processed = rows_processed[0]
        return out

    def scalar(self, query: Query, scale: float = 1.0,
               overrides: Optional[Dict[str, Table]] = None) -> float:
        """Run a query whose result is a single row/column, as a float."""
        out = self.execute(query, scale, overrides)
        if out.num_rows != 1 or len(out.schema) != 1:
            raise ExecutionError(
                f"expected a 1x1 result, got {out.num_rows}x{len(out.schema)}"
            )
        return float(out.column(out.schema.names[0])[0])

    def run_plan(self, plan: LogicalPlan, env: Optional[Environment] = None,
                 scale: float = 1.0) -> Table:
        """Execute a bare plan subtree (no subquery resolution)."""
        if env is None:
            env = Environment(functions=self.functions)
        return self._run_plan(plan, self.tables, env, scale, [0])

    # ------------------------------------------------------------------

    def _bind_subquery(self, spec: SubquerySpec, result: Table,
                       env: Environment) -> None:
        if spec.kind == "scalar":
            values = result.column(spec.value_column)
            env.scalars[spec.slot] = (
                float(values[0]) if len(values) else float("nan")
            )
        elif spec.kind == "keyed":
            keys = result.column(spec.key_column).tolist()
            values = result.column(spec.value_column)
            env.keyed[spec.slot] = dict(zip(keys, values.tolist()))
        else:  # set
            env.key_sets[spec.slot] = set(
                result.column(spec.value_column).tolist()
            )

    def _run_plan(self, plan: LogicalPlan, tables: Dict[str, Table],
                  env: Environment, scale: float, rows: list) -> Table:
        if not self.tracer.enabled:
            return self._run_node(plan, tables, env, scale, rows, None)
        # Spans are inclusive of child operators (the hierarchy carries
        # the breakdown); rows_in is set per-node below.
        with self.tracer.span("op:" + type(plan).__name__) as span:
            out = self._run_node(plan, tables, env, scale, rows, span)
            span.set("rows_out", out.num_rows)
        return out

    def _run_node(self, plan: LogicalPlan, tables: Dict[str, Table],
                  env: Environment, scale: float, rows: list,
                  span) -> Table:
        if isinstance(plan, Scan):
            if plan.table_name not in tables:
                raise ExecutionError(f"unbound table {plan.table_name!r}")
            table = tables[plan.table_name]
            rows[0] += table.num_rows
            if span is not None:
                span.set("table", plan.table_name)
                span.set("rows_in", table.num_rows)
            return table
        if isinstance(plan, Join):
            left = self._run_plan(plan.left, tables, env, scale, rows)
            right = self._run_plan(plan.right, tables, env, scale, rows)
            if span is not None:
                span.set("rows_in", left.num_rows)
                span.set("build_rows", right.num_rows)
            return hash_join(left, right, plan.keys, plan.how, span=span)
        if isinstance(plan, (Filter, Project, Aggregate, Sort, Limit,
                             Window)):
            child = self._run_plan(plan.input, tables, env, scale, rows)
            if span is not None:
                span.set("rows_in", child.num_rows)
            if isinstance(plan, Filter):
                return run_filter(plan, child, env)
            if isinstance(plan, Project):
                return run_project(plan, child, env)
            if isinstance(plan, Aggregate):
                return run_aggregate(plan, child, env, scale, self.udafs,
                                     span=span)
            if isinstance(plan, Window):
                return run_window(plan, child)
            if isinstance(plan, Sort):
                return run_sort(plan, child)
            return run_limit(plan, child)
        raise ExecutionError(f"unknown plan node {type(plan).__name__}")
