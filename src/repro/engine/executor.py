"""Exact (batch) query execution.

Evaluates a bound :class:`~repro.plan.logical.Query` over concrete tables:
subqueries first (in dependency order, innermost out), binding each
result into the expression :class:`Environment`, then the main plan.

This is the ground-truth engine: the baseline the paper's Figure 3(a)
marks with a vertical bar, the inner engine of the CDM baseline, and the
oracle every online answer is tested against for convergence.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

import numpy as np

from ..errors import ExecutionError
from ..expr.expressions import Environment
from ..expr.functions import DEFAULT_FUNCTIONS, FunctionRegistry
from ..plan.logical import (
    Aggregate,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Query,
    Scan,
    Sort,
    SubquerySpec,
)
from ..storage.table import Table
from .aggregates import UDAFRegistry
from .operators import (
    hash_join,
    run_aggregate,
    run_filter,
    run_limit,
    run_project,
    run_sort,
)


class BatchExecutor:
    """Executes bound queries exactly over in-memory tables.

    Args:
        tables: name -> Table bindings (usually from the session catalog).
        udafs: user-defined aggregate registry, if any.
        functions: scalar function registry for expression evaluation.
    """

    def __init__(self, tables: Dict[str, Table],
                 udafs: Optional[UDAFRegistry] = None,
                 functions: FunctionRegistry = DEFAULT_FUNCTIONS):
        self.tables = {name.lower(): t for name, t in tables.items()}
        self.udafs = udafs
        self.functions = functions

    def execute(self, query: Query, scale: float = 1.0,
                overrides: Optional[Dict[str, Table]] = None) -> Table:
        """Run ``query`` and return its result table.

        Args:
            scale: multiplicity ``k/i`` for prefix (multiset) semantics;
                1.0 for a full exact run.
            overrides: per-call table substitutions (the CDM baseline
                passes the current prefix ``D_i`` for the streamed table).
        """
        env = Environment(functions=self.functions)
        rows_processed = [0]
        tables = dict(self.tables)
        if overrides:
            tables.update({k.lower(): v for k, v in overrides.items()})

        for slot in query.subquery_order():
            spec = query.subqueries[slot]
            result = self._run_plan(
                spec.plan, tables, env, scale, rows_processed
            )
            self._bind_subquery(spec, result, env)

        out = self._run_plan(query.plan, tables, env, scale, rows_processed)
        self.last_rows_processed = rows_processed[0]
        return out

    def scalar(self, query: Query, scale: float = 1.0,
               overrides: Optional[Dict[str, Table]] = None) -> float:
        """Run a query whose result is a single row/column, as a float."""
        out = self.execute(query, scale, overrides)
        if out.num_rows != 1 or len(out.schema) != 1:
            raise ExecutionError(
                f"expected a 1x1 result, got {out.num_rows}x{len(out.schema)}"
            )
        return float(out.column(out.schema.names[0])[0])

    def run_plan(self, plan: LogicalPlan, env: Optional[Environment] = None,
                 scale: float = 1.0) -> Table:
        """Execute a bare plan subtree (no subquery resolution)."""
        if env is None:
            env = Environment(functions=self.functions)
        return self._run_plan(plan, self.tables, env, scale, [0])

    # ------------------------------------------------------------------

    def _bind_subquery(self, spec: SubquerySpec, result: Table,
                       env: Environment) -> None:
        if spec.kind == "scalar":
            values = result.column(spec.value_column)
            env.scalars[spec.slot] = (
                float(values[0]) if len(values) else float("nan")
            )
        elif spec.kind == "keyed":
            keys = result.column(spec.key_column).tolist()
            values = result.column(spec.value_column)
            env.keyed[spec.slot] = dict(zip(keys, values.tolist()))
        else:  # set
            env.key_sets[spec.slot] = set(
                result.column(spec.value_column).tolist()
            )

    def _run_plan(self, plan: LogicalPlan, tables: Dict[str, Table],
                  env: Environment, scale: float, rows: list) -> Table:
        if isinstance(plan, Scan):
            if plan.table_name not in tables:
                raise ExecutionError(f"unbound table {plan.table_name!r}")
            table = tables[plan.table_name]
            rows[0] += table.num_rows
            return table
        if isinstance(plan, Filter):
            child = self._run_plan(plan.input, tables, env, scale, rows)
            return run_filter(plan, child, env)
        if isinstance(plan, Project):
            child = self._run_plan(plan.input, tables, env, scale, rows)
            return run_project(plan, child, env)
        if isinstance(plan, Join):
            left = self._run_plan(plan.left, tables, env, scale, rows)
            right = self._run_plan(plan.right, tables, env, scale, rows)
            return hash_join(left, right, plan.keys, plan.how)
        if isinstance(plan, Aggregate):
            child = self._run_plan(plan.input, tables, env, scale, rows)
            return run_aggregate(plan, child, env, scale, self.udafs)
        if isinstance(plan, Sort):
            child = self._run_plan(plan.input, tables, env, scale, rows)
            return run_sort(plan, child)
        if isinstance(plan, Limit):
            child = self._run_plan(plan.input, tables, env, scale, rows)
            return run_limit(plan, child)
        raise ExecutionError(f"unknown plan node {type(plan).__name__}")
