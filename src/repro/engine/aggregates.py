"""Mergeable aggregate states.

Every aggregate the engine supports is expressed as a *mergeable state*
with the interface ``update(group_idx, values, weights) / merge / finalize``.
This single abstraction powers three things at once:

* exact batch execution (weights = None, one state cell per group);
* G-OLA's incremental delta maintenance — folding a mini-batch into a
  running aggregate is just ``update``; combining the deterministic-set
  partial with the live uncertain-set partial is just ``merge``;
* bootstrap error estimation — a state created with ``trials=B`` keeps
  ``B`` per-trial cells per group, updated in one vectorized call with an
  ``(n, B)`` Poisson weight matrix (the BlinkDB-style poissonized
  bootstrap the paper builds on).

Finalize takes a ``scale`` implementing the paper's multiset semantics
``Q(D_i, k/i)``: after batch ``i`` of ``k``, every seen tuple counts
``k/i`` times, which scales SUM/COUNT estimates while leaving AVG, STDEV
and quantiles invariant.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..errors import ExecutionError, PlanError


@dataclass
class AggregateCall:
    """A single aggregate in a query: ``func(arg) AS alias``.

    ``arg`` is an expression (or None for ``COUNT(*)``); ``param`` carries
    the quantile fraction for ``QUANTILE``.
    """

    func: str
    arg: Optional[object]  # Expression; typed loosely to avoid an import cycle
    alias: str
    distinct: bool = False
    param: Optional[float] = None

    def __post_init__(self) -> None:
        self.func = self.func.lower()

    def sql(self) -> str:
        inner = self.arg.sql() if self.arg is not None else "*"
        if self.distinct:
            inner = f"DISTINCT {inner}"
        if self.param is not None:
            return f"{self.func}({inner}, {self.param}) AS {self.alias}"
        return f"{self.func}({inner}) AS {self.alias}"


class GroupIndex:
    """Maps arbitrary (hashable) group-key values to dense indices.

    The dense index is what aggregate states are addressed by; it grows
    monotonically as new groups appear across mini-batches, so states
    resize but never reshuffle.
    """

    def __init__(self) -> None:
        self._lookup: Dict = {}
        self._keys: List = []
        #: Bumped whenever a new key is inserted; part of the encode memo
        #: token so cached encodings are dropped once the mapping grows.
        self._version = 0
        self._memo_token_cache = None
        self._memo_result: Optional[np.ndarray] = None

    @property
    def num_groups(self) -> int:
        return len(self._keys)

    def keys(self) -> List:
        return list(self._keys)

    def key_at(self, idx: int):
        return self._keys[idx]

    def index_of(self, key) -> int:
        """Dense index of ``key``; -1 when unseen."""
        return self._lookup.get(key, -1)

    def _memo_token(self, keys: np.ndarray, add_new: bool):
        """Cheap content token for ``keys``, or None when not memoizable."""
        if keys.dtype == object:
            return None
        digest = hashlib.blake2b(
            np.ascontiguousarray(keys).tobytes(), digest_size=16
        ).digest()
        return (keys.dtype.str, keys.shape, digest, add_new, self._version)

    def encode(self, keys: np.ndarray, add_new: bool = True) -> np.ndarray:
        """Vector-encode ``keys`` to dense indices.

        New keys are appended when ``add_new``; otherwise they encode to -1.
        Uses ``np.unique`` so the python-dict work is proportional to the
        number of *distinct* incoming keys, not the batch size, and only
        keys missing from the lookup pay dict-insertion cost.  A one-slot
        digest memo short-circuits re-encoding the exact key array the
        index saw last (per-trial re-evaluation, unchanged key sets across
        batches).
        """
        keys = np.asarray(keys)
        if keys.size == 0:
            return np.empty(0, dtype=np.int64)
        token = self._memo_token(keys, add_new)
        if token is not None and token == self._memo_token_cache:
            return self._memo_result.copy()
        uniq, inverse = np.unique(keys, return_inverse=True)
        uniq_list = uniq.tolist()
        get = self._lookup.get
        mapped = np.fromiter(
            (get(key, -1) for key in uniq_list),
            count=len(uniq_list), dtype=np.int64,
        )
        if add_new:
            missing = np.nonzero(mapped < 0)[0]
            if missing.size:
                for i in missing.tolist():
                    idx = len(self._keys)
                    key = uniq_list[i]
                    self._lookup[key] = idx
                    self._keys.append(key)
                    mapped[i] = idx
                self._version += 1
                token = self._memo_token(keys, add_new)
        result = mapped[inverse.reshape(keys.shape)]
        if token is not None:
            self._memo_token_cache = token
            self._memo_result = result.copy()
        return result

    def copy(self) -> "GroupIndex":
        out = GroupIndex()
        out._lookup = dict(self._lookup)
        out._keys = list(self._keys)
        out._version = self._version
        return out


GLOBAL_GROUP = None  # sentinel meaning "no GROUP BY": a single implicit group


def _grouped_sum(group_idx: np.ndarray, weights: np.ndarray, groups: int,
                 values: Optional[np.ndarray] = None) -> np.ndarray:
    """Per-(group, column) sums of ``values * weights`` rows: the batch delta.

    One ``bincount`` per trial column; the optional ``values`` vector is
    multiplied in per column so no ``(n, width)`` contribution matrix is
    ever materialized.  ``bincount`` accumulates every cell's
    contributions in row order, so the result is bit-identical however
    the columns are chunked or sharded across workers — the property the
    parallel bootstrap path relies on.
    """
    n, width = weights.shape
    out = np.zeros((groups, width))
    if n == 0 or groups == 0 or width == 0:
        return out
    for c in range(width):
        col = weights[:, c]
        contrib = col if values is None else values * col
        out[:, c] = np.bincount(group_idx, weights=contrib,
                                minlength=groups)
    return out


def _as_weight_matrix(weights, n: int, width: int) -> np.ndarray:
    """Normalize ``weights`` to an ``(n, width)`` float64 matrix."""
    if weights is None:
        return np.ones((n, width), dtype=np.float64)
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim == 1:
        if len(w) != n:
            raise ExecutionError(f"weights length {len(w)} != rows {n}")
        return np.repeat(w[:, None], width, axis=1) if width > 1 else w[:, None]
    if w.shape != (n, width):
        raise ExecutionError(
            f"weight matrix shape {w.shape} != ({n}, {width})"
        )
    return w


class AggState:
    """Base class for mergeable aggregate states.

    Subclasses store per-group arrays of shape ``(G, W)`` where ``W`` is 1
    for exact states and the number of bootstrap trials otherwise.
    ``finalize`` returns ``(G,)`` for exact states and ``(G, W)`` for trial
    states.

    States whose per-trial cells are independent along the trial axis set
    ``supports_column_merge`` and implement ``_merge_columns``: a shard
    state of width ``w`` built from trial columns ``[o, o+w)`` folds back
    into the full-width state via :meth:`merge_columns`.  Reservoir and
    user-defined states (cross-trial shared structure) keep the default
    False and take the dense path.
    """

    supports_column_merge = False

    def __init__(self, trials: Optional[int] = None):
        self.trials = trials
        self.width = trials if trials is not None else 1
        self.num_groups = 0

    # -- subclass hooks -------------------------------------------------

    def _alloc(self, groups: int) -> None:
        raise NotImplementedError

    def _update(self, group_idx: np.ndarray, values: Optional[np.ndarray],
                weights: np.ndarray) -> None:
        raise NotImplementedError

    def _merge(self, other: "AggState") -> None:
        raise NotImplementedError

    def _merge_columns(self, other: "AggState", cols: slice) -> None:
        raise NotImplementedError

    def _finalize(self, scale: float) -> np.ndarray:
        raise NotImplementedError

    # -- public API ------------------------------------------------------

    def ensure_groups(self, groups: int) -> None:
        """Grow state storage to cover ``groups`` dense group indices."""
        if groups > self.num_groups:
            self._alloc(groups)
            self.num_groups = groups

    def update(self, group_idx: np.ndarray, values, weights=None,
               groups: Optional[int] = None) -> None:
        """Fold a vector of rows into the state.

        Args:
            group_idx: ``(n,)`` dense group indices (all >= 0).
            values: ``(n,)`` argument values, or None for COUNT(*).
            weights: None (weight 1), ``(n,)``, or ``(n, W)`` trial weights.
            groups: Precomputed ``group_idx.max() + 1``; shard workers
                pass their per-segment memo so multi-alias folds scan
                the index vector for its max only once.
        """
        group_idx = np.asarray(group_idx, dtype=np.int64)
        n = len(group_idx)
        if n == 0:
            return
        self.ensure_groups(
            int(group_idx.max()) + 1 if groups is None else groups
        )
        if values is not None:
            values = np.asarray(values, dtype=np.float64)
            if len(values) != n:
                raise ExecutionError(
                    f"values length {len(values)} != group_idx length {n}"
                )
        w = _as_weight_matrix(weights, n, self.width)
        self._update(group_idx, values, w)

    def merge(self, other: "AggState") -> None:
        """Fold ``other`` (same type/width) into this state, in place."""
        if type(other) is not type(self) or other.width != self.width:
            raise ExecutionError(
                f"cannot merge {type(other).__name__}(W={other.width}) into "
                f"{type(self).__name__}(W={self.width})"
            )
        self.ensure_groups(other.num_groups)
        self._merge(other)

    def merge_columns(self, other: "AggState", col_offset: int) -> None:
        """Fold a trial-shard state into columns ``[o, o + other.width)``.

        ``other`` must be the same state type, built from exactly the
        trial-weight columns starting at ``col_offset`` of this state's
        width.  The result is bit-identical to having updated this state
        with the full-width weight matrix (see ``_grouped_sum``).
        """
        if not self.supports_column_merge:
            raise ExecutionError(
                f"{type(self).__name__} does not support column merges"
            )
        if type(other) is not type(self):
            raise ExecutionError(
                f"cannot column-merge {type(other).__name__} into "
                f"{type(self).__name__}"
            )
        if col_offset < 0 or col_offset + other.width > self.width:
            raise ExecutionError(
                f"column shard [{col_offset}, {col_offset + other.width}) "
                f"outside width {self.width}"
            )
        self.ensure_groups(other.num_groups)
        self._merge_columns(other, slice(col_offset, col_offset + other.width))

    def finalize(self, scale: float = 1.0) -> np.ndarray:
        """The aggregate value(s): ``(G,)`` exact or ``(G, W)`` per trial."""
        out = self._finalize(float(scale))
        if self.trials is None:
            return out[:, 0]
        return out

    def copy(self) -> "AggState":
        raise NotImplementedError


class SumState(AggState):
    """Weighted SUM.  Estimate of the population sum scales by ``k/i``."""

    supports_column_merge = True

    def __init__(self, trials=None):
        super().__init__(trials)
        self.wsum = np.zeros((0, self.width))

    def _alloc(self, groups):
        grown = np.zeros((groups, self.width))
        grown[: self.num_groups] = self.wsum
        self.wsum = grown

    def _update(self, group_idx, values, weights):
        # Batch delta first, then one += — the same per-cell accumulation
        # order whether the trial columns arrive whole or as shards.
        self.wsum += _grouped_sum(
            group_idx, weights, self.num_groups, values=values
        )

    def _merge(self, other):
        self.wsum[: other.num_groups] += other.wsum

    def _merge_columns(self, other, cols):
        self.wsum[: other.num_groups, cols] += other.wsum

    def _finalize(self, scale):
        return self.wsum * scale

    def copy(self):
        out = SumState(self.trials)
        out.num_groups = self.num_groups
        out.wsum = self.wsum.copy()
        return out


class CountState(AggState):
    """Weighted COUNT (argument, if any, is ignored: the engine has no NULLs)."""

    supports_column_merge = True

    def __init__(self, trials=None):
        super().__init__(trials)
        self.wcount = np.zeros((0, self.width))

    def _alloc(self, groups):
        grown = np.zeros((groups, self.width))
        grown[: self.num_groups] = self.wcount
        self.wcount = grown

    def _update(self, group_idx, values, weights):
        self.wcount += _grouped_sum(group_idx, weights, self.num_groups)

    def _merge(self, other):
        self.wcount[: other.num_groups] += other.wcount

    def _merge_columns(self, other, cols):
        self.wcount[: other.num_groups, cols] += other.wcount

    def _finalize(self, scale):
        return self.wcount * scale

    def copy(self):
        out = CountState(self.trials)
        out.num_groups = self.num_groups
        out.wcount = self.wcount.copy()
        return out


class AvgState(AggState):
    """Weighted AVG = weighted sum / weighted count.  Scale-invariant."""

    supports_column_merge = True

    def __init__(self, trials=None):
        super().__init__(trials)
        self.wsum = np.zeros((0, self.width))
        self.wcount = np.zeros((0, self.width))

    def _alloc(self, groups):
        for name in ("wsum", "wcount"):
            arr = getattr(self, name)
            grown = np.zeros((groups, self.width))
            grown[: self.num_groups] = arr
            setattr(self, name, grown)

    def _update(self, group_idx, values, weights):
        self.wsum += _grouped_sum(
            group_idx, weights, self.num_groups, values=values
        )
        self.wcount += _grouped_sum(group_idx, weights, self.num_groups)

    def _merge(self, other):
        self.wsum[: other.num_groups] += other.wsum
        self.wcount[: other.num_groups] += other.wcount

    def _merge_columns(self, other, cols):
        self.wsum[: other.num_groups, cols] += other.wsum
        self.wcount[: other.num_groups, cols] += other.wcount

    def _finalize(self, scale):
        out = np.zeros_like(self.wsum)
        np.divide(self.wsum, self.wcount, out=out, where=self.wcount > 0)
        return out

    def copy(self):
        out = AvgState(self.trials)
        out.num_groups = self.num_groups
        out.wsum = self.wsum.copy()
        out.wcount = self.wcount.copy()
        return out


class VarState(AggState):
    """Weighted sample variance via Chan's parallel (count, mean, M2).

    Numerically stable under incremental updates and merges (no
    sum-of-squares cancellation): constant inputs give exactly zero
    variance regardless of how the data was split across batches.
    """

    supports_column_merge = True

    def __init__(self, trials=None):
        super().__init__(trials)
        self.wcount = np.zeros((0, self.width))
        self.mean = np.zeros((0, self.width))
        self.m2 = np.zeros((0, self.width))

    def _alloc(self, groups):
        for name in ("wcount", "mean", "m2"):
            arr = getattr(self, name)
            grown = np.zeros((groups, self.width))
            grown[: self.num_groups] = arr
            setattr(self, name, grown)

    def _update(self, group_idx, values, weights):
        groups = self.num_groups
        bw = _grouped_sum(group_idx, weights, groups)
        bwv = _grouped_sum(group_idx, weights, groups, values=values)
        bmean = np.zeros((groups, self.width))
        np.divide(bwv, bw, out=bmean, where=bw > 0)
        deviation = values[:, None] - bmean[group_idx]
        bm2 = _grouped_sum(group_idx, weights * deviation ** 2, groups)
        self._combine(bw, bmean, bm2)

    def _combine(self, bw, bmean, bm2, cols=slice(None)):
        # Chan's pairwise combine over the columns selected by ``cols``.
        # Every expression is per-(group, column) independent, so a shard
        # combined into its own column range matches the full-width path
        # bit for bit.
        g = len(bw)
        old_count = self.wcount[:g, cols]
        total = old_count + bw
        delta = bmean - self.mean[:g, cols]
        ratio = np.zeros_like(total)
        np.divide(bw, total, out=ratio, where=total > 0)
        self.mean[:g, cols] += delta * ratio
        self.m2[:g, cols] += bm2 + delta ** 2 * old_count * ratio
        self.wcount[:g, cols] = total

    def _merge(self, other):
        self._combine(other.wcount, other.mean, other.m2)

    def _merge_columns(self, other, cols):
        self._combine(other.wcount, other.mean, other.m2, cols)

    def _finalize(self, scale):
        var = np.zeros_like(self.m2)
        denom = self.wcount - 1.0
        np.divide(self.m2, denom, out=var, where=denom > 0)
        return np.clip(var, 0.0, None)

    def copy(self):
        out = type(self)(self.trials)
        out.num_groups = self.num_groups
        out.wcount = self.wcount.copy()
        out.mean = self.mean.copy()
        out.m2 = self.m2.copy()
        return out


class StdevState(VarState):
    """Weighted sample standard deviation."""

    def _finalize(self, scale):
        return np.sqrt(super()._finalize(scale))


class MinState(AggState):
    """MIN.  Weights only matter as presence (weight 0 = absent)."""

    supports_column_merge = True
    _fill = np.inf
    _ufunc = np.minimum

    def __init__(self, trials=None):
        super().__init__(trials)
        self.extreme = np.full((0, self.width), self._fill)

    def _alloc(self, groups):
        grown = np.full((groups, self.width), self._fill)
        grown[: self.num_groups] = self.extreme
        self.extreme = grown

    def _update(self, group_idx, values, weights):
        if self.width == 1:
            present = weights[:, 0] > 0
            self._ufunc.at(
                self.extreme[:, 0], group_idx[present], values[present]
            )
            return
        # One flattened scatter over every present (row, trial) cell
        # instead of a python loop per trial.  min/max is order-free, so
        # this matches any per-trial or sharded evaluation exactly.
        rows, cols = np.nonzero(weights > 0)
        if rows.size == 0:
            return
        flat_idx = group_idx[rows] * self.width + cols
        flat = self.extreme.view()
        flat.shape = (-1,)  # raises (never copies) if non-contiguous
        self._ufunc.at(flat, flat_idx, values[rows])

    def _merge(self, other):
        g = other.num_groups
        self.extreme[:g] = self._ufunc(self.extreme[:g], other.extreme)

    def _merge_columns(self, other, cols):
        g = other.num_groups
        self.extreme[:g, cols] = self._ufunc(
            self.extreme[:g, cols], other.extreme
        )

    def _finalize(self, scale):
        return self.extreme

    def copy(self):
        out = type(self)(self.trials)
        out.num_groups = self.num_groups
        out.extreme = self.extreme.copy()
        return out


class MaxState(MinState):
    """MAX (see MinState)."""

    _fill = -np.inf
    _ufunc = np.maximum


class QuantileState(AggState):
    """Approximate QUANTILE via a bounded uniform reservoir.

    Supports grouped aggregation: the reservoir keeps up to ``capacity``
    rows — value, dense group index, and per-trial weight row — so
    bootstrap replicas are weighted quantiles over the same reservoir,
    evaluated per group segment.  The reservoir is a uniform sample of
    everything seen (uniform within every group too), so the estimate
    converges like any other running aggregate.
    """

    def __init__(self, trials=None, q: float = 0.5, capacity: int = 4096,
                 seed: int = 0):
        super().__init__(trials)
        if not 0.0 <= q <= 1.0:
            raise ExecutionError(f"quantile fraction {q} outside [0, 1]")
        self.q = q
        self.capacity = capacity
        self.seen = 0
        self.values = np.empty(0)
        self.group_of = np.empty(0, dtype=np.int64)
        self.weights = np.empty((0, self.width))
        self._rng = np.random.default_rng(seed)

    def _alloc(self, groups):
        pass  # rows carry their own group index; no per-group storage

    def _update(self, group_idx, values, weights):
        self.values = np.concatenate([self.values, values])
        self.group_of = np.concatenate([self.group_of, group_idx])
        self.weights = np.concatenate([self.weights, weights])
        self.seen += len(values)
        self._shrink()

    def _shrink(self):
        if len(self.values) <= self.capacity:
            return
        keep = self._rng.choice(
            len(self.values), size=self.capacity, replace=False
        )
        keep.sort()
        self.values = self.values[keep]
        self.group_of = self.group_of[keep]
        self.weights = self.weights[keep]

    def _merge(self, other):
        self.values = np.concatenate([self.values, other.values])
        self.group_of = np.concatenate([self.group_of, other.group_of])
        self.weights = np.concatenate([self.weights, other.weights])
        self.seen += other.seen
        self._shrink()

    def _finalize(self, scale):
        # Exactly num_groups rows: a grouped aggregate over empty input
        # has zero groups and must produce zero rows (group-key columns
        # are empty too); the global path always ensures group 0 exists.
        out = np.zeros((self.num_groups, self.width))
        if len(self.values) == 0:
            return out
        for g in np.unique(self.group_of):
            mask = self.group_of == g
            order = np.argsort(self.values[mask], kind="stable")
            vals = self.values[mask][order]
            w = self.weights[mask][order]
            cum = np.cumsum(w, axis=0)
            total = cum[-1]
            # Batched left-searchsorted of each column's target into its
            # own cumulative column: entries strictly below the target.
            targets = self.q * total
            pos = np.count_nonzero(cum < targets[None, :], axis=0)
            est = vals[np.minimum(pos, len(vals) - 1)]
            out[g] = np.where(total > 0, est, 0.0)
        return out

    def copy(self):
        out = QuantileState(self.trials, q=self.q, capacity=self.capacity)
        out.num_groups = self.num_groups
        out.seen = self.seen
        out.values = self.values.copy()
        out.group_of = self.group_of.copy()
        out.weights = self.weights.copy()
        out._rng = np.random.default_rng(self._rng.integers(2 ** 63))
        return out


class DistinctState(AggState):
    """COUNT/SUM/AVG DISTINCT via per-(group, value) pair weight sums.

    Deduplication happens *after* resampling: a (group, value) pair
    contributes to trial ``t`` iff its accumulated Poisson weight in that
    trial is positive — a value "survives" a bootstrap replica when at
    least one of its rows does, which is the resampling-consistent
    semantics.

    Replicating seen rows adds no distinct value, so the ``k/i``
    multiset rescaling cannot account for species not yet observed:
    mid-run, "distinct seen so far" is biased low and its bootstrap
    intervals under-cover (caught by the ``t_dist`` calibration query).
    ``finalize`` therefore adds a two-term Good-Toulmin correction:
    with fraction ``1/scale`` of the data folded and ``t = scale - 1``,
    the expected number of still-unseen species is
    ``t * phi_1 - t^2 * phi_2 + ...`` (alternating series over the
    singleton/doubleton counts), clamped at zero per group because the
    truth is never below distinct-seen.  The correction vanishes at the
    final batch (``scale == 1``) where the answer equals the exact
    batch answer.  Trial columns compute their own per-replica phi
    counts (so the bootstrap spread reflects the extrapolation's
    uncertainty) plus a deterministic recentering term derived from the
    raw multiplicities — Poissonized replicas of a distinct count are
    biased low by ``sum_i e^-c_i``, and without the recentering the
    basic (reverse-percentile) intervals sit systematically off the
    estimate (caught by the ``t_dist`` calibration query).

    Values are keyed by their float64 bit pattern (NaNs canonicalized
    first) so dedup is exact and identical however the rows are batched.
    """

    def __init__(self, trials=None, mode: str = "count"):
        super().__init__(trials)
        if mode not in ("count", "sum", "avg"):
            raise ExecutionError(f"unsupported DISTINCT mode {mode!r}")
        self.mode = mode
        self.pairs = GroupIndex()
        self.wsum = np.zeros((0, self.width))
        # Raw (unweighted) row multiplicity per pair: the trial state
        # sees only Poisson weights, but both the Good-Toulmin singleton
        # set and the replica recentering need the true counts.
        self.raw = np.zeros(0)

    def _alloc(self, groups):
        pass  # num_groups sizes the output; pair storage grows in _update

    def _ensure_pairs(self, count: int) -> None:
        if count > len(self.wsum):
            grown = np.zeros((count, self.width))
            grown[: len(self.wsum)] = self.wsum
            self.wsum = grown
            raw = np.zeros(count)
            raw[: len(self.raw)] = self.raw
            self.raw = raw

    @staticmethod
    def _value_bits(values: np.ndarray) -> np.ndarray:
        vals = np.array(values, dtype=np.float64)
        nan = np.isnan(vals)
        if nan.any():
            vals[nan] = np.nan  # one canonical NaN bit pattern
        return vals.view(np.int64)

    def _update(self, group_idx, values, weights):
        if values is None:
            raise ExecutionError("DISTINCT aggregates require an argument")
        n = len(group_idx)
        bits = self._value_bits(values)
        keys = np.empty(n, dtype=object)
        keys[:] = list(zip(group_idx.tolist(), bits.tolist()))
        pair_idx = self.pairs.encode(keys)
        self._ensure_pairs(self.pairs.num_groups)
        self.wsum += _grouped_sum(pair_idx, weights, len(self.wsum))
        self.raw += np.bincount(pair_idx, minlength=len(self.raw))

    def _merge(self, other):
        count = other.pairs.num_groups
        if count == 0:
            return
        keys = np.empty(count, dtype=object)
        keys[:] = other.pairs.keys()
        idx = self.pairs.encode(keys)
        self._ensure_pairs(self.pairs.num_groups)
        np.add.at(self.wsum, idx, other.wsum[:count])
        np.add.at(self.raw, idx, other.raw[:count])

    def _finalize(self, scale):
        # num_groups rows exactly — see QuantileState._finalize: one
        # phantom row over an empty grouped input makes a ragged table.
        groups = self.num_groups
        out = np.zeros((groups, self.width))
        npairs = self.pairs.num_groups
        if npairs == 0:
            return out
        pair_keys = self.pairs.keys()
        group_of = np.fromiter(
            (k[0] for k in pair_keys), dtype=np.int64, count=npairs
        )
        present = (self.wsum[:npairs] > 0).astype(np.float64)
        # Per-pair mass decomposes into "seen" presence plus Good-Toulmin
        # singleton/doubleton terms (combined per group further down).
        # Exact state (trials is None): presence is 1 for every pair and
        # the phi_k indicators test the raw multiplicity c.  Trial
        # states keep the resampling variability — a pair with raw count
        # c draws Poisson(c)-distributed weight, so its presence has
        # mean 1 - e^-c, its weight==1 indicator mean c * e^-c and its
        # weight==2 indicator mean c^2 * e^-c / 2, all biased away from
        # the exact state's indicators — plus the deterministic residual
        # recentering each replica on its point-column expectation.
        # Without that recentering the basic (reverse-percentile)
        # intervals sit systematically off the estimate.
        t = max(float(scale) - 1.0, 0.0)
        c_raw = self.raw[:npairs]
        sing1 = (c_raw == 1.0).astype(np.float64)
        sing2 = (c_raw == 2.0).astype(np.float64)
        if self.trials is None:
            base = present
            phi1 = sing1[:, None] * np.ones((1, self.width))
            phi2 = sing2[:, None] * np.ones((1, self.width))
        else:
            exp_absent = np.exp(-c_raw)
            base = present + exp_absent[:, None]
            phi1 = ((self.wsum[:npairs] == 1)
                    + (sing1 - c_raw * exp_absent)[:, None])
            phi2 = ((self.wsum[:npairs] == 2)
                    + (sing2 - 0.5 * c_raw ** 2 * exp_absent)[:, None])

        def _group(mass, guard=None):
            outm = np.zeros((groups, self.width))
            for col in range(self.width):
                w = mass[:, col]
                if guard is not None:
                    # 0 * NaN is NaN: zero out zero-mass pairs so a
                    # NaN-valued pair only poisons columns it has mass
                    # in.
                    w = np.where(guard[:, col] != 0, w, 0.0)
                outm[:, col] = np.bincount(
                    group_of, weights=w, minlength=groups
                )
            return outm

        def _truncations(g1, g2):
            """Clamped first-order and two-term GT unseen-count series.

            Consecutive partial sums of the alternating Good-Toulmin
            series bracket the expected unseen count: first order
            (t * phi_1) over-extrapolates on near-saturated Zipf-ish
            domains, the two-term sum under-extrapolates long tails.
            The clamp at zero encodes that truth is never below
            distinct-seen.  Both vanish at the final batch (t == 0),
            keeping the last answer exact.
            """
            u1 = np.clip(t * g1, 0.0, None)
            u2 = np.clip(t * g1 - t * t * g2, 0.0, None)
            return u1, u2

        def _blend(u1, u2):
            """Mix the bracketing truncations across columns.

            The exact state (width 1) takes the midpoint as the point
            estimate; trial states alternate the truncation order by
            column parity, so the replica spread covers the whole
            bracket and the basic (reverse-percentile) interval spans
            [D + u2 - noise, D + u1 + noise] — truncation uncertainty
            becomes interval width instead of hidden bias.
            """
            if self.trials is None:
                return 0.5 * (u1 + u2)
            mixed = u2.copy()
            mixed[:, 0::2] = u1[:, 0::2]
            return mixed

        counts = _group(base)
        u_count = None
        if t > 0.0:
            u1, u2 = _truncations(_group(phi1), _group(phi2))
            u_count = _blend(u1, u2)
            counts = counts + u_count
        if self.mode == "count":
            return counts
        vals = np.fromiter(
            (k[1] for k in pair_keys), dtype=np.int64, count=npairs
        ).view(np.float64)
        sums = _group(vals[:, None] * base, guard=base)
        if u_count is not None:
            # Value-weighted GT for SUM: the k-ton pairs' own values
            # stand in for the unseen tail; dropped wherever the count
            # correction clamped to zero.
            v1 = _group(vals[:, None] * phi1, guard=phi1)
            v2 = _group(vals[:, None] * phi2, guard=phi2)
            s1 = np.where(u_count > 0, t * v1, 0.0)
            s2 = np.where(u_count > 0, t * v1 - t * t * v2, 0.0)
            sums = sums + _blend(s1, s2)
        if self.mode == "sum":
            return sums
        avg = np.zeros_like(sums)
        np.divide(sums, counts, out=avg, where=counts > 0)
        return avg

    def copy(self):
        out = DistinctState(self.trials, mode=self.mode)
        out.num_groups = self.num_groups
        out.pairs = self.pairs.copy()
        out.wsum = self.wsum.copy()
        out.raw = self.raw.copy()
        return out


class UDAFState(AggState):
    """Adapter turning user-supplied callables into a mergeable state.

    The user provides ``init() -> state``, ``update(state, values, weights)
    -> state``, ``merge(a, b) -> state`` and ``finalize(state) -> float``.
    Global aggregation and exact (non-bootstrap) execution only: the
    general bootstrap contract requires per-trial states, which arbitrary
    user code cannot promise.  This mirrors the paper's UDAF support.
    """

    def __init__(self, spec: "UDAFSpec", trials=None):
        if trials is not None:
            raise ExecutionError(
                f"UDAF {spec.name!r} does not support bootstrap trials"
            )
        super().__init__(None)
        self.spec = spec
        self.state = spec.init()

    def _alloc(self, groups):
        if groups > 1:
            raise ExecutionError("UDAFs support global aggregation only")

    def _update(self, group_idx, values, weights):
        self.state = self.spec.update(self.state, values, weights[:, 0])

    def _merge(self, other):
        self.state = self.spec.merge(self.state, other.state)

    def _finalize(self, scale):
        return np.array([[self.spec.finalize(self.state, scale)]])

    def copy(self):
        out = UDAFState(self.spec)
        out.num_groups = self.num_groups
        out.state = self.spec.merge(self.spec.init(), self.state)
        return out


@dataclass(frozen=True)
class UDAFSpec:
    """Registration record for a user-defined aggregate."""

    name: str
    init: Callable
    update: Callable
    merge: Callable
    finalize: Callable


class UDAFRegistry:
    """Name -> UDAFSpec registry attached to a session."""

    def __init__(self) -> None:
        self._specs: Dict[str, UDAFSpec] = {}

    def register(self, spec: UDAFSpec, replace: bool = False) -> None:
        key = spec.name.lower()
        if key in self._specs and not replace:
            raise PlanError(f"UDAF {spec.name!r} already registered")
        self._specs[key] = spec

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._specs

    def get(self, name: str) -> UDAFSpec:
        return self._specs[name.lower()]


_BUILTIN_AGGREGATES = {
    "sum": SumState,
    "count": CountState,
    "avg": AvgState,
    "mean": AvgState,
    "min": MinState,
    "max": MaxState,
    "var": VarState,
    "variance": VarState,
    "stdev": StdevState,
    "stddev": StdevState,
}

AGGREGATE_NAMES = frozenset(_BUILTIN_AGGREGATES) | {"quantile", "median"}


def is_aggregate_name(name: str, udafs: Optional[UDAFRegistry] = None) -> bool:
    """Whether ``name`` names a built-in aggregate or a registered UDAF."""
    key = name.lower()
    return key in AGGREGATE_NAMES or (udafs is not None and key in udafs)


def make_state(call: AggregateCall, trials: Optional[int] = None,
               udafs: Optional[UDAFRegistry] = None,
               quantile_capacity: int = 4096,
               seed: int = 0) -> AggState:
    """Create a fresh mergeable state for ``call``."""
    key = call.func
    if call.distinct:
        mode = {"mean": "avg"}.get(key, key)
        if mode in ("count", "sum", "avg"):
            return DistinctState(trials, mode=mode)
        raise PlanError(
            f"DISTINCT is not supported for aggregate {call.func!r}"
        )
    if key in _BUILTIN_AGGREGATES:
        return _BUILTIN_AGGREGATES[key](trials)
    if key == "quantile":
        q = call.param if call.param is not None else 0.5
        return QuantileState(trials, q=q, capacity=quantile_capacity, seed=seed)
    if key == "median":
        return QuantileState(trials, q=0.5, capacity=quantile_capacity, seed=seed)
    if udafs is not None and key in udafs:
        return UDAFState(udafs.get(key), trials)
    raise PlanError(f"unknown aggregate function {call.func!r}")
