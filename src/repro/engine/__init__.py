"""Vectorized relational execution engine (exact/batch path)."""

from .aggregates import (
    AggregateCall,
    AggState,
    GroupIndex,
    UDAFRegistry,
    UDAFSpec,
    is_aggregate_name,
    make_state,
)
from .executor import BatchExecutor
from .operators import group_indices, hash_join

__all__ = [
    "AggState",
    "AggregateCall",
    "BatchExecutor",
    "GroupIndex",
    "UDAFRegistry",
    "UDAFSpec",
    "group_indices",
    "hash_join",
    "is_aggregate_name",
    "make_state",
]
