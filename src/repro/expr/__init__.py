"""Expression trees, vectorized evaluation and the function registry."""

from .expressions import (
    Between,
    BinaryOp,
    BooleanOp,
    CaseWhen,
    ColumnRef,
    Comparison,
    Environment,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    Literal,
    Negate,
    SubqueryRef,
    conjoin,
    conjuncts,
    evaluate_mask,
)
from .functions import DEFAULT_FUNCTIONS, FunctionRegistry

__all__ = [
    "Between",
    "BinaryOp",
    "BooleanOp",
    "CaseWhen",
    "ColumnRef",
    "Comparison",
    "DEFAULT_FUNCTIONS",
    "Environment",
    "Expression",
    "FunctionCall",
    "FunctionRegistry",
    "InList",
    "InSubquery",
    "Literal",
    "Negate",
    "SubqueryRef",
    "conjoin",
    "conjuncts",
    "evaluate_mask",
]
