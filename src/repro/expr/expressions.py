"""Typed expression trees with vectorized evaluation.

Expressions are shared between the batch executor, the baselines and the
G-OLA online operators.  Evaluation is columnar: ``evaluate`` receives a
:class:`~repro.storage.table.Table` plus an :class:`Environment` carrying
the current values of *uncertain* slots — the results of nested aggregate
subqueries — and returns a numpy array (or a python scalar, which numpy
broadcasting handles uniformly).

The one G-OLA-specific node is :class:`SubqueryRef`: a placeholder for a
nested aggregate subquery's value.  During online execution the same
expression tree is re-evaluated across mini-batches with *different*
environments as the inner aggregates refine — this is exactly the lazy
lineage re-evaluation of paper section 3.3.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import ExecutionError
from ..storage.table import Table
from .functions import DEFAULT_FUNCTIONS, FunctionRegistry


class Environment:
    """Run-time bindings for subquery slots (and the function registry).

    Attributes:
        scalars: slot id -> current scalar value of an uncertain aggregate.
        keyed: slot id -> mapping of correlation-key value -> scalar, for
            correlated (group-keyed) subqueries such as TPC-H Q17's inner
            per-partkey average.
        key_sets: slot id -> set of key values, for ``IN (subquery)``.
        functions: scalar function registry used by FunctionCall nodes.
    """

    def __init__(
        self,
        scalars: Optional[Dict[int, float]] = None,
        keyed: Optional[Dict[int, Dict]] = None,
        key_sets: Optional[Dict[int, Set]] = None,
        functions: FunctionRegistry = DEFAULT_FUNCTIONS,
    ):
        self.scalars = scalars or {}
        self.keyed = keyed or {}
        self.key_sets = key_sets or {}
        self.functions = functions


EMPTY_ENV = Environment()


class Expression:
    """Base class for all expression nodes."""

    def evaluate(self, table: Table, env: Environment = EMPTY_ENV):
        """Evaluate over ``table``; returns an array or a scalar."""
        raise NotImplementedError

    def children(self) -> Sequence["Expression"]:
        return ()

    def references(self) -> Set[str]:
        """The set of column names this expression reads."""
        out: Set[str] = set()
        for child in self.children():
            out |= child.references()
        return out

    def subquery_slots(self) -> Set[int]:
        """The set of subquery slot ids appearing anywhere in this tree."""
        out: Set[int] = set()
        for child in self.children():
            out |= child.subquery_slots()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.sql()

    def sql(self) -> str:
        """A SQL-ish rendering, for plan display and error messages."""
        raise NotImplementedError


class Literal(Expression):
    """A constant value."""

    def __init__(self, value):
        self.value = value

    def evaluate(self, table, env=EMPTY_ENV):
        return self.value

    def sql(self) -> str:
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        return repr(self.value)


class ColumnRef(Expression):
    """A reference to a named column of the input table."""

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, table, env=EMPTY_ENV):
        return table.column(self.name)

    def references(self) -> Set[str]:
        return {self.name}

    def sql(self) -> str:
        return self.name


_ARITH = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "%": np.mod,
}

_COMPARE = {
    "=": np.equal,
    "!=": np.not_equal,
    "<>": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


class BinaryOp(Expression):
    """Arithmetic: ``left op right`` with op in ``+ - * / %``."""

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in _ARITH:
            raise ExecutionError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def evaluate(self, table, env=EMPTY_ENV):
        lhs = self.left.evaluate(table, env)
        rhs = self.right.evaluate(table, env)
        if self.op == "/":
            return _safe_divide(lhs, rhs)
        return _ARITH[self.op](lhs, rhs)

    def sql(self) -> str:
        return f"({self.left.sql()} {self.op} {self.right.sql()})"


def _safe_divide(lhs, rhs):
    """Division that maps x/0 to 0.0 rather than raising or inf.

    SQL engines return NULL for division by zero; we have no NULL in the
    numeric fast path, so 0.0 is the documented convention.
    """
    lhs_a = np.asarray(lhs, dtype=np.float64)
    rhs_a = np.asarray(rhs, dtype=np.float64)
    shape = np.broadcast(lhs_a, rhs_a).shape
    if shape == ():
        return float(lhs_a / rhs_a) if float(rhs_a) != 0.0 else 0.0
    out = np.zeros(shape, dtype=np.float64)
    np.divide(lhs_a, rhs_a, out=out, where=(rhs_a != 0))
    return out


class Negate(Expression):
    """Unary minus."""

    def __init__(self, operand: Expression):
        self.operand = operand

    def children(self):
        return (self.operand,)

    def evaluate(self, table, env=EMPTY_ENV):
        return np.negative(self.operand.evaluate(table, env))

    def sql(self) -> str:
        return f"(-{self.operand.sql()})"


class Comparison(Expression):
    """``left θ right`` for θ in ``= != < <= > >=``.

    This is the node class at which G-OLA's uncertain/deterministic tuple
    classification happens (paper section 3.2): when either side contains a
    :class:`SubqueryRef`, ``repro.core.classify`` partitions input tuples by
    intersecting the variation ranges of both sides.
    """

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in _COMPARE:
            raise ExecutionError(f"unknown comparison operator {op!r}")
        self.op = "!=" if op == "<>" else op
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def evaluate(self, table, env=EMPTY_ENV):
        lhs = self.left.evaluate(table, env)
        rhs = self.right.evaluate(table, env)
        return _COMPARE[self.op](lhs, rhs)

    def sql(self) -> str:
        return f"({self.left.sql()} {self.op} {self.right.sql()})"


class BooleanOp(Expression):
    """N-ary AND / OR and unary NOT."""

    def __init__(self, op: str, operands: Sequence[Expression]):
        op = op.upper()
        if op not in ("AND", "OR", "NOT"):
            raise ExecutionError(f"unknown boolean operator {op!r}")
        if op == "NOT" and len(operands) != 1:
            raise ExecutionError("NOT takes exactly one operand")
        if op in ("AND", "OR") and len(operands) < 2:
            raise ExecutionError(f"{op} takes at least two operands")
        self.op = op
        self.operands = list(operands)

    def children(self):
        return tuple(self.operands)

    def evaluate(self, table, env=EMPTY_ENV):
        if self.op == "NOT":
            return np.logical_not(self.operands[0].evaluate(table, env))
        fn = np.logical_and if self.op == "AND" else np.logical_or
        out = self.operands[0].evaluate(table, env)
        for operand in self.operands[1:]:
            out = fn(out, operand.evaluate(table, env))
        return out

    def sql(self) -> str:
        if self.op == "NOT":
            return f"(NOT {self.operands[0].sql()})"
        sep = f" {self.op} "
        return "(" + sep.join(o.sql() for o in self.operands) + ")"


class FunctionCall(Expression):
    """A scalar function or UDF call, resolved via the registry."""

    def __init__(self, name: str, args: Sequence[Expression]):
        self.name = name.lower()
        self.args = list(args)

    def children(self):
        return tuple(self.args)

    def evaluate(self, table, env=EMPTY_ENV):
        fn = env.functions.lookup(self.name)
        return fn(*[a.evaluate(table, env) for a in self.args])

    def sql(self) -> str:
        return f"{self.name}({', '.join(a.sql() for a in self.args)})"


class CaseWhen(Expression):
    """``CASE WHEN c1 THEN v1 ... ELSE e END`` (searched form)."""

    def __init__(
        self,
        whens: Sequence[Tuple[Expression, Expression]],
        otherwise: Optional[Expression] = None,
    ):
        if not whens:
            raise ExecutionError("CASE requires at least one WHEN branch")
        self.whens = list(whens)
        self.otherwise = otherwise

    def children(self):
        out: List[Expression] = []
        for cond, value in self.whens:
            out.extend((cond, value))
        if self.otherwise is not None:
            out.append(self.otherwise)
        return tuple(out)

    def evaluate(self, table, env=EMPTY_ENV):
        n = table.num_rows
        result = None
        assigned = np.zeros(n, dtype=bool)
        default = (
            self.otherwise.evaluate(table, env)
            if self.otherwise is not None
            else 0.0
        )
        result = np.broadcast_to(np.asarray(default), (n,)).copy() \
            if np.ndim(default) == 0 else np.asarray(default).copy()
        # Apply branches last-to-first so earlier WHENs win, SQL-style.
        for cond, value in reversed(self.whens):
            mask = np.broadcast_to(
                np.asarray(cond.evaluate(table, env), dtype=bool), (n,)
            )
            val = value.evaluate(table, env)
            val_arr = np.broadcast_to(np.asarray(val), (n,))
            if result.dtype != val_arr.dtype and result.dtype != object:
                result = result.astype(np.result_type(result, val_arr))
            result[mask] = val_arr[mask]
        return result

    def sql(self) -> str:
        parts = ["CASE"]
        for cond, value in self.whens:
            parts.append(f"WHEN {cond.sql()} THEN {value.sql()}")
        if self.otherwise is not None:
            parts.append(f"ELSE {self.otherwise.sql()}")
        parts.append("END")
        return " ".join(parts)


class Between(Expression):
    """``value BETWEEN low AND high`` (inclusive both ends)."""

    def __init__(self, value: Expression, low: Expression, high: Expression):
        self.value = value
        self.low = low
        self.high = high

    def children(self):
        return (self.value, self.low, self.high)

    def evaluate(self, table, env=EMPTY_ENV):
        v = self.value.evaluate(table, env)
        return np.logical_and(
            np.greater_equal(v, self.low.evaluate(table, env)),
            np.less_equal(v, self.high.evaluate(table, env)),
        )

    def sql(self) -> str:
        return (
            f"({self.value.sql()} BETWEEN {self.low.sql()} "
            f"AND {self.high.sql()})"
        )


class InList(Expression):
    """``value IN (literal, literal, ...)``."""

    def __init__(self, value: Expression, options: Sequence):
        self.value = value
        self.options = list(options)

    def children(self):
        return (self.value,)

    def evaluate(self, table, env=EMPTY_ENV):
        v = np.asarray(self.value.evaluate(table, env))
        out = np.zeros(v.shape, dtype=bool)
        for option in self.options:
            out |= v == option
        return out

    def sql(self) -> str:
        inner = ", ".join(
            "'" + o + "'" if isinstance(o, str) else repr(o)
            for o in self.options
        )
        return f"({self.value.sql()} IN ({inner}))"


class SubqueryRef(Expression):
    """The value of a nested aggregate subquery (an *uncertain* slot).

    ``slot`` identifies the subquery in the meta plan.  Three shapes:

    * scalar — an uncorrelated scalar subquery, e.g. SBI's inner
      ``AVG(buffer_time)``; evaluates to the environment's current scalar.
    * keyed — an equality-correlated scalar subquery, e.g. Q17's
      per-``partkey`` average; ``correlation`` is the outer-side key
      expression and evaluation maps each key through the slot's table.
    * membership is handled by :class:`InSubquery` below.
    """

    def __init__(self, slot: int, correlation: Optional[Expression] = None,
                 default: float = np.nan):
        self.slot = slot
        self.correlation = correlation
        self.default = default

    def children(self):
        return (self.correlation,) if self.correlation is not None else ()

    def subquery_slots(self) -> Set[int]:
        out = {self.slot}
        for child in self.children():
            out |= child.subquery_slots()
        return out

    def evaluate(self, table, env=EMPTY_ENV):
        if self.correlation is None:
            if self.slot not in env.scalars:
                raise ExecutionError(
                    f"no value bound for subquery slot {self.slot}"
                )
            return env.scalars[self.slot]
        mapping = env.keyed.get(self.slot)
        if mapping is None:
            raise ExecutionError(
                f"no keyed values bound for subquery slot {self.slot}"
            )
        keys = np.asarray(self.correlation.evaluate(table, env))
        get = mapping.get
        return np.array(
            [get(k, self.default) for k in keys.tolist()], dtype=np.float64
        )

    def sql(self) -> str:
        if self.correlation is None:
            return f"<subquery#{self.slot}>"
        return f"<subquery#{self.slot} keyed by {self.correlation.sql()}>"


class InSubquery(Expression):
    """``key IN (SELECT ... )`` — membership in an uncertain key set."""

    def __init__(self, value: Expression, slot: int, negated: bool = False):
        self.value = value
        self.slot = slot
        self.negated = negated

    def children(self):
        return (self.value,)

    def subquery_slots(self) -> Set[int]:
        return {self.slot} | self.value.subquery_slots()

    def evaluate(self, table, env=EMPTY_ENV):
        members = env.key_sets.get(self.slot)
        if members is None:
            raise ExecutionError(
                f"no key set bound for subquery slot {self.slot}"
            )
        keys = np.asarray(self.value.evaluate(table, env))
        out = np.array([k in members for k in keys.tolist()], dtype=bool)
        return ~out if self.negated else out

    def sql(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        return f"({self.value.sql()} {op} <subquery#{self.slot}>)"


def conjuncts(expr: Optional[Expression]) -> List[Expression]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BooleanOp) and expr.op == "AND":
        out: List[Expression] = []
        for operand in expr.operands:
            out.extend(conjuncts(operand))
        return out
    return [expr]


def conjoin(parts: Sequence[Expression]) -> Optional[Expression]:
    """Combine conjuncts back into a single predicate (None if empty)."""
    parts = list(parts)
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return BooleanOp("AND", parts)


def evaluate_mask(expr: Expression, table: Table,
                  env: Environment = EMPTY_ENV) -> np.ndarray:
    """Evaluate a predicate to a full-length boolean mask."""
    raw = expr.evaluate(table, env)
    return np.broadcast_to(
        np.asarray(raw, dtype=bool), (table.num_rows,)
    ).copy()
