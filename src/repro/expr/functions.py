"""Scalar function registry (built-ins and UDFs).

G-OLA explicitly supports user-defined functions inside online queries
(paper section 2): a UDF is just a vectorized callable registered here and
referenced by name from SQL or from hand-built expression trees.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..errors import BindError


class FunctionRegistry:
    """Name -> vectorized implementation mapping for scalar functions.

    Implementations receive numpy arrays (or python scalars) — one
    positional argument per SQL argument — and must return an array
    broadcastable against the inputs.
    """

    def __init__(self) -> None:
        self._functions: Dict[str, Callable] = {}
        self._register_builtins()

    def register(self, name: str, fn: Callable, replace: bool = False) -> None:
        """Register a UDF under ``name`` (case-insensitive)."""
        key = name.lower()
        if key in self._functions and not replace:
            raise BindError(f"function {name!r} already registered")
        self._functions[key] = fn

    def lookup(self, name: str) -> Callable:
        key = name.lower()
        if key not in self._functions:
            raise BindError(
                f"unknown function {name!r}; known: {sorted(self._functions)}"
            )
        return self._functions[key]

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._functions

    def _register_builtins(self) -> None:
        self._functions.update(
            {
                "abs": np.abs,
                "sqrt": np.sqrt,
                "exp": np.exp,
                "ln": np.log,
                "log": np.log,
                "log2": np.log2,
                "log10": np.log10,
                "floor": np.floor,
                "ceil": np.ceil,
                "round": _sql_round,
                "sign": np.sign,
                "power": np.power,
                "pow": np.power,
                "mod": np.mod,
                "greatest": _greatest,
                "least": _least,
                "coalesce": _coalesce,
                "lower": _string_op(str.lower),
                "upper": _string_op(str.upper),
                "length": _string_op(len, out_dtype=np.int64),
                "substr": _substr,
                "concat": _concat,
                "if": _sql_if,
                "nullif": _nullif,
            }
        )


def _sql_round(values, digits=0):
    return np.round(values, int(np.asarray(digits).reshape(-1)[0]) if np.ndim(digits) else int(digits))


def _greatest(*args):
    out = args[0]
    for a in args[1:]:
        out = np.maximum(out, a)
    return out


def _least(*args):
    out = args[0]
    for a in args[1:]:
        out = np.minimum(out, a)
    return out


def _coalesce(*args):
    out = np.asarray(args[0], dtype=object).copy()
    for a in args[1:]:
        missing = np.array([v is None for v in out.ravel()]).reshape(out.shape)
        if not missing.any():
            break
        out[missing] = np.broadcast_to(np.asarray(a, dtype=object), out.shape)[missing]
    return out


def _string_op(fn, out_dtype=object):
    def wrapped(values):
        arr = np.asarray(values, dtype=object)
        return np.array([fn(v) for v in arr], dtype=out_dtype)

    return wrapped


def _substr(values, start, length=None):
    arr = np.asarray(values, dtype=object)
    s = int(np.asarray(start).reshape(-1)[0]) - 1  # SQL is 1-based
    if length is None:
        return np.array([v[s:] for v in arr], dtype=object)
    n = int(np.asarray(length).reshape(-1)[0])
    return np.array([v[s:s + n] for v in arr], dtype=object)


def _concat(*args):
    arrays = [np.asarray(a, dtype=object) for a in args]
    n = max(a.shape[0] if a.ndim else 1 for a in arrays)
    arrays = [np.broadcast_to(a, (n,)) for a in arrays]
    return np.array(
        ["".join(str(a[i]) for a in arrays) for i in range(n)], dtype=object
    )


def _sql_if(cond, then, otherwise):
    return np.where(np.asarray(cond, dtype=bool), then, otherwise)


def _nullif(values, sentinel):
    arr = np.asarray(values, dtype=object).copy()
    arr[np.asarray(values) == sentinel] = None
    return arr


DEFAULT_FUNCTIONS = FunctionRegistry()
