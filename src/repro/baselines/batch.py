"""Traditional batch execution baseline.

The comparator marked by the vertical bar in the paper's Figure 3(a): a
query engine that only answers after processing the entire dataset.  Thin
wrapper over the exact executor that also reports the row-volume metric
the cluster simulator converts to latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..engine.aggregates import UDAFRegistry
from ..engine.executor import BatchExecutor
from ..plan.logical import Query
from ..storage.table import Table


@dataclass
class BatchRunResult:
    """The exact answer plus the work done to produce it."""

    table: Table
    rows_processed: int
    elapsed_s: float


class BatchBaseline:
    """Runs queries exactly, once, over all the data."""

    def __init__(self, tables: Dict[str, Table],
                 udafs: Optional[UDAFRegistry] = None):
        self.executor = BatchExecutor(tables, udafs)

    def run(self, query: Query) -> BatchRunResult:
        import time

        started = time.perf_counter()
        table = self.executor.execute(query)
        elapsed = time.perf_counter() - started
        return BatchRunResult(
            table=table,
            rows_processed=self.executor.last_rows_processed,
            elapsed_s=elapsed,
        )
