"""Traditional batch execution baseline.

The comparator marked by the vertical bar in the paper's Figure 3(a): a
query engine that only answers after processing the entire dataset.  Thin
wrapper over the exact executor that also reports the row-volume metric
the cluster simulator converts to latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..engine.aggregates import UDAFRegistry
from ..engine.executor import BatchExecutor
from ..obs import NULL_TRACER, Tracer
from ..plan.logical import Query
from ..storage.table import Table


@dataclass
class BatchRunResult:
    """The exact answer plus the work done to produce it."""

    table: Table
    rows_processed: int
    elapsed_s: float


class BatchBaseline:
    """Runs queries exactly, once, over all the data.

    Timing goes through the shared :class:`repro.obs.Timer` clock path —
    the same one the G-OLA controller and the CDM baseline use — so
    cross-engine ratios (Figure 3's comparisons) come from one clock.
    """

    def __init__(self, tables: Dict[str, Table],
                 udafs: Optional[UDAFRegistry] = None,
                 tracer: Optional[Tracer] = None):
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.executor = BatchExecutor(tables, udafs, tracer=self.tracer)

    def run(self, query: Query) -> BatchRunResult:
        with self.tracer.span("query", engine="batch") as span, \
                self.tracer.timer() as timer:
            table = self.executor.execute(query)
            span.set("rows_processed", self.executor.last_rows_processed)
        return BatchRunResult(
            table=table,
            rows_processed=self.executor.last_rows_processed,
            elapsed_s=timer.elapsed_s,
        )
