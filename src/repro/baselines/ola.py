"""Classical online aggregation (Hellerstein, Haas & Wang 1997).

The pre-G-OLA state of the art: running aggregates over a random stream
with closed-form (CLT) error bars.  It handles exactly the monotonic
SPJA class — any nested aggregate subquery raises
:class:`~repro.errors.UnsupportedQueryError`, which is the limitation
G-OLA removes (paper sections 1 and 7).

Implemented directly on mergeable (count, sum, sum-of-squares)
accumulators rather than the bootstrap machinery, matching the original
system's estimator family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..config import GolaConfig
from ..engine.aggregates import GroupIndex
from ..errors import UnsupportedQueryError
from ..estimate.closed_form import z_value
from ..expr.expressions import Environment, evaluate_mask
from ..plan.logical import Query
from ..storage.partition import MiniBatchPartitioner
from ..storage.table import Table
from ..core.delta import parse_block


@dataclass
class OlaSnapshot:
    """Classical OLA progress: estimates with CLT error bars per group."""

    batch_index: int
    num_batches: int
    group_keys: List
    estimates: Dict[str, np.ndarray]
    lows: Dict[str, np.ndarray]
    highs: Dict[str, np.ndarray]
    rows_processed: int

    def scalar(self, alias: Optional[str] = None) -> Tuple[float, float, float]:
        """(estimate, low, high) for a global single-aggregate query."""
        alias = alias or next(iter(self.estimates))
        return (
            float(self.estimates[alias][0]),
            float(self.lows[alias][0]),
            float(self.highs[alias][0]),
        )


class ClassicalOLA:
    """Online aggregation for monotonic SPJA queries only."""

    _SUPPORTED = {"avg", "mean", "sum", "count"}

    def __init__(self, query: Query, tables: Dict[str, Table],
                 config: GolaConfig):
        if query.subqueries:
            raise UnsupportedQueryError(
                "classical OLA supports only SPJA queries; nested aggregate "
                "subqueries are non-monotonic (this is the gap G-OLA fills)"
            )
        self.query = query
        self.config = config
        self.tables = {k.lower(): v for k, v in tables.items()}
        self.pipeline = parse_block(query.plan)
        if self.pipeline.aggregate.having is not None:
            raise UnsupportedQueryError(
                "classical OLA does not support HAVING"
            )
        for call in self.pipeline.aggregate.aggregates:
            if call.func not in self._SUPPORTED:
                raise UnsupportedQueryError(
                    f"classical OLA has no closed-form error for "
                    f"{call.func.upper()}"
                )
        self.streamed_table = self.pipeline.scan.table_name

    def run(self) -> Iterator[OlaSnapshot]:
        """Yield running estimates with CLT intervals per mini-batch."""
        table = self.tables[self.streamed_table]
        partitioner = MiniBatchPartitioner(
            self.config.num_batches, seed=self.config.seed,
            shuffle=self.config.shuffle,
        )
        env = Environment()
        agg = self.pipeline.aggregate
        index = GroupIndex()
        # Accumulators per aggregate: weighted count, sum, sum of squares.
        acc: Dict[str, List[np.ndarray]] = {
            c.alias: [np.zeros(0), np.zeros(0), np.zeros(0)]
            for c in agg.aggregates
        }
        total_population = table.num_rows
        seen = 0
        k = self.config.num_batches

        for i, batch in enumerate(partitioner.partition(table), start=1):
            piped = batch
            for kind, step in self.pipeline.certain_steps:
                if kind != "filter":
                    raise UnsupportedQueryError(
                        "classical OLA baseline supports single-relation "
                        "queries"
                    )
                piped = piped.take(evaluate_mask(step, piped, env))
            seen += batch.num_rows
            group_idx = self._group(piped, index, env)
            num_groups = max(index.num_groups, 1)
            for call in agg.aggregates:
                n_arr, s_arr, ss_arr = acc[call.alias]
                if len(n_arr) < num_groups:
                    pad = num_groups - len(n_arr)
                    n_arr = np.concatenate([n_arr, np.zeros(pad)])
                    s_arr = np.concatenate([s_arr, np.zeros(pad)])
                    ss_arr = np.concatenate([ss_arr, np.zeros(pad)])
                if piped.num_rows:
                    values = (
                        np.ones(piped.num_rows)
                        if call.arg is None
                        else np.asarray(
                            call.arg.evaluate(piped, env), dtype=np.float64
                        )
                    )
                    if values.ndim == 0:
                        values = np.full(piped.num_rows, float(values))
                    np.add.at(n_arr, group_idx, 1.0)
                    np.add.at(s_arr, group_idx, values)
                    np.add.at(ss_arr, group_idx, values ** 2)
                acc[call.alias] = [n_arr, s_arr, ss_arr]

            yield self._snapshot(i, k, index, acc, seen, total_population,
                                 batch.num_rows)

    def _group(self, table: Table, index: GroupIndex,
               env: Environment) -> np.ndarray:
        agg = self.pipeline.aggregate
        n = table.num_rows
        if not agg.group_by:
            index.encode(np.zeros(1, dtype=np.int64))
            return np.zeros(n, dtype=np.int64)
        raw = np.asarray(agg.group_by[0][0].evaluate(table, env))
        keys = np.broadcast_to(raw, (n,)) if raw.ndim == 0 else raw
        return index.encode(keys)

    def _snapshot(self, i: int, k: int, index: GroupIndex, acc, seen: int,
                  population: int, batch_rows: int) -> OlaSnapshot:
        z = z_value(self.config.confidence)
        scale = population / max(seen, 1)
        estimates: Dict[str, np.ndarray] = {}
        lows: Dict[str, np.ndarray] = {}
        highs: Dict[str, np.ndarray] = {}
        for call in self.pipeline.aggregate.aggregates:
            n_arr, s_arr, ss_arr = acc[call.alias]
            n_safe = np.maximum(n_arr, 1.0)
            mean = s_arr / n_safe
            var = np.maximum(ss_arr / n_safe - mean ** 2, 0.0)
            big = n_arr > 1
            var[big] *= n_arr[big] / (n_arr[big] - 1.0)
            se_mean = np.sqrt(var / n_safe)
            if call.func in ("avg", "mean"):
                est, se = mean, se_mean
            elif call.func == "sum":
                est = s_arr * scale
                se = scale * n_arr * se_mean
            else:  # count
                est = n_arr * scale
                # Binomial-style error on the selected fraction.
                p = n_arr / max(seen, 1)
                se = population * np.sqrt(
                    np.maximum(p * (1 - p), 0.0) / max(seen, 1)
                )
            estimates[call.alias] = est
            lows[call.alias] = est - z * se
            highs[call.alias] = est + z * se
        return OlaSnapshot(
            batch_index=i, num_batches=k, group_keys=index.keys(),
            estimates=estimates, lows=lows, highs=highs,
            rows_processed=batch_rows,
        )
