"""Classical delta maintenance (CDM) — the Figure 3(b) comparator.

Classical incremental view maintenance handles insert-only streams well
for monotonic operators, but a nested aggregate subquery breaks it: every
refinement of the inner aggregate flips earlier predicate decisions, so
the engine must re-run the affected part of the query over *all* data
seen so far (paper section 3.1).  At batch ``i`` that is ``O(|D_i|)``
work for every block consuming a changed value; across ``k`` batches,
``O(k²·n)`` total — versus G-OLA's ``O(|ΔD_i| + |U_{i-1}|)`` per batch.

This baseline actually executes that recomputation (using the exact
engine over the growing prefix) and reports per-batch row volumes so the
cluster simulator can reproduce the paper's time-ratio curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


from ..config import GolaConfig
from ..engine.aggregates import UDAFRegistry
from ..engine.executor import BatchExecutor
from ..errors import UnsupportedQueryError
from ..obs import Tracer, tracer_from_config
from ..plan.lineage_blocks import lineage_blocks
from ..plan.logical import Query
from ..storage.partition import MiniBatchPartitioner
from ..storage.table import Table
from ..core.delta import parse_block


@dataclass
class CdmSnapshot:
    """One CDM iteration: the recomputed prefix answer and its cost."""

    batch_index: int
    num_batches: int
    table: Table
    rows_processed: Dict[str, int]
    elapsed_s: float

    @property
    def total_rows_processed(self) -> int:
        return sum(self.rows_processed.values())


class ClassicalDeltaMaintenance:
    """Incremental maintenance that recomputes on inner-aggregate change.

    Monotonic blocks (those consuming no uncertain values — e.g. the
    innermost aggregates themselves) are maintained incrementally at
    ``O(|ΔD_i|)``; every block that consumes a nested aggregate's value is
    recomputed over the full prefix ``D_i``, which is what the classical
    algorithms [Griffin & Libkin, Palpanas et al., DBToaster] degenerate
    to on non-monotonic queries.
    """

    def __init__(self, query: Query, tables: Dict[str, Table],
                 config: GolaConfig,
                 udafs: Optional[UDAFRegistry] = None,
                 tracer: Optional[Tracer] = None):
        if query.streamed_table is None:
            raise UnsupportedQueryError("CDM needs a streamed relation")
        self.query = query
        self.config = config
        self.tables = {k.lower(): v for k, v in tables.items()}
        self.udafs = udafs
        self.tracer = (
            tracer if tracer is not None else tracer_from_config(config)
        )
        self.streamed_table = query.streamed_table
        self.blocks = lineage_blocks(query)
        # Which blocks must recompute when inner aggregates refine.
        self._recomputing_blocks = [
            b.block_id for b in self.blocks
            if b.consumes and _scans_streamed(b, self.streamed_table)
        ]
        self._incremental_blocks = [
            b.block_id for b in self.blocks
            if not b.consumes and _scans_streamed(b, self.streamed_table)
        ]

    def run(self) -> Iterator[CdmSnapshot]:
        """Yield the exact prefix answer ``Q(D_i, k/i)`` per batch.

        Per-batch timing uses the shared :class:`repro.obs.Timer` clock
        path (identical bracketing to the G-OLA controller), so Figure
        3(b)'s CDM/G-OLA ratios compare like with like; with tracing
        enabled each iteration records a ``batch`` span tagged
        ``engine="cdm"`` comparable to the controller's batch spans.
        """
        tracer = self.tracer
        table = self.tables[self.streamed_table]
        partitioner = MiniBatchPartitioner(
            self.config.num_batches, seed=self.config.seed,
            shuffle=self.config.shuffle,
        )
        executor = BatchExecutor(self.tables, self.udafs, tracer=tracer)
        k = self.config.num_batches
        prefix_parts: List[Table] = []
        prefix_rows = 0

        with tracer.span("query", engine="cdm", num_batches=k):
            for i, batch in enumerate(partitioner.partition(table),
                                      start=1):
                with tracer.span("batch", engine="cdm", batch_index=i,
                                 rows_in=batch.num_rows) as span, \
                        tracer.timer() as timer:
                    prefix_parts.append(batch)
                    prefix_rows += batch.num_rows
                    prefix = Table.concat(prefix_parts)
                    result = executor.execute(
                        self.query, scale=k / i,
                        overrides={self.streamed_table: prefix},
                    )

                    rows: Dict[str, int] = {}
                    for block_id in self._incremental_blocks:
                        rows[block_id] = batch.num_rows
                    for block_id in self._recomputing_blocks:
                        rows[block_id] = prefix_rows
                    span.set("rows_processed", sum(rows.values()))
                yield CdmSnapshot(
                    batch_index=i, num_batches=k, table=result,
                    rows_processed=rows, elapsed_s=timer.elapsed_s,
                )


def _scans_streamed(block, streamed_table: str) -> bool:
    return parse_block(block.plan).scan.table_name == streamed_table
