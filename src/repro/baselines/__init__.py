"""Baselines the paper evaluates G-OLA against."""

from .batch import BatchBaseline, BatchRunResult
from .cdm import CdmSnapshot, ClassicalDeltaMaintenance
from .ola import ClassicalOLA, OlaSnapshot

__all__ = [
    "BatchBaseline",
    "BatchRunResult",
    "CdmSnapshot",
    "ClassicalDeltaMaintenance",
    "ClassicalOLA",
    "OlaSnapshot",
]
