"""Concurrent multi-query serving: scheduler, scan cache, HTTP streaming.

The paper's system serves *interactive analysis*: many analysts pointing
dashboards at one engine, each expecting their estimate to refine every
few seconds.  This package turns a single :class:`~repro.core.session.
GolaSession` into that shared service:

* :class:`QueryScheduler` — admits, prioritizes (deficit round-robin)
  and cooperatively interleaves mini-batch steps across concurrent
  online queries, with deadlines, pause/resume, cancellation and
  quarantine-on-crash; all queries share one worker pool and one
  :class:`BatchScanCache`;
* :class:`SnapshotStream` / :func:`encode_snapshot` — per-query
  replayable pub/sub snapshot records with non-blocking backpressure;
* :class:`GolaServer` — a stdlib HTTP/JSON front end streaming NDJSON
  (``python -m repro serve``), with graceful SIGTERM drain;
* :class:`ServeTelemetry` / :class:`QueryTelemetry` — live SLO
  histograms, sliding-window rates and per-query convergence streams
  behind ``GET /metrics`` (Prometheus text) and
  ``GET /queries/<id>/telemetry`` (NDJSON);
* :class:`LoadGenerator` — a seeded Poisson open/closed-loop load
  harness (``python -m repro loadgen``, ``benchmarks/bench_serve.py``).

Every query's snapshot stream is bit-identical to running it alone — the
scheduler multiplexes *scheduling*, never the per-query RNG streams or
block state.
"""

from .cache import BatchScanCache, table_bytes
from .loadgen import LoadGenerator, LoadSpec
from .scheduler import (
    CANCELLED,
    DONE,
    EXPIRED,
    FAILED,
    PAUSED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    DrainingError,
    QueryScheduler,
    ScheduledQuery,
)
from .server import GolaServer
from .stream import SnapshotStream, encode_snapshot
from .telemetry import (
    EPSILONS,
    PROMETHEUS_CONTENT_TYPE,
    PrometheusFamily,
    QueryTelemetry,
    ServeTelemetry,
    parse_prometheus,
    relative_half_width,
    render_prometheus,
)

__all__ = [
    "BatchScanCache",
    "DrainingError",
    "EPSILONS",
    "GolaServer",
    "LoadGenerator",
    "LoadSpec",
    "PROMETHEUS_CONTENT_TYPE",
    "PrometheusFamily",
    "QueryScheduler",
    "QueryTelemetry",
    "ScheduledQuery",
    "ServeTelemetry",
    "SnapshotStream",
    "encode_snapshot",
    "parse_prometheus",
    "relative_half_width",
    "render_prometheus",
    "table_bytes",
    "QUEUED",
    "RUNNING",
    "PAUSED",
    "DONE",
    "CANCELLED",
    "FAILED",
    "EXPIRED",
    "TERMINAL_STATES",
]
