"""Shared batch-scan cache for concurrent queries over one table.

Partitioning a streamed table into mini-batches is the one piece of
per-query work that is *identical* across queries agreeing on the
partitioning knobs: :class:`~repro.storage.partition.MiniBatchPartitioner`
derives the shuffle permutation and the slice bounds purely from
``(num_batches, seed, shuffle)`` and the table.  With ``shuffle=True``
(the default) each query would otherwise materialize its own shuffled
copy of the whole fact table — the dominant per-query memory and setup
cost under concurrency.

:class:`BatchScanCache` memoizes the partition list per
``(table name, table identity, num_batches, seed, shuffle)`` so N
concurrent queries over the same table share one set of mini-batch
slices.  Sharing cannot perturb results: the cached list is exactly what
a private partitioner would have produced, and batches are read-only
downstream (controllers never mutate table columns).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import List, Optional, Tuple

from ..obs import MetricsRegistry
from ..storage.partition import MiniBatchPartitioner
from ..storage.table import Table


def table_bytes(table: Table) -> int:
    """Estimated resident bytes of a table's column arrays.

    Colstore datasets (registered in place of a table) expose an
    ``estimated_bytes`` of their *logical* decoded size — the admission
    bound is deliberately conservative, since the scheduler cannot know
    how much of a memory-mapped dataset a query will fault in.
    """
    est = getattr(table, "estimated_bytes", None)
    if est is not None:
        return int(est)
    total = 0
    for name in table.schema.names:
        arr = table.column(name)
        total += int(arr.nbytes)
        if arr.dtype == object:
            # nbytes counts only the pointers; approximate the payload.
            total += sum(len(str(v)) for v in arr[:256]) * max(
                len(arr) // 256, 1
            )
    return total


class BatchScanCache:
    """LRU cache of mini-batch partition lists, safe for many threads.

    A hit requires the *same table object* (identity, not just name):
    re-registering a table under an old name gets fresh partitions, and
    a stale entry for the old object is replaced rather than served.
    """

    def __init__(self, max_entries: int = 8,
                 metrics: Optional[MetricsRegistry] = None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.metrics = metrics
        self._lock = threading.Lock()
        #: key -> (table object, partition list)
        self._entries: "OrderedDict[tuple, Tuple[Table, List[Table]]]" = \
            OrderedDict()
        self.hits = 0
        self.misses = 0

    def _key(self, name: str, config) -> tuple:
        return (name, config.num_batches, config.seed, config.shuffle)

    def partitions(self, name: str, table: Table, config) -> List[Table]:
        """The mini-batch list a private partitioner would produce.

        ``config`` is any object with ``num_batches``/``seed``/
        ``shuffle`` (a :class:`~repro.config.GolaConfig`).
        """
        key = self._key(name, config)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] is table:
                self._entries.move_to_end(key)
                self.hits += 1
                if self.metrics is not None and self.metrics.enabled:
                    self.metrics.counter("serve.scan_cache_hits").inc()
                return entry[1]
        # Partition outside the lock: slicing a big table is the slow
        # part, and concurrent misses for the same key converge on the
        # same (bit-identical) result anyway.
        partitioner = MiniBatchPartitioner(
            config.num_batches, seed=config.seed, shuffle=config.shuffle
        )
        batches = partitioner.partition(table)
        with self._lock:
            self.misses += 1
            if self.metrics is not None and self.metrics.enabled:
                self.metrics.counter("serve.scan_cache_misses").inc()
            self._entries[key] = (table, batches)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return batches

    def invalidate(self, name: Optional[str] = None) -> None:
        """Drop cached partitions for one table name (or all of them)."""
        with self._lock:
            if name is None:
                self._entries.clear()
            else:
                for key in [k for k in self._entries if k[0] == name]:
                    del self._entries[key]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }
