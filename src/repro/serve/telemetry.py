"""Serve-layer telemetry: SLO histograms, convergence streams, /metrics.

G-OLA's product is *interactivity* — time to a first usable estimate and
the rate at which its confidence interval tightens.  This module makes
both first-class observables of the serving process:

* :class:`ServeTelemetry` — the hub the scheduler calls into at submit /
  admit / snapshot / finalize boundaries.  It feeds the shared
  :class:`~repro.obs.MetricsRegistry` (cumulative log-bucket histograms:
  first-answer latency, queue wait, step seconds, convergence latency)
  plus sliding 10s/1m/5m windows for live rates and quantiles, and keeps
  one :class:`QueryTelemetry` per query.
* :class:`QueryTelemetry` — a per-query NDJSON convergence stream
  (served at ``GET /queries/<id>/telemetry``): one record per snapshot
  with CI width vs. wallclock, closed by a summary with derived
  time-to-±ε for ε ∈ {10%, 5%, 1%}.
* :func:`render_prometheus` / :func:`parse_prometheus` — the
  text-exposition (version 0.0.4) encoder behind ``GET /metrics`` and
  the strict parser used by ``repro top`` and the format tests.

Telemetry is observational only: every hook runs outside controller
code, so enabling or disabling it cannot change any query's results
(the bit-identity acceptance test pins this).
"""

from __future__ import annotations

import math
import re
import time
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.result import OnlineSnapshot
from ..obs import MetricsRegistry, quantile_from_cumulative
from ..obs.live import WindowedHistogram
from ..obs.metrics import MetricsSnapshot
from .stream import SnapshotStream

#: Relative half-width targets for derived time-to-±ε convergence
#: metrics (±10%, ±5%, ±1% of the running estimate).
EPSILONS: Tuple[float, ...] = (0.10, 0.05, 0.01)


def relative_half_width(snapshot: OnlineSnapshot) -> float:
    """The CI half-width relative to the estimate, at this snapshot.

    Scalar answers use the single cell's interval; multi-cell answers
    report the *widest* finite per-cell relative half-width (the whole
    result has converged to ±ε only when its worst cell has).  NaN when
    no cell has a finite error bar.
    """
    try:
        estimate = snapshot.estimate
        interval = snapshot.interval
        if estimate == 0.0 or estimate != estimate:
            return float("nan")
        return abs(interval.high - interval.low) / (2.0 * abs(estimate))
    except ValueError:
        pass
    widest = float("nan")
    for name, err in snapshot.errors.items():
        values = snapshot.table.column(name)
        for i in range(len(err.lows)):
            center = float(values[i])
            if center == 0.0 or center != center:
                continue
            half = abs(float(err.highs[i]) - float(err.lows[i])) / 2.0
            rel = half / abs(center)
            if rel == rel and (widest != widest or rel > widest):
                widest = rel
    return widest


def _finite(value: float) -> Optional[float]:
    """JSON-safe float: non-finite becomes None (NDJSON convention)."""
    value = float(value)
    return value if math.isfinite(value) else None


class QueryTelemetry:
    """One query's convergence telemetry: stream + derived metrics."""

    def __init__(self, query_id: str, stream_depth: int = 256,
                 clock=time.monotonic):
        self.query_id = query_id
        self._clock = clock
        self.created_at = clock()
        self.stream = SnapshotStream(stream_depth)
        self.first_answer_s: Optional[float] = None
        #: ε -> wallclock seconds (since submission) when the relative
        #: CI half-width first reached ±ε.
        self.time_to: Dict[float, float] = {}
        self.last_rel_width = float("nan")
        self.snapshots = 0
        self.convergence_recorded = False

    def record_snapshot(self, snapshot: OnlineSnapshot) -> dict:
        """Fold one snapshot into the stream; returns the record."""
        now = self._clock() - self.created_at
        self.snapshots += 1
        if self.first_answer_s is None:
            self.first_answer_s = now
        rel_width = relative_half_width(snapshot)
        self.last_rel_width = rel_width
        if rel_width == rel_width:
            for eps in EPSILONS:
                if rel_width <= eps and eps not in self.time_to:
                    self.time_to[eps] = now
        try:
            estimate = _finite(snapshot.estimate)
            interval = snapshot.interval
            ci_width = _finite(abs(interval.high - interval.low))
        except ValueError:
            estimate = None
            ci_width = None
        record = {
            "type": "convergence",
            "query_id": self.query_id,
            "batch": snapshot.batch_index,
            "of": snapshot.num_batches,
            "t_s": round(now, 9),
            "elapsed_s": round(snapshot.elapsed_s, 9),
            "estimate": estimate,
            "ci_width": ci_width,
            "rel_width": _finite(rel_width),
            "uncertain": snapshot.total_uncertain,
            "rows_processed": snapshot.total_rows_processed,
        }
        self.stream.publish(record)
        return record

    def summary(self, state: str, batches_done: int) -> dict:
        return {
            "type": "summary",
            "query_id": self.query_id,
            "state": state,
            "batches_done": batches_done,
            "snapshots": self.snapshots,
            "first_answer_s": (
                None if self.first_answer_s is None
                else round(self.first_answer_s, 9)
            ),
            "time_to": {
                f"{eps:g}": round(seconds, 9)
                for eps, seconds in sorted(self.time_to.items(),
                                           reverse=True)
            },
            "final_rel_width": _finite(self.last_rel_width),
            "total_s": round(self._clock() - self.created_at, 9),
        }

    def finish(self, state: str, batches_done: int) -> None:
        self.stream.close(final=self.summary(state, batches_done))


class ServeTelemetry:
    """The scheduler-facing telemetry hub.

    All hooks are cheap (one histogram observe per event) and no-ops
    when disabled; none run inside controller code, so telemetry can
    never perturb query results — only record them.
    """

    def __init__(self, metrics: MetricsRegistry, enabled: bool = True,
                 stream_depth: int = 256, clock=time.monotonic):
        self.metrics = metrics
        self.enabled = enabled
        self.stream_depth = stream_depth
        self._clock = clock
        self.windows: Dict[str, WindowedHistogram] = {
            "first_answer_seconds": WindowedHistogram(clock=clock),
            "step_seconds": WindowedHistogram(clock=clock),
            "query_seconds": WindowedHistogram(clock=clock),
        }
        self._queries: Dict[str, QueryTelemetry] = {}

    # -- scheduler hooks -------------------------------------------------

    def on_submitted(self, run) -> None:
        if not self.enabled:
            return
        self._queries[run.id] = QueryTelemetry(
            run.id, stream_depth=self.stream_depth, clock=self._clock
        )

    def on_admitted(self, run) -> None:
        if not self.enabled:
            return
        wait_s = self._clock() - run.submitted_at
        self.metrics.histogram("serve.queue_wait_seconds").observe(wait_s)

    def on_snapshot(self, run, snapshot: OnlineSnapshot,
                    step_s: float) -> None:
        if not self.enabled:
            return
        telemetry = self._queries.get(run.id)
        if telemetry is None:
            return
        first = telemetry.first_answer_s is None
        telemetry.record_snapshot(snapshot)
        if first and telemetry.first_answer_s is not None:
            seconds = telemetry.first_answer_s
            self.metrics.histogram(
                "serve.first_answer_seconds"
            ).observe(seconds)
            self.windows["first_answer_seconds"].observe(seconds)
        reached = telemetry.time_to.get(min(EPSILONS))
        if reached is not None and not telemetry.convergence_recorded:
            telemetry.convergence_recorded = True
            self.metrics.histogram(
                "serve.convergence_seconds"
            ).observe(reached)
        self.metrics.histogram("serve.step_seconds").observe(step_s)
        self.windows["step_seconds"].observe(step_s)

    def on_finalized(self, run) -> None:
        if not self.enabled:
            return
        telemetry = self._queries.get(run.id)
        if telemetry is None:
            return
        telemetry.finish(run.state, run.batches_done)
        if run.started_at is not None and run.finished_at is not None:
            self.windows["query_seconds"].observe(
                run.finished_at - run.started_at
            )

    # -- reading ---------------------------------------------------------

    def get(self, qid: str) -> QueryTelemetry:
        telemetry = self._queries.get(qid)
        if telemetry is None:
            raise KeyError(f"no telemetry for query id {qid!r}")
        return telemetry

    def subscription(self, qid: str) -> Iterator[dict]:
        """Iterate a query's convergence records, replay then live."""
        return self.get(qid).stream.subscribe()

    def window_samples(self, now: Optional[float] = None
                       ) -> List[Tuple[str, Dict[str, str], float]]:
        """Labeled gauge samples for the sliding windows.

        One ``repro_window_<stream>`` family per value stream, labeled
        ``{window="10s|1m|5m", stat="rate|mean|p50|p95|p99"}``.
        Non-finite values (empty windows) are skipped.
        """
        samples: List[Tuple[str, Dict[str, str], float]] = []
        for stream, windowed in self.windows.items():
            name = f"window_{stream}"
            for label, snap in windowed.snapshots(now=now).items():
                stats = [
                    ("rate", snap.rate),
                    ("mean", snap.mean),
                    ("p50", snap.quantile(0.50)),
                    ("p95", snap.quantile(0.95)),
                    ("p99", snap.quantile(0.99)),
                ]
                for stat, value in stats:
                    if value == value and math.isfinite(value):
                        samples.append(
                            (name, {"window": label, "stat": stat}, value)
                        )
        return samples


# -- Prometheus text exposition (version 0.0.4) --------------------------

#: Content type ``GET /metrics`` answers with.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)

_TYPES = frozenset({"counter", "gauge", "histogram", "summary", "untyped"})


def _prom_name(name: str) -> str:
    """An internal metric name as a Prometheus family name."""
    return "repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def _prom_value(value: float) -> str:
    if value != value:
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def render_prometheus(
    snapshot: MetricsSnapshot,
    extra_samples: Optional[
        List[Tuple[str, Dict[str, str], float]]
    ] = None,
) -> str:
    """Render a metrics snapshot in Prometheus text exposition format.

    Counters become ``repro_<name>_total`` counter families; gauges map
    directly; histograms expose their log-bucket stores as cumulative
    ``_bucket{le="..."}`` series (with the mandatory ``+Inf`` bucket)
    plus ``_sum`` and ``_count``.  ``extra_samples`` are
    ``(family, labels, value)`` gauges (the sliding-window views).
    """
    lines: List[str] = []

    for name in sorted(snapshot.counters):
        family = _prom_name(name) + "_total"
        lines.append(f"# HELP {family} Cumulative count of {name}.")
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family} {_prom_value(snapshot.counters[name])}")

    for name in sorted(snapshot.gauges):
        family = _prom_name(name)
        lines.append(f"# HELP {family} Current value of {name}.")
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_prom_value(snapshot.gauges[name])}")

    extras: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for family, labels, value in (extra_samples or []):
        extras.setdefault(_prom_name(family), []).append((labels, value))
    for family in sorted(extras):
        lines.append(f"# HELP {family} Sliding-window statistic.")
        lines.append(f"# TYPE {family} gauge")
        for labels, value in extras[family]:
            rendered = ",".join(
                f'{k}="{_escape_label(str(v))}"'
                for k, v in sorted(labels.items())
            )
            lines.append(f"{family}{{{rendered}}} {_prom_value(value)}")

    for name in sorted(snapshot.histograms):
        hist = snapshot.histograms[name]
        family = _prom_name(name)
        lines.append(
            f"# HELP {family} Log-bucketed distribution of {name}."
        )
        lines.append(f"# TYPE {family} histogram")
        for edge, cum in hist.buckets.cumulative():
            if math.isinf(edge):
                continue  # folded into the +Inf bucket below
            lines.append(
                f'{family}_bucket{{le="{_prom_value(edge)}"}} {cum}'
            )
        lines.append(f'{family}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{family}_sum {_prom_value(hist.total)}")
        lines.append(f"{family}_count {hist.count}")

    return "\n".join(lines) + "\n"


class PrometheusFamily:
    """One parsed metric family: type, help and its samples."""

    __slots__ = ("name", "type", "help", "samples")

    def __init__(self, name: str, kind: Optional[str] = None,
                 help_text: Optional[str] = None):
        self.name = name
        self.type = kind
        self.help = help_text
        #: (sample name, labels, value) — sample name may carry a
        #: ``_bucket``/``_sum``/``_count`` suffix for histograms.
        self.samples: List[Tuple[str, Dict[str, str], float]] = []

    def histogram_quantile(self, q: float) -> float:
        """A quantile re-derived from the ``_bucket`` samples."""
        pairs = sorted(
            (float(labels["le"].replace("+Inf", "inf")), value)
            for name, labels, value in self.samples
            if name.endswith("_bucket") and "le" in labels
        )
        return quantile_from_cumulative(pairs, q)


def _parse_value(text: str) -> float:
    lowered = text.lower()
    if lowered in ("+inf", "inf"):
        return math.inf
    if lowered == "-inf":
        return -math.inf
    if lowered == "nan":
        return math.nan
    return float(text)  # raises ValueError on malformed numbers


def parse_prometheus(text: str) -> Dict[str, PrometheusFamily]:
    """Strictly parse Prometheus text exposition format.

    Raises ``ValueError`` on any malformed line: bad metric/label
    names, unparsable values, unknown TYPE keywords, or samples whose
    name does not belong to their most recently declared family.  The
    format tests assert ``/metrics`` output round-trips through this.
    """
    families: Dict[str, PrometheusFamily] = {}

    def family_for(sample_name: str) -> PrometheusFamily:
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[:-len(suffix)] \
                if sample_name.endswith(suffix) else None
            if base and base in families \
                    and families[base].type == "histogram":
                return families[base]
        if sample_name not in families:
            families[sample_name] = PrometheusFamily(sample_name,
                                                     kind="untyped")
        return families[sample_name]

    for raw in text.splitlines():
        line = raw.rstrip()
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue  # plain comment: legal, ignored
            keyword, name = parts[1], parts[2]
            if not _NAME_RE.match(name):
                raise ValueError(f"invalid metric name in: {line!r}")
            family = families.get(name)
            if family is None:
                family = families[name] = PrometheusFamily(name)
            if keyword == "TYPE":
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in _TYPES:
                    raise ValueError(f"unknown TYPE {kind!r} in: {line!r}")
                if family.samples:
                    raise ValueError(
                        f"TYPE after samples for {name!r}"
                    )
                family.type = kind
            else:
                family.help = parts[3] if len(parts) > 3 else ""
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"malformed sample line: {line!r}")
        sample_name = match.group("name")
        labels: Dict[str, str] = {}
        label_text = match.group("labels")
        if label_text:
            consumed = 0
            for pair in _LABEL_RE.finditer(label_text):
                if not _LABEL_NAME_RE.match(pair.group("name")):
                    raise ValueError(f"invalid label in: {line!r}")
                labels[pair.group("name")] = (
                    pair.group("value").replace(r'\"', '"')
                    .replace(r"\n", "\n").replace(r"\\", "\\")
                )
                consumed += len(pair.group(0))
            leftovers = re.sub(r"[,\s]", "", label_text)
            rebuilt = re.sub(
                r"[,\s]", "",
                "".join(m.group(0)
                        for m in _LABEL_RE.finditer(label_text)),
            )
            if leftovers != rebuilt:
                raise ValueError(f"malformed labels in: {line!r}")
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            raise ValueError(f"malformed value in: {line!r}")
        family_for(sample_name).samples.append(
            (sample_name, labels, value)
        )
    return families
