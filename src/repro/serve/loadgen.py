"""Seeded load generation against a running G-OLA server.

The serving claims this repo makes — p50/p95/p99 first-answer latency,
time-to-±ε convergence, sustained throughput — need a workload that is
*reproducible* (same seed → same arrival process, query mix, think
times and abandonment decisions) yet realistic: Poisson arrivals, a
weighted mix of the paper's workload queries, impatient clients.

:class:`LoadGenerator` precomputes the whole schedule from one
``random.Random(seed)`` before any I/O, then drives N concurrent HTTP
clients (stdlib only) against a server, measuring client-observed
latencies off each query's NDJSON snapshot stream.  Two modes:

* **open loop** (default): arrivals fire at their scheduled Poisson
  times regardless of in-flight work — the honest way to measure tail
  latency under a target rate (no coordinated omission);
* **closed loop**: each client submits, streams to completion, thinks,
  repeats — the classic interactive-analyst model.

``benchmarks/bench_serve.py`` builds on this for ``BENCH_serve.json``;
``python -m repro loadgen`` exposes it directly.
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults import RetryPolicy
from ..workloads import SBI_QUERY

#: (name, sql, weight) over the tables ``repro serve`` registers.
DEFAULT_MIX: Tuple[Tuple[str, str, float], ...] = (
    ("sbi", SBI_QUERY, 3.0),
    ("avg_play", "SELECT AVG(play_time) FROM sessions", 3.0),
    ("avg_buffer", "SELECT AVG(buffer_time) FROM conviva", 2.0),
)


@dataclass(frozen=True)
class LoadSpec:
    """One reproducible load scenario.

    Attributes:
        rate_qps: Mean Poisson arrival rate (open loop).
        clients: Concurrent client threads.
        queries: Total queries to submit.
        seed: Master seed for arrivals/mix/think/abandonment.
        open_loop: Fire at scheduled times (True) or closed loop with
            think times (False).
        think_s: Mean exponential think time between a closed-loop
            client's queries.
        abandon_prob: Probability a client abandons (cancels) its query
            once it has a first answer and ``abandon_after_s`` passed.
        abandon_after_s: Patience before an abandoning client cancels.
        target_rel_width: Client-observed convergence target ε: the
            first snapshot with CI half-width ≤ ε·|estimate| marks the
            query's convergence latency.
        num_batches: Per-query ``num_batches`` override (0 = server
            default).
        timeout_s: Per-request HTTP timeout.
        max_resubmits: How many times a rejected submission (429/503
            carrying ``Retry-After``) is resubmitted after honoring the
            server's hint; 0 gives up immediately (the old behavior).
        retry_after_cap_s: Upper bound on one honored ``Retry-After``
            wait — a load generator should not sleep through its own
            measurement window on a server that asks for minutes.
    """

    rate_qps: float = 4.0
    clients: int = 4
    queries: int = 24
    seed: int = 2015
    open_loop: bool = True
    think_s: float = 0.1
    abandon_prob: float = 0.0
    abandon_after_s: float = 2.0
    target_rel_width: float = 0.01
    num_batches: int = 0
    timeout_s: float = 120.0
    max_resubmits: int = 2
    retry_after_cap_s: float = 10.0
    mix: Tuple[Tuple[str, str, float], ...] = DEFAULT_MIX

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise ValueError("rate_qps must be > 0")
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.queries < 1:
            raise ValueError("queries must be >= 1")
        if not self.mix:
            raise ValueError("mix must not be empty")


@dataclass
class _Arrival:
    """One precomputed query submission."""

    index: int
    at_s: float
    name: str
    sql: str
    think_s: float
    abandons: bool


@dataclass
class _Outcome:
    """Client-observed measurements for one submission."""

    index: int
    name: str
    ok: bool = False
    rejected: bool = False
    resubmits: int = 0
    abandoned: bool = False
    error: Optional[str] = None
    state: Optional[str] = None
    snapshots: int = 0
    first_answer_s: Optional[float] = None
    convergence_s: Optional[float] = None
    total_s: float = 0.0
    lateness_s: float = 0.0


def _retry_after_s(exc: "urllib.error.HTTPError") -> Optional[float]:
    """The response's ``Retry-After`` in seconds, if parseable.

    Only the delta-seconds form is supported (what this server sends);
    an HTTP-date value is ignored rather than mis-slept.
    """
    value = exc.headers.get("Retry-After") if exc.headers else None
    if value is None:
        return None
    try:
        seconds = float(value)
    except ValueError:
        return None
    return seconds if seconds >= 0 else None


def _percentiles(values: Sequence[float]) -> Optional[Dict[str, float]]:
    if not values:
        return None
    ordered = sorted(values)

    def pick(q: float) -> float:
        return ordered[min(int(q * (len(ordered) - 1) + 0.5),
                           len(ordered) - 1)]

    return {
        "n": len(ordered),
        "mean": sum(ordered) / len(ordered),
        "p50": pick(0.50),
        "p95": pick(0.95),
        "p99": pick(0.99),
        "max": ordered[-1],
    }


class LoadGenerator:
    """Drives one :class:`LoadSpec` against a server base URL."""

    def __init__(self, spec: LoadSpec):
        self.spec = spec

    def schedule(self) -> List[_Arrival]:
        """The deterministic submission schedule for this spec's seed."""
        spec = self.spec
        rng = random.Random(spec.seed)
        names = [name for name, _, _ in spec.mix]
        sqls = {name: sql for name, sql, _ in spec.mix}
        weights = [weight for _, _, weight in spec.mix]
        arrivals: List[_Arrival] = []
        at = 0.0
        for index in range(spec.queries):
            at += rng.expovariate(spec.rate_qps)
            name = rng.choices(names, weights=weights, k=1)[0]
            arrivals.append(_Arrival(
                index=index,
                at_s=at,
                name=name,
                sql=sqls[name],
                think_s=rng.expovariate(1.0 / spec.think_s)
                if spec.think_s > 0 else 0.0,
                abandons=rng.random() < spec.abandon_prob,
            ))
        return arrivals

    # -- execution -------------------------------------------------------

    def run(self, base_url: str) -> dict:
        """Execute the schedule; returns the aggregated report dict."""
        spec = self.spec
        arrivals = self.schedule()
        outcomes: List[_Outcome] = []
        lock = threading.Lock()
        cursor = [0]
        started = time.perf_counter()

        def next_arrival() -> Optional[_Arrival]:
            with lock:
                if cursor[0] >= len(arrivals):
                    return None
                arrival = arrivals[cursor[0]]
                cursor[0] += 1
                return arrival

        def worker() -> None:
            while True:
                arrival = next_arrival()
                if arrival is None:
                    return
                if spec.open_loop:
                    delay = arrival.at_s - (time.perf_counter() - started)
                    if delay > 0:
                        time.sleep(delay)
                outcome = self._execute(base_url, arrival, started)
                with lock:
                    outcomes.append(outcome)
                if not spec.open_loop and arrival.think_s > 0:
                    time.sleep(arrival.think_s)

        threads = [
            threading.Thread(target=worker, name=f"loadgen-{i}",
                             daemon=True)
            for i in range(spec.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_s = time.perf_counter() - started
        return self._report(outcomes, wall_s)

    def _execute(self, base_url: str, arrival: _Arrival,
                 started: float) -> _Outcome:
        spec = self.spec
        outcome = _Outcome(index=arrival.index, name=arrival.name)
        if spec.open_loop:
            outcome.lateness_s = max(
                0.0, (time.perf_counter() - started) - arrival.at_s
            )
        body: dict = {"sql": arrival.sql}
        if spec.num_batches > 0:
            body["config"] = {"num_batches": spec.num_batches}
        data = json.dumps(body).encode("utf-8")
        # A backpressure rejection that names its price (Retry-After)
        # is honored: wait what the server asked (capped) plus seeded
        # full jitter so retrying clients don't stampede back together,
        # then resubmit — up to the budget.
        policy = RetryPolicy()
        jitter = policy.jitter_rng(spec.seed, f"loadgen:{arrival.index}")
        t0 = time.perf_counter()
        while True:
            request = urllib.request.Request(
                base_url + "/query", method="POST", data=data,
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=spec.timeout_s
                ) as resp:
                    submitted = json.loads(resp.read())
                break
            except urllib.error.HTTPError as exc:
                retry_after = _retry_after_s(exc)
                exc.close()
                if (exc.code in (429, 503) and retry_after is not None
                        and outcome.resubmits < spec.max_resubmits):
                    outcome.resubmits += 1
                    time.sleep(
                        min(retry_after, spec.retry_after_cap_s)
                        + policy.jittered_delay(outcome.resubmits - 1,
                                                jitter)
                    )
                    continue
                outcome.rejected = exc.code in (429, 503)
                outcome.error = f"HTTP {exc.code}"
                return outcome
            except OSError as exc:
                outcome.error = f"{type(exc).__name__}: {exc}"
                return outcome
        qid = submitted["id"]
        try:
            with urllib.request.urlopen(
                base_url + submitted["snapshots_url"],
                timeout=spec.timeout_s,
            ) as resp:
                for raw in resp:
                    line = raw.strip()
                    if not line:
                        continue
                    record = json.loads(line)
                    now = time.perf_counter() - t0
                    if record.get("type") == "snapshot":
                        outcome.snapshots += 1
                        if outcome.first_answer_s is None:
                            outcome.first_answer_s = now
                        if (outcome.convergence_s is None
                                and self._converged(record)):
                            outcome.convergence_s = now
                        if (arrival.abandons
                                and now >= spec.abandon_after_s
                                and outcome.first_answer_s is not None):
                            self._cancel(base_url, qid)
                            outcome.abandoned = True
                            break
                    elif record.get("type") == "end":
                        outcome.state = record.get("state")
        except OSError as exc:
            outcome.error = f"{type(exc).__name__}: {exc}"
            return outcome
        outcome.total_s = time.perf_counter() - t0
        outcome.ok = outcome.error is None
        return outcome

    def _converged(self, record: dict) -> bool:
        estimate = record.get("estimate")
        lo, hi = record.get("lo"), record.get("hi")
        if estimate in (None, 0) or lo is None or hi is None:
            return False
        rel = abs(hi - lo) / (2.0 * abs(estimate))
        return rel <= self.spec.target_rel_width

    def _resubmitted_ok(self, outcome: _Outcome) -> bool:
        return outcome.ok and outcome.resubmits > 0

    def _cancel(self, base_url: str, qid: str) -> None:
        request = urllib.request.Request(
            f"{base_url}/query/{qid}", method="DELETE"
        )
        try:
            with urllib.request.urlopen(request, timeout=10.0):
                pass
        except (urllib.error.HTTPError, OSError):
            pass  # already finished, or the server is going away

    # -- aggregation -----------------------------------------------------

    def _report(self, outcomes: List[_Outcome], wall_s: float) -> dict:
        outcomes = sorted(outcomes, key=lambda o: o.index)
        completed = [o for o in outcomes if o.ok and not o.abandoned]
        spec = self.spec
        per_query: Dict[str, Dict[str, int]] = {}
        for outcome in outcomes:
            bucket = per_query.setdefault(
                outcome.name, {"submitted": 0, "completed": 0}
            )
            bucket["submitted"] += 1
            if outcome.ok and not outcome.abandoned:
                bucket["completed"] += 1
        return {
            "spec": {
                "rate_qps": spec.rate_qps,
                "clients": spec.clients,
                "queries": spec.queries,
                "seed": spec.seed,
                "open_loop": spec.open_loop,
                "abandon_prob": spec.abandon_prob,
                "target_rel_width": spec.target_rel_width,
                "num_batches": spec.num_batches,
                "mix": [
                    {"name": name, "weight": weight}
                    for name, _, weight in spec.mix
                ],
            },
            "wall_s": round(wall_s, 6),
            "submitted": len(outcomes),
            "completed": len(completed),
            "rejected": sum(o.rejected for o in outcomes),
            "resubmits": sum(o.resubmits for o in outcomes),
            "recovered_by_resubmit": sum(
                1 for o in outcomes if self._resubmitted_ok(o)
            ),
            "abandoned": sum(o.abandoned for o in outcomes),
            "errors": sum(
                1 for o in outcomes if o.error and not o.rejected
            ),
            "throughput_qps": (
                round(len(completed) / wall_s, 6) if wall_s > 0 else 0.0
            ),
            "first_answer_s": _percentiles([
                o.first_answer_s for o in outcomes
                if o.first_answer_s is not None
            ]),
            "convergence_s": _percentiles([
                o.convergence_s for o in outcomes
                if o.convergence_s is not None
            ]),
            "reached_target": sum(
                o.convergence_s is not None for o in outcomes
            ),
            "lateness_s": _percentiles([
                o.lateness_s for o in outcomes if spec.open_loop
            ]),
            "per_query": per_query,
        }
