"""HTTP/JSON front end for the query scheduler (stdlib only).

Exposes a :class:`QueryScheduler` over a small REST surface so any HTTP
client can submit G-OLA queries and watch their estimates refine live:

* ``POST /query`` — submit; body ``{"sql": ..., "priority"?,
  "deadline_s"?, "target_rsd"?, "config"? : {field: value}, "faults"? :
  {field: value}}``; returns ``201`` with the query id and URLs.
* ``GET /query/<id>/snapshots`` — the progressive result as an NDJSON
  stream: one JSON snapshot record per mini-batch (replayed from the
  start, then live), terminated by one ``{"type": "end", ...}`` record.
* ``GET /query/<id>/status`` — current state/estimate summary.
* ``DELETE /query/<id>`` — cancel.
* ``GET /queries`` — every known query's status.
* ``GET /metrics`` — the shared metrics registry in Prometheus text
  exposition format (counters, gauges, log-bucket histograms, sliding
  10s/1m/5m window statistics).
* ``GET /metrics.json`` — the same registry as JSON (counters/gauges
  plus per-histogram summaries), for ad-hoc scripting.
* ``GET /queries/<id>/telemetry`` (alias ``/query/<id>/telemetry``) —
  the query's convergence telemetry as NDJSON: one CI-width-vs-wallclock
  record per snapshot, closed by a summary with time-to-±ε.
* ``GET /healthz`` — liveness plus scheduler stats (state ``serving``
  or ``draining``, uptime, query counts, cache stats).

Streaming uses HTTP/1.0 semantics (no ``Content-Length``, connection
close marks end-of-stream) so no chunked-encoding code is needed; each
connection runs on its own :class:`ThreadingHTTPServer` thread, and
backpressure from a slow client only ever drops that client's queued
records (see :class:`~repro.serve.stream.SnapshotStream`), never the
scheduler's progress.

Error mapping: bad SQL/parameters → 400, unknown id → 404, DELETE of an
already-terminal query → 409, admission refused → 429, draining /
injected ``serve.submit`` fault / snapshots of a quarantined (failed)
query → 503.  Backpressure responses (429 and the retryable 503s) carry
a ``Retry-After`` header derived from queue depth and drain state
(:meth:`QueryScheduler.retry_after_hint`); ``repro loadgen`` honors it.
"""

from __future__ import annotations

import dataclasses
import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ..config import FaultsConfig, GolaConfig, ServeConfig
from ..errors import (
    AdmissionError,
    BindError,
    InjectedFault,
    ParseError,
    PlanError,
    ReproError,
)
from .scheduler import FAILED, DrainingError, QueryScheduler
from .telemetry import PROMETHEUS_CONTENT_TYPE, render_prometheus

_CONFIG_FIELDS = {f.name: f.type for f in dataclasses.fields(GolaConfig)}
_FAULT_FIELDS = {f.name: f.type for f in dataclasses.fields(FaultsConfig)}


def _finite_or_none(value: float) -> Optional[float]:
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        return None
    return value


def _apply_overrides(config: GolaConfig, overrides: dict,
                     faults: Optional[dict]) -> GolaConfig:
    """A per-query GolaConfig from JSON overrides of simple fields."""
    changes = {}
    for name, value in (overrides or {}).items():
        if name not in _CONFIG_FIELDS or name in ("faults", "serve",
                                                  "parallel", "qa"):
            raise ValueError(f"unknown config field {name!r}")
        if not isinstance(value, (int, float, bool, str)):
            raise ValueError(f"config field {name!r} must be scalar")
        changes[name] = value
    if faults:
        fchanges = {}
        for name, value in faults.items():
            if name not in _FAULT_FIELDS:
                raise ValueError(f"unknown faults field {name!r}")
            if not isinstance(value, (int, float, bool)):
                raise ValueError(f"faults field {name!r} must be scalar")
            fchanges[name] = value
        changes["faults"] = dataclasses.replace(config.faults, **fchanges)
    if not changes:
        return config
    return dataclasses.replace(config, **changes)


class _Handler(BaseHTTPRequestHandler):
    """One request; ``self.server.scheduler`` is the shared scheduler."""

    server_version = "repro-gola/1.0"

    # -- plumbing --------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # HTTP access logging would drown the trace/metrics output

    def _send_json(self, code: int, payload: dict,
                   retry_after: Optional[int] = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, code: int, exc: Exception,
                         retry_after: Optional[int] = None) -> None:
        payload = {"error": type(exc).__name__, "message": str(exc)}
        if retry_after is not None:
            payload["retry_after_s"] = retry_after
        self._send_json(code, payload, retry_after=retry_after)

    def _fail(self, exc: Exception) -> None:
        # Backpressure responses (429/503) carry Retry-After so clients
        # can pace resubmission instead of hammering: derived from queue
        # depth when at capacity, from the drain window when draining.
        if isinstance(exc, (ParseError, BindError, PlanError, ValueError)):
            self._send_error_json(400, exc)
        elif isinstance(exc, KeyError):
            self._send_json(404, {"error": "NotFound",
                                  "message": str(exc).strip("'\"")})
        elif isinstance(exc, DrainingError):
            # Shutting down: retry only after the drain window, against
            # whatever replaces this process.
            self._send_error_json(
                503, exc,
                retry_after=self.server.scheduler.retry_after_hint(),
            )
        elif isinstance(exc, AdmissionError):
            self._send_error_json(
                429, exc,
                retry_after=self.server.scheduler.retry_after_hint(),
            )
        elif isinstance(exc, InjectedFault):
            self._send_error_json(
                503, exc,
                retry_after=self.server.scheduler.retry_after_hint(),
            )
        elif isinstance(exc, ReproError):
            self._send_error_json(500, exc)
        else:
            raise exc

    # -- routes ----------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        if self.path.rstrip("/") != "/query":
            self._send_json(404, {"error": "NotFound", "message": self.path})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            try:
                body = json.loads(self.rfile.read(length) or b"{}")
            except json.JSONDecodeError as exc:
                raise ValueError(f"invalid JSON body: {exc}")
            if not isinstance(body, dict) or not body.get("sql"):
                raise ValueError('body must be JSON with a "sql" field')
            scheduler = self.server.scheduler
            config = _apply_overrides(
                scheduler.session.config,
                body.get("config") or {}, body.get("faults"),
            )
            run = scheduler.submit(
                str(body["sql"]),
                config=config,
                priority=int(body.get("priority", 1)),
                deadline_s=body.get("deadline_s"),
                target_rsd=body.get("target_rsd"),
            )
        except Exception as exc:  # mapped to an HTTP status above
            self._fail(exc)
            return
        self._send_json(201, {
            "id": run.id,
            "state": run.state,
            "status_url": f"/query/{run.id}/status",
            "snapshots_url": f"/query/{run.id}/snapshots",
        })

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        scheduler = self.server.scheduler
        path = self.path.rstrip("/") or "/"
        try:
            if path == "/healthz":
                self._send_json(200, self._health_body(scheduler))
            elif path == "/queries":
                self._send_json(200, {"queries": scheduler.queries()})
            elif path == "/metrics":
                self._send_prometheus(scheduler)
            elif path == "/metrics.json":
                snap = scheduler.metrics_snapshot()
                self._send_json(200, {
                    "counters": dict(snap.counters),
                    "gauges": dict(snap.gauges),
                    "histograms": {
                        name: {
                            "count": h.count,
                            "mean": None if h.mean != h.mean else h.mean,
                            "p50": _finite_or_none(h.quantile(0.50)),
                            "p95": _finite_or_none(h.quantile(0.95)),
                            "p99": _finite_or_none(h.quantile(0.99)),
                        }
                        for name, h in snap.histograms.items()
                    },
                })
            elif path.startswith("/query/") and path.endswith("/status"):
                qid = path[len("/query/"):-len("/status")]
                self._send_json(200, scheduler.status(qid))
            elif path.startswith("/query/") and path.endswith("/snapshots"):
                qid = path[len("/query/"):-len("/snapshots")]
                run = scheduler.get(qid)  # KeyError -> 404
                if run.state == FAILED:
                    # A quarantined (crashed) query degrades to a 503 on
                    # *its* stream; the server and every other query's
                    # stream stay up.  No Retry-After — the failure is
                    # permanent for this query id.
                    self._send_json(503, {
                        "error": "QueryFailed",
                        "message": run.error or "query failed",
                        "id": run.id,
                        "state": run.state,
                    })
                else:
                    self._stream_ndjson(scheduler.subscribe(qid))
            elif path.startswith("/query/") and path.endswith("/telemetry"):
                qid = path[len("/query/"):-len("/telemetry")]
                self._stream_ndjson(scheduler.subscribe_telemetry(qid))
            elif (path.startswith("/queries/")
                    and path.endswith("/telemetry")):
                qid = path[len("/queries/"):-len("/telemetry")]
                self._stream_ndjson(scheduler.subscribe_telemetry(qid))
            else:
                self._send_json(404, {"error": "NotFound", "message": path})
        except Exception as exc:
            self._fail(exc)

    def _health_body(self, scheduler: QueryScheduler) -> dict:
        stats = scheduler.stats()
        body = {
            "ok": True,
            "state": "draining" if stats["draining"] else "serving",
            "scheduler": stats,
        }
        started = getattr(self.server, "started_at", None)
        if started is not None:
            body["uptime_s"] = round(time.monotonic() - started, 3)
        return body

    def _send_prometheus(self, scheduler: QueryScheduler) -> None:
        text = render_prometheus(
            scheduler.metrics_snapshot(),
            extra_samples=scheduler.telemetry.window_samples(),
        )
        body = text.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib casing
        path = self.path.rstrip("/")
        if not path.startswith("/query/"):
            self._send_json(404, {"error": "NotFound", "message": path})
            return
        qid = path[len("/query/"):]
        try:
            run = self.server.scheduler.get(qid)  # KeyError -> 404
            if run.is_terminal:
                # Cancelling a finished/cancelled query is a conflict,
                # not a server error — report it cleanly.
                self._send_json(409, {
                    "error": "AlreadyFinished",
                    "message": f"query {qid} is already {run.state}",
                    "state": run.state,
                })
                return
            status = self.server.scheduler.cancel(qid)
        except Exception as exc:
            self._fail(exc)
            return
        self._send_json(200, status)

    def _stream_ndjson(self, subscription) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            for record in subscription:
                line = json.dumps(record, sort_keys=True) + "\n"
                self.wfile.write(line.encode("utf-8"))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; the generator's finally unsubscribes
        finally:
            subscription.close()


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, scheduler: QueryScheduler):
        super().__init__(address, handler)
        self.scheduler = scheduler


class GolaServer:
    """The serving process: one scheduler behind a threaded HTTP server.

    ``port=0`` binds an ephemeral port (read it back from ``.port`` after
    :meth:`start` — how the tests and the smoke CI job avoid clashes).
    """

    def __init__(self, scheduler: QueryScheduler,
                 host: Optional[str] = None, port: Optional[int] = None):
        serve: ServeConfig = scheduler.serve
        self.scheduler = scheduler
        self.host = host if host is not None else serve.host
        self.port = port if port is not None else serve.port
        self._httpd: Optional[_Server] = None
        self._thread: Optional[threading.Thread] = None
        self.started_at: Optional[float] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "GolaServer":
        """Bind, start the scheduler loop and serve in the background."""
        if self._httpd is not None:
            return self
        self.scheduler.start()
        self._httpd = _Server((self.host, self.port), _Handler,
                              self.scheduler)
        self._httpd.started_at = time.monotonic()
        self.started_at = self._httpd.started_at
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-http", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self, ready=None) -> None:
        """Start and block until SIGTERM/SIGINT, then shut down
        gracefully: stop admissions, drain in-flight queries (up to
        ``serve.drain_timeout_s``), close streams, release pools.

        Signal handlers are installed only when running on the main
        thread (the CLI path) and restored on exit; elsewhere (tests,
        embedding) a plain KeyboardInterrupt still triggers the same
        graceful path.  ``ready`` (if given) is called once the server
        is listening *and* the handlers are installed — anything the
        caller announces from it (a "serving on ..." banner, a pid
        file) is therefore a safe signal to start sending SIGTERM.
        """
        self.start()
        stop = threading.Event()
        installed: dict = {}
        if threading.current_thread() is threading.main_thread():
            def _request_stop(signum, frame):
                stop.set()
            for signum in (signal.SIGTERM, signal.SIGINT):
                installed[signum] = signal.signal(signum, _request_stop)
        if ready is not None:
            ready()
        try:
            # A polled wait: Event.wait(None) can block signal delivery
            # on some platforms; short waits keep handlers responsive.
            while not stop.is_set():
                stop.wait(0.5)
        except KeyboardInterrupt:
            pass
        finally:
            for signum, previous in installed.items():
                signal.signal(signum, previous)
            self.shutdown(drain=True)

    def shutdown(self, drain: bool = False) -> None:
        """Stop accepting, end streams, cancel queries, release pools.

        With ``drain=True`` the scheduler first refuses new admissions
        and in-flight queries get ``serve.drain_timeout_s`` to finish
        refining — while the HTTP server stays up, so clients holding
        snapshot streams see them end cleanly — before anything is
        cancelled.
        """
        if drain and self._httpd is not None:
            self.scheduler.drain(
                timeout_s=self.scheduler.serve.drain_timeout_s
            )
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.scheduler.close()

    def __enter__(self) -> "GolaServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()
