"""The concurrent multi-query scheduler.

One :class:`QueryScheduler` turns a :class:`~repro.core.session.
GolaSession` into a multi-tenant service: it admits queries, builds one
:class:`~repro.core.controller.QueryController` per query, and drives
them *cooperatively* — a single scheduler thread interleaves mini-batch
:meth:`~repro.core.controller.QueryController.step` calls across all
running queries under a deficit round-robin policy, so every client sees
its estimate refine every few seconds even under heavy concurrency
(PF-OLA's shared-engine OLA, Wake/Deep-OLA's progressive serving).

Why cooperative, single-threaded stepping (plus the shared
``repro.parallel`` pool *inside* a step) rather than one thread per
query:

* **determinism** — each controller keeps its own RNG streams and block
  state, and its step sequence is exactly what a serial run would
  execute, so every query's snapshot stream is bit-identical to running
  it alone (the property the acceptance tests pin);
* **isolation** — a query that crashes mid-step (or hits an injected
  ``scheduler.step`` fault past its retry budget) is *quarantined*:
  finalized with its error and released, while every other query keeps
  refining;
* **control** — admission (slots, queue depth, memory budget),
  per-query deadlines, pause/resume and cancellation are all decided at
  step boundaries, where no partial batch state can be corrupted.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Dict, Iterator, List, Optional, Union

from ..config import GolaConfig, ServeConfig
from ..core.result import OnlineSnapshot
from ..core.session import GolaSession, OnlineQuery
from ..errors import AdmissionError, InjectedFault, ReproError
from ..faults import FaultInjector, RetryPolicy
from ..obs import MetricsRegistry, Tracer, tracer_from_config
from .cache import BatchScanCache, table_bytes
from .stream import SnapshotStream, encode_snapshot
from .telemetry import ServeTelemetry

#: Lifecycle states of a scheduled query.
QUEUED = "queued"
RUNNING = "running"
PAUSED = "paused"
DONE = "done"
CANCELLED = "cancelled"
FAILED = "failed"
EXPIRED = "expired"

#: States a query never leaves.
TERMINAL_STATES = frozenset({DONE, CANCELLED, FAILED, EXPIRED})


class DrainingError(AdmissionError):
    """Submission refused because the scheduler is draining for shutdown.

    A subclass of :class:`AdmissionError` so existing 429 handling still
    applies, but the HTTP layer maps it to 503 (the server is going
    away — retrying against this process is pointless)."""


class ScheduledQuery:
    """One admitted query's lifecycle, stream and bookkeeping.

    Handles are returned by :meth:`QueryScheduler.submit`; all mutation
    happens on the scheduler, treat the fields as read-only.
    """

    def __init__(self, qid: str, online: OnlineQuery, sql: str,
                 config: GolaConfig, priority: int, deadline_s: float,
                 target_rsd: Optional[float], stream: SnapshotStream):
        self.id = qid
        self.online = online
        self.sql = sql
        self.config = config
        self.priority = priority
        self.deadline_s = deadline_s
        self.target_rsd = target_rsd
        self.stream = stream
        self.state = QUEUED
        self.controller = None
        self.retry = RetryPolicy.from_faults(config.faults)
        self.deficit = 0.0
        self.cancel_requested = False
        self.error: Optional[str] = None
        self.reason: Optional[str] = None
        self.batches_done = 0
        self.snapshots: List[OnlineSnapshot] = []
        self.last_snapshot: Optional[OnlineSnapshot] = None
        self.est_bytes = 0
        self.submitted_ts = time.time()
        self.submitted_at = time.monotonic()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.done_event = threading.Event()

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def elapsed_s(self) -> float:
        if self.started_at is None:
            return 0.0
        end = self.finished_at
        if end is None:
            end = time.monotonic()
        return end - self.started_at

    def status(self) -> dict:
        """A JSON-ready status summary (the ``/query/<id>/status`` body)."""
        info = {
            "id": self.id,
            "sql": self.sql,
            "state": self.state,
            "priority": self.priority,
            "deadline_s": self.deadline_s or None,
            "target_rsd": self.target_rsd,
            "batches_done": self.batches_done,
            "num_batches": self.config.num_batches,
            "snapshots": len(self.snapshots),
            "dropped_snapshots": self.stream.dropped,
            "degraded": bool(
                self.last_snapshot is not None and self.last_snapshot.degraded
            ),
            "error": self.error,
            "reason": self.reason,
            "submitted_ts": self.submitted_ts,
            "elapsed_s": round(self.elapsed_s, 6),
        }
        last = self.last_snapshot
        if last is not None:
            try:
                rsd = last.relative_stdev
                info["estimate"] = last.estimate
                info["rel_stdev"] = None if rsd != rsd else rsd
            except ValueError:
                info["result_rows"] = last.table.num_rows
        return info

    def _end_record(self) -> dict:
        return {
            "type": "end",
            "query_id": self.id,
            "state": self.state,
            "batches_done": self.batches_done,
            "of": self.config.num_batches,
            "error": self.error,
            "reason": self.reason,
        }


class QueryScheduler:
    """Admits, prioritizes and cooperatively steps concurrent queries.

    All queries share one :class:`~repro.parallel.ParallelExecutor`
    worker pool, one :class:`BatchScanCache` (same-table queries reuse
    mini-batch partitions) and one tracer/metrics registry; each keeps
    its own controller, RNG streams and snapshot stream, which is what
    makes concurrent output bit-identical to serial runs.
    """

    def __init__(self, session: GolaSession,
                 serve: Optional[ServeConfig] = None,
                 tracer: Optional[Tracer] = None):
        from ..parallel import ParallelExecutor

        self.session = session
        self.serve = serve if serve is not None else session.config.serve
        if tracer is not None:
            self.tracer = tracer
        elif session.tracer is not None:
            self.tracer = session.tracer
        else:
            built = tracer_from_config(session.config)
            if not built.metrics.enabled:
                # Scheduling metrics are always on; never mutate the
                # config-built tracer (it may be the shared NULL_TRACER).
                built = Tracer(metrics=MetricsRegistry(enabled=True))
            self.tracer = built
        self.parallel = ParallelExecutor.from_config(
            session.config, tracer=self.tracer
        )
        self.scan_cache = (
            BatchScanCache(self.serve.scan_cache_entries,
                           metrics=self.tracer.metrics)
            if self.serve.scan_cache else None
        )
        #: Draws ``serve.submit`` faults; per-query ``scheduler.step``
        #: faults come from each query's own injector stream.
        self.injector = FaultInjector.from_config(
            session.config, tracer=self.tracer
        )
        self._submit_retry = RetryPolicy.from_faults(session.config.faults)
        #: Serve-layer telemetry hub (SLO histograms, sliding windows,
        #: per-query convergence streams); purely observational.
        self.telemetry = ServeTelemetry(
            self.tracer.metrics, enabled=self.serve.telemetry,
            stream_depth=self.serve.snapshot_queue,
        )
        self._cond = threading.Condition()
        self._queries: Dict[str, ScheduledQuery] = {}
        self._queue: "deque[ScheduledQuery]" = deque()
        self._running: List[ScheduledQuery] = []
        self._seq = itertools.count(1)
        self._thread: Optional[threading.Thread] = None
        self._shutdown = False
        self._draining = False
        self.completed_order: List[str] = []

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "QueryScheduler":
        """Launch the scheduler loop thread (idempotent)."""
        with self._cond:
            if self._shutdown:
                raise AdmissionError("scheduler is shut down")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._loop, name="repro-scheduler", daemon=True
                )
                self._thread.start()
        return self

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Stop admitting new queries; in-flight queries keep refining."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    def drain(self, timeout_s: float = 10.0) -> bool:
        """Graceful shutdown: refuse admissions, let in-flight queries
        finish for up to ``timeout_s``, then cancel the stragglers.

        Returns True when every query finished on its own (nothing was
        cancelled).  The scheduler stays usable for status/stream reads;
        call :meth:`close` afterwards to release pools.
        """
        self.begin_drain()
        clean = self.wait(timeout=timeout_s if timeout_s > 0 else 0.001)
        if not clean:
            for run in list(self._queries.values()):
                if not run.is_terminal:
                    self.cancel(run.id)
            self.wait(timeout=5.0)
        return clean

    def stats(self) -> dict:
        """Live scheduler counts (the ``/healthz`` body's core)."""
        with self._cond:
            by_state: Dict[str, int] = {}
            for run in self._queries.values():
                by_state[run.state] = by_state.get(run.state, 0) + 1
            info = {
                "queries": len(self._queries),
                "running": len(self._running),
                "queued": len(self._queue),
                "completed": len(self.completed_order),
                "by_state": by_state,
                "draining": self._draining,
                "shutdown": self._shutdown,
            }
        if self.scan_cache is not None:
            info["scan_cache"] = self.scan_cache.stats
        return info

    def retry_after_hint(self) -> int:
        """Whole seconds a refused client should wait before retrying.

        Sent as the ``Retry-After`` header on 429/503.  Draining (or
        shut down): the full drain window — this process is going away,
        and after that long either a replacement is up or there is
        nothing to retry against.  At capacity: one second per *wave*
        of queued queries ahead of a new arrival (``queue_depth /
        max_concurrent`` rounded up), clamped to [1, 30] — coarse on
        purpose; its job is spreading thundering herds, not predicting
        service time.
        """
        with self._cond:
            if self._draining or self._shutdown:
                return max(1, int(self.serve.drain_timeout_s + 0.999))
            queued = len(self._queue)
        waves = 1 + queued // max(1, self.serve.max_concurrent)
        return min(30, max(1, waves))

    def close(self) -> None:
        """Stop the loop, cancel whatever is still live, release pools."""
        with self._cond:
            if self._shutdown:
                return
            self._shutdown = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None
        # The loop is dead; finalizing on this thread is race-free now.
        with self._cond:
            for run in list(self._queue) + list(self._running):
                if not run.is_terminal:
                    self._finalize_locked(run, CANCELLED,
                                          reason="scheduler shutdown")
            self._queue.clear()
        self.parallel.close()
        if self.scan_cache is not None:
            self.scan_cache.invalidate()

    def __enter__(self) -> "QueryScheduler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission and control -----------------------------------------

    def submit(self, sql: Union[str, OnlineQuery], *,
               config: Optional[GolaConfig] = None,
               priority: int = 1,
               deadline_s: Optional[float] = None,
               target_rsd: Optional[float] = None) -> ScheduledQuery:
        """Admit one query for concurrent online execution.

        Args:
            sql: SQL text (parsed/bound against the session catalog) or
                an already-bound :class:`OnlineQuery`.
            config: Per-query run configuration; defaults to the
                session's.  Its ``faults`` govern this query's injected
                ``scheduler.step`` crashes.
            priority: Deficit round-robin weight: a priority-2 query is
                granted twice the step credits per scheduling cycle of a
                priority-1 query (capped by ``max_steps_per_turn``).
            deadline_s: Seconds after its first step at which the query
                is finalized with its latest snapshot (state
                ``expired``); None uses ``serve.default_deadline_s``.
            target_rsd: Stop refining (state ``done``, reason
                ``target``) once the scalar answer's relative stdev
                reaches this — the OLA accuracy contract, served.

        Raises:
            AdmissionError: queue full or scheduler shut down.
            InjectedFault: a ``serve.submit`` fault exhausted retries.
            ParseError/BindError/...: the SQL is invalid.
        """
        if priority < 1:
            raise ValueError("priority must be >= 1")
        metrics = self.tracer.metrics
        failures = self.injector.submit_failures("serve.submit")
        if failures:
            if self._submit_retry.gives_up_after(failures):
                if metrics.enabled:
                    metrics.counter("serve.submit_failures").inc()
                raise InjectedFault(
                    "serve.submit",
                    f"submission failed after {failures} attempts",
                )
            if metrics.enabled:
                metrics.counter("serve.submit_retries").inc(failures)
        online = (
            sql if isinstance(sql, OnlineQuery) else self.session.sql(sql)
        )
        run_config = config if config is not None else self.session.config
        if deadline_s is None:
            deadline_s = self.serve.default_deadline_s
        with self._cond:
            if self._shutdown:
                raise AdmissionError("scheduler is shut down")
            if self._draining:
                if metrics.enabled:
                    metrics.counter("scheduler.rejected").inc()
                raise DrainingError(
                    "scheduler is draining; not admitting new queries"
                )
            active = len(self._running)
            if (active >= self.serve.max_concurrent
                    and len(self._queue) >= self.serve.queue_depth):
                if metrics.enabled:
                    metrics.counter("scheduler.rejected").inc()
                raise AdmissionError(
                    f"at capacity: {active} running, "
                    f"{len(self._queue)} queued "
                    f"(queue_depth={self.serve.queue_depth})"
                )
            qid = f"q{next(self._seq)}"
            run = ScheduledQuery(
                qid, online, online.sql or online.plan_description,
                run_config, priority, float(deadline_s or 0.0),
                target_rsd, SnapshotStream(self.serve.snapshot_queue),
            )
            self._queries[qid] = run
            self._queue.append(run)
            self.telemetry.on_submitted(run)
            if metrics.enabled:
                metrics.counter("serve.submitted").inc()
                metrics.gauge("scheduler.queue_depth").set(len(self._queue))
            if self.tracer.enabled:
                self.tracer.event("serve.submitted", query=qid,
                                  priority=priority)
            self._cond.notify_all()
        self.start()
        return run

    def get(self, qid: str) -> ScheduledQuery:
        run = self._queries.get(qid)
        if run is None:
            raise KeyError(f"unknown query id {qid!r}")
        return run

    def status(self, qid: str) -> dict:
        return self.get(qid).status()

    def queries(self) -> List[dict]:
        """Status summaries of every known query, in submission order."""
        return [run.status() for run in self._queries.values()]

    def subscribe(self, qid: str) -> Iterator[dict]:
        """Iterate a query's snapshot records from the start, then live."""
        return self.get(qid).stream.subscribe()

    def subscribe_telemetry(self, qid: str) -> Iterator[dict]:
        """Iterate a query's convergence-telemetry records.

        KeyError for unknown ids, and also when telemetry is disabled
        (no convergence stream exists for any query then).
        """
        self.get(qid)  # unknown id -> KeyError with the usual message
        return self.telemetry.subscription(qid)

    def cancel(self, qid: str, wait_s: float = 5.0) -> dict:
        """Request cancellation; returns the (usually final) status.

        Queued queries are finalized immediately; a running query is
        finalized by the scheduler thread at its next step boundary
        (waited for up to ``wait_s``).
        """
        run = self.get(qid)
        with self._cond:
            if run.is_terminal:
                return run.status()
            run.cancel_requested = True
            if run.controller is not None:
                run.controller.stop()
            if run.state == QUEUED:
                self._queue.remove(run)
                self._finalize_locked(run, CANCELLED)
                return run.status()
            self._cond.notify_all()
        run.done_event.wait(timeout=wait_s)
        return run.status()

    def pause(self, qid: str) -> dict:
        """Stop granting steps to a query (its deadline keeps ticking)."""
        run = self.get(qid)
        with self._cond:
            if run.state == RUNNING:
                run.state = PAUSED
                if self.tracer.metrics.enabled:
                    self.tracer.metrics.counter("scheduler.paused").inc()
        return run.status()

    def resume(self, qid: str) -> dict:
        run = self.get(qid)
        with self._cond:
            if run.state == PAUSED:
                run.state = RUNNING
                self._cond.notify_all()
        return run.status()

    def wait(self, qid: Optional[str] = None,
             timeout: Optional[float] = None) -> bool:
        """Block until one query (or all known queries) is terminal."""
        if qid is not None:
            return self.get(qid).done_event.wait(timeout)
        deadline = None if timeout is None else time.monotonic() + timeout
        for run in list(self._queries.values()):
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            if not run.done_event.wait(remaining):
                return False
        return True

    def metrics_snapshot(self):
        return self.tracer.metrics.snapshot()

    # -- the scheduling loop ---------------------------------------------

    def _loop(self) -> None:
        while True:
            with self._cond:
                if self._shutdown:
                    return
                self._promote_locked()
                targets = [
                    run for run in self._running
                    if run.state == RUNNING or run.cancel_requested
                    or self._deadline_exceeded(run)
                ]
                if not targets:
                    self._cond.wait(timeout=self._wait_timeout_locked())
                    continue
            for run in targets:
                self._visit(run)

    def _deadline_exceeded(self, run: ScheduledQuery) -> bool:
        return (
            run.deadline_s > 0.0 and run.started_at is not None
            and time.monotonic() - run.started_at > run.deadline_s
        )

    def _wait_timeout_locked(self) -> Optional[float]:
        """Sleep until notified, or until the nearest deadline can fire."""
        soonest = None
        now = time.monotonic()
        for run in self._running:
            if run.deadline_s > 0.0 and run.started_at is not None:
                remaining = run.started_at + run.deadline_s - now
                if soonest is None or remaining < soonest:
                    soonest = remaining
        if soonest is None:
            return None
        return max(0.01, soonest)

    def _promote_locked(self) -> None:
        """Move queued queries into run slots, FIFO, budget permitting."""
        serve = self.serve
        metrics = self.tracer.metrics
        while self._queue and len(self._running) < serve.max_concurrent:
            run = self._queue[0]
            if run.cancel_requested:
                self._queue.popleft()
                self._finalize_locked(run, CANCELLED)
                continue
            if run.controller is None:
                try:
                    run.controller = self.session._make_controller(
                        run.online.query, run.config,
                        parallel=self.parallel, scan_cache=self.scan_cache,
                        tracer=self.tracer,
                    )
                except ReproError as exc:
                    self._queue.popleft()
                    run.error = str(exc)
                    self._finalize_locked(run, FAILED)
                    continue
                streamed = run.controller.streamed_table
                run.est_bytes = table_bytes(
                    run.controller.tables[streamed]
                ) * (2 if run.config.retain_batches else 1)
            if serve.memory_budget_mb > 0.0 and self._running:
                used = sum(r.est_bytes for r in self._running)
                budget = serve.memory_budget_mb * 1024 * 1024
                if used + run.est_bytes > budget:
                    # Head-of-line blocking is deliberate: FIFO admission
                    # under a memory budget, no starvation of big queries.
                    break
            self._queue.popleft()
            try:
                run.controller.begin()
            except ReproError as exc:
                run.error = str(exc)
                self._finalize_locked(run, FAILED)
                continue
            run.state = RUNNING
            run.started_at = time.monotonic()
            self._running.append(run)
            self.telemetry.on_admitted(run)
            if metrics.enabled:
                metrics.counter("scheduler.admitted").inc()
                metrics.gauge("scheduler.running").set(len(self._running))
                metrics.gauge("scheduler.queue_depth").set(len(self._queue))
            if self.tracer.enabled:
                self.tracer.event("scheduler.admitted", query=run.id)

    def _visit(self, run: ScheduledQuery) -> None:
        """Grant one scheduling turn: up to ``deficit`` mini-batch steps."""
        run.deficit = min(
            run.deficit + run.priority, float(self.serve.max_steps_per_turn)
        )
        steps = int(run.deficit)
        for _ in range(steps):
            with self._cond:
                if run.is_terminal:
                    return
                if run.cancel_requested:
                    self._finalize_locked(run, CANCELLED)
                    return
                if self._deadline_exceeded(run):
                    self._finalize_locked(run, EXPIRED, reason="deadline")
                    return
                if run.state != RUNNING:
                    return  # paused since this turn was granted
            if not self._step(run):
                return
            run.deficit -= 1.0

    def _step(self, run: ScheduledQuery) -> bool:
        """Execute one mini-batch step; False ends this query's turn."""
        tracer = self.tracer
        metrics = tracer.metrics
        controller = run.controller
        failures = run.controller.injector.step_failures("scheduler.step")
        if failures:
            if run.retry.gives_up_after(failures):
                self._quarantine(run, InjectedFault(
                    "scheduler.step",
                    f"step crashed {failures} times "
                    f"(retry budget {run.retry.max_retries})",
                ))
                return False
            if metrics.enabled:
                metrics.counter("scheduler.step_retries").inc(failures)
            if tracer.enabled:
                tracer.event("fault.step_retry", query=run.id,
                             attempts=failures)
        step_started = time.perf_counter()
        try:
            with tracer.span("scheduler.step", query=run.id,
                             batch=run.batches_done + 1):
                snapshot = controller.step()
        except Exception as exc:  # a real crash: quarantine, don't spread
            self._quarantine(run, exc)
            return False
        step_s = time.perf_counter() - step_started
        if metrics.enabled:
            metrics.counter("scheduler.steps").inc()
        if snapshot is None:
            with self._cond:
                # controller.stop() during an in-flight step also lands
                # here; a requested cancel must not masquerade as done.
                self._finalize_locked(
                    run, CANCELLED if run.cancel_requested else DONE
                )
            return False
        run.batches_done = snapshot.batch_index
        run.snapshots.append(snapshot)
        run.last_snapshot = snapshot
        run.stream.publish(encode_snapshot(run.id, snapshot))
        self.telemetry.on_snapshot(run, snapshot, step_s)
        if metrics.enabled:
            metrics.counter("serve.snapshots").inc()
        reached_target = False
        if run.target_rsd is not None:
            try:
                rsd = snapshot.relative_stdev
                reached_target = rsd == rsd and rsd <= run.target_rsd
            except ValueError:
                reached_target = False
        if reached_target or controller.is_done:
            with self._cond:
                if run.cancel_requested:
                    self._finalize_locked(run, CANCELLED)
                else:
                    self._finalize_locked(
                        run, DONE,
                        reason="target" if reached_target else None,
                    )
            return False
        return True

    def _quarantine(self, run: ScheduledQuery, exc: Exception) -> None:
        """Isolate a crashed query; every other query keeps refining."""
        run.error = f"{type(exc).__name__}: {exc}"
        tracer = self.tracer
        if tracer.enabled:
            tracer.event("scheduler.quarantined", query=run.id,
                         error=run.error)
        if tracer.metrics.enabled:
            tracer.metrics.counter("scheduler.quarantined").inc()
        with self._cond:
            self._finalize_locked(run, FAILED)

    def _finalize_locked(self, run: ScheduledQuery, state: str,
                         reason: Optional[str] = None) -> None:
        """Move a query to a terminal state and release its memory."""
        if run.is_terminal:
            return
        run.state = state
        run.reason = reason
        run.finished_at = time.monotonic()
        if run in self._running:
            self._running.remove(run)
        if run.controller is not None:
            try:
                run.controller.release()
            except Exception:  # release must never take the loop down
                pass
        run.stream.close(final=run._end_record())
        self.completed_order.append(run.id)
        self.telemetry.on_finalized(run)
        metrics = self.tracer.metrics
        if metrics.enabled:
            metrics.counter(f"scheduler.{state}").inc()
            metrics.gauge("scheduler.running").set(len(self._running))
            metrics.gauge("scheduler.queue_depth").set(len(self._queue))
        if self.tracer.enabled:
            self.tracer.event("scheduler.finalized", query=run.id,
                              state=state, batches=run.batches_done)
        run.done_event.set()
        self._cond.notify_all()
