"""Snapshot streaming: JSON encoding plus per-query pub/sub queues.

Each served query owns one :class:`SnapshotStream`.  The scheduler
thread publishes one encoded record per mini-batch; subscribers (HTTP
handler threads, Python callers) each get their own bounded queue so a
slow consumer can never stall the scheduler — under backpressure the
*oldest undelivered* records are dropped for that subscriber only
(counted in ``dropped``), while the full history is kept on the stream
so replay-from-start subscriptions stay lossless and deterministic.

Record schema (one JSON object per NDJSON line):

``{"type": "snapshot", "query_id", "batch", "of", "fraction", "rows":
[{col: value, ...}, ...], "errors": {col: {"lo": [...], "hi": [...],
"rel_stdev": [...]}}, "estimate", "lo", "hi", "rel_stdev", "uncertain",
"degraded", "elapsed_s"}`` — the scalar convenience fields are present
only for single-cell answers; NaNs are encoded as null.  The stream ends
with one ``{"type": "end", "query_id", "state", ...}`` record.
"""

from __future__ import annotations

import math
import queue
import threading
from typing import Iterator, List, Optional

from ..core.result import OnlineSnapshot


def _json_safe(value):
    """Coerce numpy scalars and non-finite floats for strict JSON."""
    if hasattr(value, "item"):
        value = value.item()
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def encode_snapshot(query_id: str, snapshot: OnlineSnapshot) -> dict:
    """One progressive-result record (estimate ± CI) as a JSON dict."""
    table = snapshot.table
    rows = [
        {name: _json_safe(value) for name, value in row.items()}
        for row in table.to_pylist()
    ]
    errors = {
        name: {
            "lo": [_json_safe(v) for v in err.lows.tolist()],
            "hi": [_json_safe(v) for v in err.highs.tolist()],
            "rel_stdev": [_json_safe(v) for v in err.rel_stdev.tolist()],
        }
        for name, err in snapshot.errors.items()
    }
    record = {
        "type": "snapshot",
        "query_id": query_id,
        "batch": snapshot.batch_index,
        "of": snapshot.num_batches,
        "fraction": round(snapshot.fraction, 9),
        "rows": rows,
        "errors": errors,
        "uncertain": snapshot.total_uncertain,
        "rows_processed": snapshot.total_rows_processed,
        "rebuilds": list(snapshot.rebuilds),
        "degraded": snapshot.degraded,
        "confidence": snapshot.confidence,
        "elapsed_s": round(snapshot.elapsed_s, 9),
    }
    if snapshot.skipped_batches:
        record["skipped_batches"] = list(snapshot.skipped_batches)
        record["lost_rows"] = snapshot.lost_rows
    try:
        interval = snapshot.interval
        record["estimate"] = _json_safe(snapshot.estimate)
        record["lo"] = _json_safe(interval.low)
        record["hi"] = _json_safe(interval.high)
        record["rel_stdev"] = _json_safe(snapshot.relative_stdev)
    except ValueError:
        pass  # multi-row/multi-column answer: rows/errors carry it all
    return record


class SnapshotStream:
    """Replayable pub/sub channel for one query's snapshot records."""

    _DONE = object()

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._history: List[dict] = []
        self._subscribers: List["queue.Queue"] = []
        self._closed = False
        self.dropped = 0

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def history(self) -> List[dict]:
        """Every record published so far (snapshot copy)."""
        with self._lock:
            return list(self._history)

    def _offer(self, q: "queue.Queue", item) -> None:
        """Enqueue without ever blocking: drop the oldest on overflow."""
        while True:
            try:
                q.put_nowait(item)
                return
            except queue.Full:
                try:
                    dropped = q.get_nowait()
                    if dropped is not self._DONE:
                        self.dropped += 1
                except queue.Empty:
                    pass

    def publish(self, record: dict) -> None:
        """Append to history and fan out to every live subscriber."""
        with self._lock:
            if self._closed:
                raise RuntimeError("stream is closed")
            self._history.append(record)
            for q in self._subscribers:
                self._offer(q, record)

    def close(self, final: Optional[dict] = None) -> None:
        """End the stream, optionally appending one terminal record."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if final is not None:
                self._history.append(final)
                for q in self._subscribers:
                    self._offer(q, final)
            for q in self._subscribers:
                self._offer(q, self._DONE)

    def subscribe(self) -> Iterator[dict]:
        """Iterate records from the start, then live until the end.

        The backlog copy and the live-queue registration happen under
        one lock, so a subscriber sees every record exactly once, in
        publish order (minus any dropped under its own backpressure).
        """
        with self._lock:
            backlog = list(self._history)
            if self._closed:
                live = None
            else:
                live = queue.Queue(self.maxsize)
                self._subscribers.append(live)
        try:
            for record in backlog:
                yield record
            if live is None:
                return
            while True:
                record = live.get()
                if record is self._DONE:
                    return
                yield record
        finally:
            if live is not None:
                with self._lock:
                    if live in self._subscribers:
                        self._subscribers.remove(live)
