"""On-disk colstore partition files (one file per mini-batch).

Layout::

    GOLACOL1                      8-byte magic
    <64-byte-aligned segments>    column payloads, in footer order
    <footer JSON>                 schema, codecs, segment index, zones
    <uint64 LE footer length>
    GOLACOL1                      trailing magic

Every segment starts on a 64-byte boundary so a ``np.memmap`` view of
the file yields cache-line-aligned, dtype-safe zero-copy column arrays
for ``plain``-coded numeric columns.  Per-chunk zone maps (min/max,
null count, distinct estimate) are computed at encode time and stored
in the footer; readers expose them as a :class:`ZoneMapIndex` without
touching the column payloads.
"""

from __future__ import annotations

import json
import os
import struct
from typing import Dict, List, Optional

import numpy as np

from ...errors import StorageError
from ..table import Column, ColumnType, Schema, Table
from .codecs import decode_column, encode_column
from .prune import ColumnZones, ZoneMapIndex

MAGIC = b"GOLACOL1"
ALIGN = 64
FORMAT_VERSION = 1
_TRAILER = struct.Struct("<Q")

#: Default rows per zone-map chunk (also the pruning granularity).
DEFAULT_CHUNK_ROWS = 4096


def _json_scalar(value):
    """A JSON-safe python scalar for zone-map bounds."""
    if value is None:
        return None
    if isinstance(value, (np.bool_, bool)):
        return int(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def compute_zones(arr: np.ndarray, ctype: ColumnType,
                  chunk_rows: int) -> List[dict]:
    """Per-chunk zone maps for one column.

    ``lo``/``hi`` exclude NaN and are ``None`` for all-null chunks;
    ``nulls`` counts NaN rows; ``distinct`` is an exact per-chunk
    cardinality (cheap at ≤ ``chunk_rows`` values — an estimate in
    spirit, since chunks are tiny relative to the table).
    """
    zones: List[dict] = []
    n = len(arr)
    for start in range(0, max(n, 1), chunk_rows):
        chunk = arr[start:start + chunk_rows]
        if len(chunk) == 0:
            break
        if ctype == ColumnType.STRING:
            lo, hi = min(chunk), max(chunk)
            nulls = 0
            distinct = len(set(chunk))
        elif ctype == ColumnType.FLOAT64:
            nan = np.isnan(chunk)
            nulls = int(nan.sum())
            if nulls == len(chunk):
                lo = hi = None
            else:
                valid = chunk[~nan]
                lo, hi = valid.min(), valid.max()
            distinct = int(len(np.unique(chunk)))
        else:
            nulls = 0
            lo, hi = chunk.min(), chunk.max()
            distinct = int(len(np.unique(chunk)))
        zones.append({
            "lo": _json_scalar(lo), "hi": _json_scalar(hi),
            "nulls": nulls, "distinct": distinct,
        })
    return zones


def write_partition(path, table: Table, codec: str = "auto",
                    chunk_rows: int = DEFAULT_CHUNK_ROWS) -> dict:
    """Write ``table`` as one partition file; returns the footer dict."""
    columns = []
    with open(path, "wb") as fh:
        fh.write(MAGIC)
        for name in table.schema.names:
            ctype = table.schema.type_of(name)
            arr = table.column(name)
            encoded = encode_column(arr, ctype, codec)
            segments = []
            for seg in encoded.segments:
                seg = np.ascontiguousarray(seg)
                pad = (-fh.tell()) % ALIGN
                if pad:
                    fh.write(b"\x00" * pad)
                segments.append({
                    "offset": fh.tell(),
                    "nbytes": int(seg.nbytes),
                    "dtype": str(seg.dtype),
                    "count": int(len(seg)),
                })
                fh.write(seg.tobytes())
            columns.append({
                "name": name,
                "type": ctype.value,
                "codec": encoded.codec,
                "meta": encoded.meta,
                "segments": segments,
                "zones": compute_zones(arr, ctype, chunk_rows),
                "encoded_bytes": encoded.encoded_bytes,
            })
        footer = {
            "version": FORMAT_VERSION,
            "num_rows": table.num_rows,
            "chunk_rows": chunk_rows,
            "columns": columns,
        }
        blob = json.dumps(footer).encode("utf-8")
        fh.write(blob)
        fh.write(_TRAILER.pack(len(blob)))
        fh.write(MAGIC)
    return footer


class PartitionReader:
    """Read one partition file, optionally through ``np.memmap``.

    With ``mmap=True`` the file bytes are paged in lazily by the OS and
    ``plain``-coded numeric columns decode to zero-copy (read-only)
    views into the mapping, so a partition never has to fit in the
    process heap at once.
    """

    def __init__(self, path, mmap: bool = True):
        self.path = os.fspath(path)
        self.mmap = mmap
        size = os.path.getsize(self.path)
        tail_len = _TRAILER.size + len(MAGIC)
        if size < len(MAGIC) + tail_len:
            raise StorageError(f"{self.path}: truncated partition file")
        with open(self.path, "rb") as fh:
            if fh.read(len(MAGIC)) != MAGIC:
                raise StorageError(f"{self.path}: bad partition magic")
            fh.seek(size - tail_len)
            tail = fh.read(tail_len)
            if tail[_TRAILER.size:] != MAGIC:
                raise StorageError(f"{self.path}: bad trailing magic")
            (footer_len,) = _TRAILER.unpack(tail[:_TRAILER.size])
            footer_at = size - tail_len - footer_len
            if footer_at < len(MAGIC):
                raise StorageError(f"{self.path}: bad footer length")
            fh.seek(footer_at)
            try:
                self.footer = json.loads(fh.read(footer_len))
            except ValueError as exc:
                raise StorageError(
                    f"{self.path}: corrupt footer ({exc})"
                ) from None
        if self.footer.get("version") != FORMAT_VERSION:
            raise StorageError(
                f"{self.path}: unsupported format version "
                f"{self.footer.get('version')!r}"
            )
        self._buf: Optional[np.ndarray] = None

    @property
    def num_rows(self) -> int:
        return int(self.footer["num_rows"])

    @property
    def chunk_rows(self) -> int:
        return int(self.footer["chunk_rows"])

    def _buffer(self) -> np.ndarray:
        if self._buf is None:
            if self.mmap:
                self._buf = np.memmap(self.path, dtype=np.uint8, mode="r")
            else:
                self._buf = np.fromfile(self.path, dtype=np.uint8)
        return self._buf

    def _segment(self, desc: dict) -> np.ndarray:
        buf = self._buffer()
        off, nbytes = int(desc["offset"]), int(desc["nbytes"])
        if off + nbytes > len(buf):
            raise StorageError(f"{self.path}: segment past end of file")
        raw = buf[off:off + nbytes]
        return raw.view(np.dtype(desc["dtype"]))[: int(desc["count"])]

    def schema(self) -> Schema:
        return Schema(tuple(
            Column(col["name"], ColumnType(col["type"]))
            for col in self.footer["columns"]
        ))

    def zone_index(self) -> ZoneMapIndex:
        columns: Dict[str, ColumnZones] = {}
        for col in self.footer["columns"]:
            zones = col["zones"]
            columns[col["name"]] = ColumnZones(
                ctype=col["type"],
                lows=[z["lo"] for z in zones],
                highs=[z["hi"] for z in zones],
                nulls=np.array([z["nulls"] for z in zones], dtype=np.int64),
                distinct=np.array([z["distinct"] for z in zones],
                                  dtype=np.int64),
            )
        return ZoneMapIndex(chunk_rows=self.chunk_rows,
                            num_rows=self.num_rows, columns=columns)

    def read_table(self, with_zones: bool = True) -> Table:
        """Decode the whole partition into a :class:`Table`.

        With ``with_zones`` the zone-map index rides along as a
        ``_colstore_zones`` attribute, which the filter/classification
        pruning hooks look for.  ``take``/``slice``/``concat`` produce
        fresh tables without the attribute, so stale chunk alignment
        can never leak past the first row-reordering operation.
        """
        arrays = {}
        for col in self.footer["columns"]:
            ctype = ColumnType(col["type"])
            segments = [self._segment(d) for d in col["segments"]]
            arrays[col["name"]] = decode_column(
                col["codec"], segments, col["meta"], ctype, self.num_rows
            )
        table = Table(self.schema(), arrays)
        if with_zones:
            table._colstore_zones = self.zone_index()
        return table
