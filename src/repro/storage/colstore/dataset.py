"""Colstore datasets: a directory of partition files plus a manifest.

``convert_table`` writes one ``.gcp`` partition file per shuffled
mini-batch (via the lazy partitioner, so the full shuffled copy is
never materialized) and a ``manifest.json`` recording the schema, the
partitioning parameters, a content fingerprint, and any quarantined
rows carried over from a CSV load.

``ColstoreDataset`` opens such a directory and can stand in for an
in-memory :class:`Table` in the catalog: the binder only needs
``.schema``, the controller streams ``.batches()`` lazily (each batch
decoded on demand from its memory-mapped partition), and batch
(non-online) execution materializes via ``.to_table()``, which
reconstructs the *original* row order so results match the source
table bit for bit.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import List, Optional

import numpy as np

from ...errors import StorageError
from ...faults.quarantine import QuarantinedRow, RowQuarantine
from ..partition import MiniBatchPartitioner
from ..table import Column, ColumnType, Schema, Table
from .format import DEFAULT_CHUNK_ROWS, PartitionReader, write_partition

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1
PARTITION_SUFFIX = ".gcp"

#: Decoded per-row byte estimates for admission control.
_ROW_BYTES = {"int64": 8, "float64": 8, "bool": 1, "string": 64}


def _file_sha256(path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _quarantine_records(quarantine: Optional[RowQuarantine]):
    if quarantine is None:
        return None
    return {
        "error_budget": quarantine.error_budget,
        "total_seen": quarantine.total_seen,
        "rows": [
            {"line_number": row.line_number, "column": row.column,
             "value": row.value, "reason": row.reason}
            for row in quarantine.rows
        ],
    }


def convert_table(table: Table, out_dir, num_batches: int,
                  seed: int = 0, shuffle: bool = True,
                  codec: str = "auto",
                  chunk_rows: int = DEFAULT_CHUNK_ROWS,
                  quarantine: Optional[RowQuarantine] = None,
                  source: Optional[str] = None) -> "ColstoreDataset":
    """Write ``table`` as a colstore dataset directory.

    The partitioning parameters (``num_batches``, ``seed``,
    ``shuffle``) are baked into the files: a run whose config matches
    them streams the stored batches directly; any other config falls
    back to materializing and re-partitioning.
    """
    if num_batches < 1:
        raise StorageError("num_batches must be >= 1")
    out_dir = os.fspath(out_dir)
    os.makedirs(out_dir, exist_ok=True)
    partitioner = MiniBatchPartitioner(num_batches, seed=seed,
                                       shuffle=shuffle)
    partitions = []
    fingerprint = hashlib.sha256()
    fingerprint.update(repr(table.schema).encode())
    fingerprint.update(
        f"k={num_batches};seed={seed};shuffle={shuffle}".encode()
    )
    for index, batch in enumerate(partitioner.iter_batches(table)):
        name = f"part-{index:05d}{PARTITION_SUFFIX}"
        path = os.path.join(out_dir, name)
        write_partition(path, batch, codec=codec, chunk_rows=chunk_rows)
        sha = _file_sha256(path)
        fingerprint.update(sha.encode())
        partitions.append({
            "file": name,
            "rows": batch.num_rows,
            "bytes": os.path.getsize(path),
            "sha256": sha,
        })
    manifest = {
        "format": "colstore",
        "version": MANIFEST_VERSION,
        "num_rows": table.num_rows,
        "num_batches": num_batches,
        "seed": seed,
        "shuffle": shuffle,
        "codec": codec,
        "chunk_rows": chunk_rows,
        "schema": [[c.name, c.ctype.value] for c in table.schema],
        "partitions": partitions,
        "fingerprint": fingerprint.hexdigest()[:32],
        "quarantine": _quarantine_records(quarantine),
        "source": source,
    }
    tmp = os.path.join(out_dir, MANIFEST_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, os.path.join(out_dir, MANIFEST_NAME))
    return ColstoreDataset(out_dir)


class _LazyBatchSeq:
    """Sequence view over a dataset's batches, decoded on access.

    The controller indexes batches one at a time (``batches[i - 1]``
    per step), so no decoded batch is retained here — memory stays
    bounded by one batch plus whatever the run itself keeps.
    """

    def __init__(self, dataset: "ColstoreDataset", prune: bool):
        self._dataset = dataset
        self._prune = prune

    def __len__(self) -> int:
        return self._dataset.num_batches

    def __getitem__(self, index: int) -> Table:
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        return self._dataset.batch(index, with_zones=self._prune)

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]


class ColstoreDataset:
    """An opened colstore dataset directory.

    Duck-types the subset of :class:`Table` the catalog and binder
    need (``schema``, ``num_rows``) while providing lazy batch access
    for streaming runs and ``to_table()`` for batch execution.
    """

    def __init__(self, path, mmap: bool = True):
        self.path = os.fspath(path)
        self.mmap = mmap
        manifest_path = os.path.join(self.path, MANIFEST_NAME)
        try:
            with open(manifest_path, "r", encoding="utf-8") as fh:
                self.manifest = json.load(fh)
        except OSError as exc:
            raise StorageError(
                f"{self.path}: not a colstore dataset ({exc.strerror})"
            ) from None
        except ValueError as exc:
            raise StorageError(
                f"{manifest_path}: corrupt manifest ({exc})"
            ) from None
        if self.manifest.get("format") != "colstore":
            raise StorageError(f"{manifest_path}: not a colstore manifest")
        if self.manifest.get("version") != MANIFEST_VERSION:
            raise StorageError(
                f"{manifest_path}: unsupported manifest version "
                f"{self.manifest.get('version')!r}"
            )
        self.schema = Schema(tuple(
            Column(name, ColumnType(type_name))
            for name, type_name in self.manifest["schema"]
        ))
        self._readers: List[Optional[PartitionReader]] = \
            [None] * self.num_batches

    # ------------------------------------------------------------------
    # Manifest accessors
    # ------------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return int(self.manifest["num_rows"])

    def __len__(self) -> int:
        return self.num_rows

    @property
    def num_batches(self) -> int:
        return int(self.manifest["num_batches"])

    @property
    def seed(self) -> int:
        return int(self.manifest["seed"])

    @property
    def shuffle(self) -> bool:
        return bool(self.manifest["shuffle"])

    @property
    def fingerprint(self) -> str:
        return self.manifest["fingerprint"]

    @property
    def quarantined_rows(self) -> List[QuarantinedRow]:
        records = self.manifest.get("quarantine") or {"rows": []}
        return [
            QuarantinedRow(line_number=row["line_number"],
                           column=row["column"], value=row["value"],
                           reason=row["reason"])
            for row in records["rows"]
        ]

    @property
    def estimated_bytes(self) -> int:
        """Decoded-size estimate for serve-layer admission control."""
        row = sum(_ROW_BYTES.get(c.ctype.value, 8) for c in self.schema)
        return self.num_rows * max(row, 1)

    @property
    def projection_dir(self) -> str:
        return os.path.join(self.path, "_projections")

    def config_matches(self, config) -> bool:
        """True when ``config`` partitions exactly like the stored files."""
        return (config.num_batches == self.num_batches
                and config.seed == self.seed
                and config.shuffle == self.shuffle)

    def verify(self) -> None:
        """Check every partition file against its manifest sha256."""
        for entry in self.manifest["partitions"]:
            path = os.path.join(self.path, entry["file"])
            digest = _file_sha256(path)
            if digest != entry["sha256"]:
                raise StorageError(
                    f"{path}: sha256 mismatch (file {digest[:12]}..., "
                    f"manifest {entry['sha256'][:12]}...)"
                )

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------

    def reader(self, index: int) -> PartitionReader:
        if not 0 <= index < self.num_batches:
            raise StorageError(
                f"partition {index} out of range 0..{self.num_batches - 1}"
            )
        if self._readers[index] is None:
            entry = self.manifest["partitions"][index]
            self._readers[index] = PartitionReader(
                os.path.join(self.path, entry["file"]), mmap=self.mmap
            )
        return self._readers[index]

    def batch(self, index: int, with_zones: bool = True) -> Table:
        """Decode mini-batch ``index`` (zone maps attached by default)."""
        return self.reader(index).read_table(with_zones=with_zones)

    def batches(self, prune: bool = True) -> _LazyBatchSeq:
        """A lazy, indexable sequence of all mini-batches."""
        return _LazyBatchSeq(self, prune)

    def to_table(self) -> Table:
        """Materialize the dataset in its *original* row order.

        Inverts the partitioner's permutation (recomputed from the
        manifest seed, never stored) so batch execution over the
        materialized table matches the pre-conversion source exactly.
        """
        batches = [self.batch(i, with_zones=False)
                   for i in range(self.num_batches)]
        rng = np.random.default_rng(self.seed)
        if self.shuffle:
            shuffled = Table.concat(batches) if batches else \
                Table.empty(self.schema)
            perm = rng.permutation(self.num_rows)
            return shuffled.take(np.argsort(perm))
        order = rng.permutation(self.num_batches)
        slots: List[Optional[Table]] = [None] * self.num_batches
        for position, original in enumerate(order):
            slots[original] = batches[position]
        return Table.concat([t for t in slots if t is not None])


def open_dataset(path, mmap: bool = True) -> ColstoreDataset:
    """Open a colstore dataset directory."""
    return ColstoreDataset(path, mmap=mmap)


def is_dataset_dir(path) -> bool:
    """True when ``path`` looks like a colstore dataset directory."""
    return os.path.isfile(os.path.join(os.fspath(path), MANIFEST_NAME))
