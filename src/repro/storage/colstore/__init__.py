"""Compressed, memory-mapped columnar partition storage.

One ``.gcp`` file per shuffled mini-batch (64-byte-aligned column
segments behind a JSON footer), per-chunk zone maps consulted by the
filter and uncertain-set pruning hooks, and partial-aggregate
projections that let recurring queries warm-start from persisted fold
state.  See ``docs/storage.md`` for the format and semantics.
"""

from .codecs import CODECS, EncodedColumn, decode_column, encode_column
from .dataset import (
    ColstoreDataset,
    convert_table,
    is_dataset_dir,
    open_dataset,
)
from .format import (
    DEFAULT_CHUNK_ROWS,
    PartitionReader,
    compute_zones,
    write_partition,
)
from .projections import ProjectionStore, projection_key
from .prune import (
    ColumnZones,
    ZoneMapIndex,
    chunk_decisions,
    chunk_keep,
    match_uncertain_comparison,
    pruned_filter_mask,
)

__all__ = [
    "CODECS",
    "ColstoreDataset",
    "ColumnZones",
    "DEFAULT_CHUNK_ROWS",
    "EncodedColumn",
    "PartitionReader",
    "ProjectionStore",
    "ZoneMapIndex",
    "chunk_decisions",
    "chunk_keep",
    "compute_zones",
    "convert_table",
    "decode_column",
    "encode_column",
    "is_dataset_dir",
    "match_uncertain_comparison",
    "open_dataset",
    "projection_key",
    "pruned_filter_mask",
    "write_partition",
]
