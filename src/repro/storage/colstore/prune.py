"""Zone-map pruning: skip chunks a predicate provably rejects.

Two consumers:

* the certain-filter hooks (``engine.operators.run_filter`` and the
  delta pipeline's certain steps) use :func:`pruned_filter_mask`, which
  evaluates the predicate only on chunks its zone maps cannot rule out
  and scatters ``False`` for the rest — the resulting mask is
  *identical* to a full ``evaluate_mask`` because every comparison is
  row-local and NaN rows compare ``False`` under numpy semantics for
  ``< <= > >= =`` (``!=`` is the exception: NaN ``!=`` c is ``True``,
  so those chunks only prune when the zone map records zero nulls);

* the delta controller's uncertain-set re-evaluation uses
  :func:`match_uncertain_comparison` + :func:`chunk_decisions` to
  resolve whole chunks of the tri-state classification against a
  row-constant slot interval without evaluating per-row intervals.

This module deliberately avoids importing :mod:`repro.core` (which
would cycle back through the controller into this package); it defines
its own tri-state codes, pinned to ``repro.core.uncertain``'s by a
unit test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...expr.expressions import (
    ColumnRef,
    Comparison,
    Literal,
    conjuncts,
    evaluate_mask,
)

# Tri-state codes; must match repro.core.uncertain (asserted in tests).
TRI_FALSE = np.int8(0)
TRI_UNKNOWN = np.int8(1)
TRI_TRUE = np.int8(2)

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


@dataclass
class ColumnZones:
    """Per-chunk statistics for one column of one partition."""

    ctype: str                       # ColumnType value string
    lows: List[object]               # per-chunk min (None = all-null)
    highs: List[object]              # per-chunk max
    nulls: np.ndarray                # per-chunk NaN count
    distinct: np.ndarray             # per-chunk distinct estimate


@dataclass
class ZoneMapIndex:
    """Zone maps for every column of one partition (one mini-batch)."""

    chunk_rows: int
    num_rows: int
    columns: Dict[str, ColumnZones]
    #: Chunks skipped by certain-filter pruning against this partition
    #: (benchmarks read it; tracing counts the same events globally).
    pruned_total: int = field(default=0, compare=False)

    @property
    def num_chunks(self) -> int:
        if self.num_rows == 0:
            return 0
        return -(-self.num_rows // self.chunk_rows)

    def row_mask_for_chunks(self, keep: np.ndarray) -> np.ndarray:
        """Expand a per-chunk bool array to a per-row bool array."""
        return np.repeat(keep, self.chunk_rows)[: self.num_rows]


def _literal_value(expr):
    """The python constant of a Literal, or None when not a literal."""
    if isinstance(expr, Literal):
        value = expr.value
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, (int, float, str, np.integer, np.floating)):
            return value
    return None


def _match_filter_conjunct(expr) -> Optional[Tuple[str, str, object]]:
    """Match ``col op literal`` (either side) -> (name, op, const)."""
    if not isinstance(expr, Comparison):
        return None
    left, right = expr.left, expr.right
    if isinstance(left, ColumnRef):
        const = _literal_value(right)
        if const is not None:
            return left.name, expr.op, const
    if isinstance(right, ColumnRef):
        const = _literal_value(left)
        if const is not None:
            return right.name, _FLIP[expr.op], const
    return None


def _const_matches_type(const, ctype: str) -> bool:
    if ctype == "string":
        return isinstance(const, str)
    if ctype in ("int64", "float64", "bool"):
        return isinstance(const, (int, float, np.integer, np.floating))
    return False


def _chunk_false(op: str, lo, hi, nulls: int, const) -> bool:
    """True when zone stats prove every row of the chunk fails ``op``.

    ``lo``/``hi`` are the chunk min/max with NaN excluded; ``lo is
    None`` means the chunk is all-null.  NaN rows evaluate ``False``
    under every numpy comparison except ``!=``.
    """
    if op == "!=":
        # NaN != const is True, so null-bearing chunks never prune.
        return nulls == 0 and lo is not None and lo == hi == const
    if lo is None:  # all-null: every comparison row is False
        return True
    if op == "<":
        return lo >= const
    if op == "<=":
        return lo > const
    if op == ">":
        return hi <= const
    if op == ">=":
        return hi < const
    if op == "=":
        return const < lo or const > hi
    return False


def chunk_keep(predicate, zones: ZoneMapIndex) -> Optional[np.ndarray]:
    """Per-chunk keep mask for a certain filter, or None if no conjunct
    of ``predicate`` has a usable ``col op literal`` shape."""
    if zones.num_chunks == 0:
        return None
    keep: Optional[np.ndarray] = None
    for conjunct in conjuncts(predicate):
        matched = _match_filter_conjunct(conjunct)
        if matched is None:
            continue
        name, op, const = matched
        cz = zones.columns.get(name)
        if cz is None or not _const_matches_type(const, cz.ctype):
            continue
        this = np.array([
            not _chunk_false(op, cz.lows[c], cz.highs[c],
                             int(cz.nulls[c]), const)
            for c in range(zones.num_chunks)
        ], dtype=bool)
        keep = this if keep is None else (keep & this)
    return keep


def pruned_filter_mask(predicate, table, env,
                       zones: ZoneMapIndex) -> Tuple[np.ndarray, int]:
    """``(mask, chunks_pruned)`` — bit-identical to ``evaluate_mask``.

    Chunks whose zone maps prove the predicate false contribute
    ``False`` rows directly; the predicate is evaluated only on the
    surviving rows (every expression is row-local, so evaluating on the
    gathered sub-table matches evaluating in place).
    """
    keep = None
    if zones.num_rows == table.num_rows:
        keep = chunk_keep(predicate, zones)
    if keep is None or keep.all():
        return np.asarray(evaluate_mask(predicate, table, env),
                          dtype=bool), 0
    pruned = int((~keep).sum())
    mask = np.zeros(table.num_rows, dtype=bool)
    rows_keep = zones.row_mask_for_chunks(keep)
    if rows_keep.any():
        sub = table.take(rows_keep)
        mask[rows_keep] = np.asarray(
            evaluate_mask(predicate, sub, env), dtype=bool
        )
    zones.pruned_total += pruned
    return mask, pruned


def match_uncertain_comparison(predicate):
    """Match an uncertain predicate ``col op <row-constant slot expr>``.

    Returns ``(column_name, op, uncertain_side)`` with ``op`` oriented
    as ``col op slot``, or None.  The uncertain side must be
    row-constant: it may carry subquery slots but reference no columns
    of the lineage table (correlated subqueries reference columns and
    are rejected).  The column side must be a bare numeric ColumnRef —
    its per-row interval is the degenerate ``[v, v]``, which the chunk
    interval ``[min, max]`` contains, making chunk-level tri-state
    decisions sound for every row of the chunk.
    """
    if not isinstance(predicate, Comparison):
        return None
    left, right = predicate.left, predicate.right
    left_slots = bool(left.subquery_slots())
    right_slots = bool(right.subquery_slots())
    if left_slots == right_slots:
        return None
    if left_slots:
        col_side, unc_side, op = right, left, _FLIP[predicate.op]
    else:
        col_side, unc_side, op = left, right, predicate.op
    if not isinstance(col_side, ColumnRef):
        return None
    if unc_side.references():
        return None
    return col_side.name, op, unc_side


def _tri_compare_interval(op: str, a_lo: float, a_hi: float,
                          b_lo: float, b_hi: float) -> np.int8:
    """Interval comparison with core.classify._tri_compare semantics.

    ``[a_lo, a_hi]`` is the chunk's value interval, ``[b_lo, b_hi]``
    the slot's variation range.  Because every row value ``v`` gives a
    degenerate interval ``[v, v] ⊆ [a_lo, a_hi]`` and these decision
    rules are monotone under interval containment, a TRUE/FALSE verdict
    here implies the same verdict for every row of the chunk.
    """
    if op == "<":
        if a_hi < b_lo:
            return TRI_TRUE
        if a_lo >= b_hi:
            return TRI_FALSE
    elif op == "<=":
        if a_hi <= b_lo:
            return TRI_TRUE
        if a_lo > b_hi:
            return TRI_FALSE
    elif op == ">":
        if a_lo > b_hi:
            return TRI_TRUE
        if a_hi <= b_lo:
            return TRI_FALSE
    elif op == ">=":
        if a_lo >= b_hi:
            return TRI_TRUE
        if a_hi < b_lo:
            return TRI_FALSE
    elif op == "=":
        if a_lo > b_hi or a_hi < b_lo:
            return TRI_FALSE
        if a_lo == a_hi == b_lo == b_hi:
            return TRI_TRUE
    elif op == "!=":
        if a_lo > b_hi or a_hi < b_lo:
            return TRI_TRUE
        if a_lo == a_hi == b_lo == b_hi:
            return TRI_FALSE
    return TRI_UNKNOWN


def chunk_decisions(zones: ZoneMapIndex, column: str, op: str,
                    lo: float, hi: float) -> Optional[np.ndarray]:
    """Per-chunk tri-state decisions for ``col op [lo, hi]``.

    None when the column has no numeric zone maps.  Chunks containing
    NaN rows stay TRI_UNKNOWN (a NaN row is individually unknown to the
    interval comparison, never decidable at chunk granularity).
    """
    cz = zones.columns.get(column)
    if cz is None or cz.ctype not in ("int64", "float64"):
        return None
    out = np.full(zones.num_chunks, TRI_UNKNOWN, dtype=np.int8)
    for c in range(zones.num_chunks):
        if int(cz.nulls[c]) or cz.lows[c] is None:
            continue
        out[c] = _tri_compare_interval(
            op, float(cz.lows[c]), float(cz.highs[c]), lo, hi
        )
    return out
