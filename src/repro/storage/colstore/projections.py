"""Partial-aggregate projections: persisted warm-start fold states.

A projection is a :class:`~repro.faults.checkpoint.RunCheckpoint`
persisted next to a dataset's partitions, keyed by

* the dataset's content **fingerprint** (re-converting the data, or
  converting different data, invalidates every projection),
* the **query fingerprint** (hash of the rewritten plan description),
* the **config fingerprint** (batching/bootstrap parameters), and
* per-lineage-block **digests** (hash of each block's plan), checked
  at load so a planner change that re-shapes blocks under the same
  query text can never resurrect stale fold state.

Retained batches are *not* persisted: Poisson bootstrap weights come
from stateless per-(batch, trial) RNG streams, so a warm start replays
a fresh weight source over the stored batches and reconstructs the
retained list exactly.  That keeps projection files at fold-state size
(KBs) instead of dataset size.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional

from ...errors import CheckpointError
from ...faults.checkpoint import RunCheckpoint

_META_SUFFIX = ".json"
_STATE_SUFFIX = ".proj"


def projection_key(table_fp: str, query_fp: str, config_fp: str) -> str:
    """Stable file stem for one (table, query, config) combination."""
    blob = f"{table_fp}:{query_fp}:{config_fp}".encode()
    return hashlib.sha256(blob).hexdigest()[:24]


class ProjectionStore:
    """Directory of projection files (usually ``<dataset>/_projections``)."""

    def __init__(self, root):
        self.root = os.fspath(root)

    def _stem(self, table_fp: str, query_fp: str, config_fp: str) -> str:
        return os.path.join(
            self.root, projection_key(table_fp, query_fp, config_fp)
        )

    def save(self, checkpoint: RunCheckpoint, table_fp: str,
             block_digests: Dict[str, str]) -> str:
        """Persist ``checkpoint`` (with ``retained`` already emptied)."""
        os.makedirs(self.root, exist_ok=True)
        stem = self._stem(table_fp, checkpoint.query_fp,
                          checkpoint.config_fp)
        checkpoint.save(stem + _STATE_SUFFIX)
        meta = {
            "table_fp": table_fp,
            "query_fp": checkpoint.query_fp,
            "config_fp": checkpoint.config_fp,
            "batch_index": checkpoint.batch_index,
            "folded_count": checkpoint.folded_count,
            "block_digests": dict(block_digests),
        }
        tmp = stem + _META_SUFFIX + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(meta, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, stem + _META_SUFFIX)
        return stem + _STATE_SUFFIX

    def load(self, table_fp: str, query_fp: str, config_fp: str,
             block_digests: Dict[str, str]) -> Optional[RunCheckpoint]:
        """The stored checkpoint for this key, or None.

        Returns None (never raises) on missing files, unreadable
        pickles, or any digest mismatch — a cold start is always a
        safe answer.
        """
        stem = self._stem(table_fp, query_fp, config_fp)
        try:
            with open(stem + _META_SUFFIX, "r", encoding="utf-8") as fh:
                meta = json.load(fh)
        except (OSError, ValueError):
            return None
        if meta.get("table_fp") != table_fp:
            return None
        if meta.get("block_digests") != dict(block_digests):
            return None
        try:
            return RunCheckpoint.load(stem + _STATE_SUFFIX)
        except (CheckpointError, OSError):
            return None

    def entries(self) -> List[dict]:
        """Metadata for every stored projection (for ``repro inspect``)."""
        if not os.path.isdir(self.root):
            return []
        out = []
        for name in sorted(os.listdir(self.root)):
            if not name.endswith(_META_SUFFIX):
                continue
            try:
                with open(os.path.join(self.root, name), "r",
                          encoding="utf-8") as fh:
                    meta = json.load(fh)
            except (OSError, ValueError):
                continue
            state = name[: -len(_META_SUFFIX)] + _STATE_SUFFIX
            state_path = os.path.join(self.root, state)
            meta["state_file"] = state
            meta["state_bytes"] = (
                os.path.getsize(state_path)
                if os.path.isfile(state_path) else 0
            )
            out.append(meta)
        return out
