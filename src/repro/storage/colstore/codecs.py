"""Column codecs for the colstore partition format.

Four codecs, all bit-exact on round-trip (NaN payloads included):

``plain``
    Raw little-endian numpy bytes.  INT64/FLOAT64/BOOL only; the
    decoded array is a zero-copy view into the partition file when it
    is opened via ``np.memmap``.

``dict``
    Dictionary encoding: an int32 code per row plus a unique-values
    table.  Strings keep their values in the JSON footer; numeric
    values become a second aligned segment.  Floats are factorized on
    their int64 bit pattern so distinct NaN payloads stay distinct.

``rle``
    Run-length encoding: a values segment (original dtype) plus int32
    run lengths.  Run boundaries for floats are found on the bit view,
    so NaN runs compress like any other value.  Strings are factorized
    to codes first (values in the footer).

``delta``
    Delta-of-delta with frame-of-reference packing into the smallest
    unsigned dtype.  INT64 only; falls back to ``plain`` when the
    value span is too wide for an exact int64 reconstruction.

``auto`` picks whichever candidate codec produces the smallest
encoded payload for each column.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ...errors import StorageError
from ..table import ColumnType

CODECS = ("plain", "dict", "rle", "delta")

#: Value span above which delta-of-delta packing may overflow int64
#: arithmetic; such columns silently fall back to ``plain``.
_DELTA_SPAN_LIMIT = float(2 ** 61)


@dataclass
class EncodedColumn:
    """One encoded column: numpy segments plus JSON-safe metadata."""

    codec: str
    segments: List[np.ndarray] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def encoded_bytes(self) -> int:
        payload = sum(int(seg.nbytes) for seg in self.segments)
        return payload + len(json.dumps(self.meta, default=str))


def _bit_view(arr: np.ndarray, ctype: ColumnType) -> np.ndarray:
    """An integer view with the same equality structure as ``arr``.

    Floats compare by bit pattern (NaN == NaN, -0.0 != 0.0) which is
    exactly what an exact round-trip needs.
    """
    if ctype == ColumnType.FLOAT64:
        return arr.view(np.int64)
    if ctype == ColumnType.BOOL:
        return arr.view(np.uint8)
    return arr


def _encode_plain(arr: np.ndarray, ctype: ColumnType) -> EncodedColumn:
    if ctype == ColumnType.STRING:
        raise StorageError("plain codec does not support string columns")
    seg = np.ascontiguousarray(_bit_view(arr, ctype))
    if ctype == ColumnType.FLOAT64:
        seg = seg.view(np.float64)
    return EncodedColumn("plain", [seg], {})


def _encode_dict(arr: np.ndarray, ctype: ColumnType) -> EncodedColumn:
    if ctype == ColumnType.STRING:
        # Stable first-occurrence dictionary so equal inputs encode
        # identically regardless of value order statistics.
        mapping: Dict[str, int] = {}
        codes = np.empty(len(arr), dtype=np.int32)
        for i, value in enumerate(arr):
            code = mapping.setdefault(value, len(mapping))
            codes[i] = code
        return EncodedColumn(
            "dict", [codes], {"values": list(mapping.keys())}
        )
    view = _bit_view(arr, ctype)
    values, inverse = np.unique(view, return_inverse=True)
    if len(values) >= 2 ** 31:  # pragma: no cover - pathological
        raise StorageError("dictionary too large for int32 codes")
    if ctype == ColumnType.FLOAT64:
        values = values.view(np.float64)
    codes = inverse.astype(np.int32)
    return EncodedColumn("dict", [codes, np.ascontiguousarray(values)], {})


def _run_bounds(view: np.ndarray) -> np.ndarray:
    """Start indices of equal-value runs in ``view`` (1-D, len > 0)."""
    change = np.flatnonzero(view[1:] != view[:-1]) + 1
    return np.concatenate(([0], change))


def _encode_rle(arr: np.ndarray, ctype: ColumnType) -> EncodedColumn:
    if len(arr) == 0:
        return EncodedColumn("rle", [np.empty(0, np.int64),
                                     np.empty(0, np.int32)], {})
    if ctype == ColumnType.STRING:
        mapping: Dict[str, int] = {}
        codes = np.empty(len(arr), dtype=np.int32)
        for i, value in enumerate(arr):
            codes[i] = mapping.setdefault(value, len(mapping))
        starts = _run_bounds(codes)
        lengths = np.diff(np.concatenate((starts, [len(arr)])))
        return EncodedColumn(
            "rle",
            [codes[starts], lengths.astype(np.int32)],
            {"values": list(mapping.keys())},
        )
    view = _bit_view(arr, ctype)
    starts = _run_bounds(view)
    lengths = np.diff(np.concatenate((starts, [len(arr)])))
    values = np.ascontiguousarray(view[starts])
    if ctype == ColumnType.FLOAT64:
        values = values.view(np.float64)
    return EncodedColumn("rle", [values, lengths.astype(np.int32)], {})


def _encode_delta(arr: np.ndarray, ctype: ColumnType) -> EncodedColumn:
    if ctype != ColumnType.INT64:
        raise StorageError("delta codec supports int64 columns only")
    n = len(arr)
    if n == 0:
        return EncodedColumn("delta", [], {"n": 0})
    if n == 1:
        return EncodedColumn("delta", [], {"n": 1, "first": int(arr[0])})
    span = float(arr.max()) - float(arr.min())
    if span > _DELTA_SPAN_LIMIT:
        return _encode_plain(arr, ctype)
    diffs = np.diff(arr)
    dod = np.diff(diffs)
    if len(dod):
        lo = int(dod.min())
        rng = int(dod.max()) - lo
    else:
        lo, rng = 0, 0
    for utype in (np.uint8, np.uint16, np.uint32, np.uint64):
        if rng <= np.iinfo(utype).max:
            packed = (dod - lo).astype(utype)
            break
    meta = {"n": n, "first": int(arr[0]), "d0": int(diffs[0]), "lo": lo,
            "packed_dtype": np.dtype(utype).name}
    return EncodedColumn("delta", [packed], meta)


_ENCODERS = {
    "plain": _encode_plain,
    "dict": _encode_dict,
    "rle": _encode_rle,
    "delta": _encode_delta,
}

#: Candidate codecs per column type, tried by ``auto``.
_AUTO_CANDIDATES = {
    ColumnType.INT64: ("plain", "rle", "delta", "dict"),
    ColumnType.FLOAT64: ("plain", "rle", "dict"),
    ColumnType.BOOL: ("plain", "rle"),
    ColumnType.STRING: ("dict", "rle"),
}


def encode_column(arr: np.ndarray, ctype: ColumnType,
                  codec: str = "auto") -> EncodedColumn:
    """Encode one column array; ``auto`` picks the smallest payload."""
    if codec == "auto":
        best: Optional[EncodedColumn] = None
        for name in _AUTO_CANDIDATES[ctype]:
            candidate = _ENCODERS[name](arr, ctype)
            if best is None or candidate.encoded_bytes < best.encoded_bytes:
                best = candidate
        assert best is not None
        return best
    if codec not in _ENCODERS:
        raise StorageError(f"unknown codec {codec!r}")
    if ctype == ColumnType.STRING and codec in ("plain", "delta"):
        return encode_column(arr, ctype, "dict")
    if codec == "delta" and ctype != ColumnType.INT64:
        return _encode_plain(arr, ctype)
    return _ENCODERS[codec](arr, ctype)


def _decode_plain(segments, meta, ctype, num_rows):
    if not segments:
        return np.empty(0, ctype.numpy_dtype)
    seg = segments[0]
    if ctype == ColumnType.BOOL:
        return seg.view(np.bool_)
    return seg


def _decode_dict(segments, meta, ctype, num_rows):
    codes = segments[0]
    if ctype == ColumnType.STRING:
        values = np.array(meta["values"], dtype=object)
        if len(values) == 0:
            return np.empty(0, dtype=object)
        return values[codes]
    values = segments[1]
    if ctype == ColumnType.BOOL:
        values = values.view(np.bool_)
    return values[codes] if len(values) else np.empty(0, ctype.numpy_dtype)


def _decode_rle(segments, meta, ctype, num_rows):
    values, lengths = segments[0], segments[1]
    if num_rows == 0:
        return np.empty(0, ctype.numpy_dtype)
    expanded = np.repeat(values, lengths)
    if ctype == ColumnType.STRING:
        table = np.array(meta["values"], dtype=object)
        return table[expanded]
    if ctype == ColumnType.BOOL:
        return expanded.view(np.bool_)
    return expanded


def _decode_delta(segments, meta, ctype, num_rows):
    n = int(meta["n"])
    if n == 0:
        return np.empty(0, np.int64)
    if n == 1:
        return np.array([meta["first"]], dtype=np.int64)
    packed = segments[0]
    dod = packed.astype(np.int64) + int(meta["lo"])
    diffs = np.cumsum(np.concatenate(([int(meta["d0"])], dod)))
    out = np.empty(n, dtype=np.int64)
    out[0] = int(meta["first"])
    out[1:] = out[0] + np.cumsum(diffs)
    return out


_DECODERS = {
    "plain": _decode_plain,
    "dict": _decode_dict,
    "rle": _decode_rle,
    "delta": _decode_delta,
}


def decode_column(codec: str, segments: List[np.ndarray],
                  meta: Dict[str, object], ctype: ColumnType,
                  num_rows: int) -> np.ndarray:
    """Decode segments written by :func:`encode_column`."""
    if codec not in _DECODERS:
        raise StorageError(f"unknown codec {codec!r}")
    out = _DECODERS[codec](segments, meta, ctype, num_rows)
    if len(out) != num_rows:
        raise StorageError(
            f"codec {codec!r} decoded {len(out)} rows, expected {num_rows}"
        )
    return out
