"""Plain-text table I/O (CSV and JSON lines).

Kept deliberately dependency-free: the generators in ``repro.workloads``
produce tables directly, but users adopting the library will want to load
their own logs, and the examples round-trip through these functions.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from ..errors import SchemaError
from .table import Column, ColumnType, Schema, Table

PathLike = Union[str, Path]

_PARSERS = {
    ColumnType.INT64: int,
    ColumnType.FLOAT64: float,
    ColumnType.STRING: str,
    ColumnType.BOOL: lambda s: s.strip().lower() in ("1", "true", "t", "yes"),
}


def _infer_column(values: List[str]) -> ColumnType:
    """Infer the narrowest type that parses every value in the column."""
    def all_parse(fn) -> bool:
        try:
            for v in values:
                fn(v)
        except (TypeError, ValueError):
            return False
        return True

    if all_parse(int):
        return ColumnType.INT64
    if all_parse(float):
        return ColumnType.FLOAT64
    lowered = {v.strip().lower() for v in values}
    if lowered <= {"true", "false", "t", "f", "0", "1", "yes", "no"}:
        return ColumnType.BOOL
    return ColumnType.STRING


def read_csv(path: PathLike, schema: Optional[Schema] = None,
             delimiter: str = ",") -> Table:
    """Load a headered CSV file, inferring types unless a schema is given."""
    with open(path, newline="") as f:
        reader = csv.reader(f, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path}: empty file, no header") from None
        rows = list(reader)

    raw = {name: [row[i] for row in rows] for i, name in enumerate(header)}
    if schema is None:
        schema = Schema(
            [Column(name, _infer_column(raw[name])) for name in header]
        )
    columns = {}
    for col in schema:
        parse = _PARSERS[col.ctype]
        columns[col.name] = np.array(
            [parse(v) for v in raw[col.name]], dtype=col.ctype.numpy_dtype
        )
    return Table(schema, columns)


def write_csv(table: Table, path: PathLike, delimiter: str = ",") -> None:
    """Write a table as a headered CSV file."""
    with open(path, "w", newline="") as f:
        writer = csv.writer(f, delimiter=delimiter)
        writer.writerow(table.schema.names)
        writer.writerows(table.iter_rows())


def read_jsonl(path: PathLike) -> Table:
    """Load a JSON-lines file (one flat object per line)."""
    records = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    if not records:
        raise SchemaError(f"{path}: no records")
    names = list(records[0])
    columns = {n: np.array([r[n] for r in records]) for n in names}
    return Table.from_columns(columns)


def write_jsonl(table: Table, path: PathLike) -> None:
    """Write a table as JSON lines."""
    names = table.schema.names
    with open(path, "w") as f:
        for row in table.iter_rows():
            record = {
                n: (v.item() if hasattr(v, "item") else v)
                for n, v in zip(names, row)
            }
            f.write(json.dumps(record) + "\n")
