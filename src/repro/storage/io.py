"""Plain-text table I/O (CSV and JSON lines).

Kept deliberately dependency-free: the generators in ``repro.workloads``
produce tables directly, but users adopting the library will want to load
their own logs, and the examples round-trip through these functions.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..errors import SchemaError
from .table import Column, ColumnType, Schema, Table

PathLike = Union[str, Path]

_TRUE_TOKENS = frozenset({"1", "true", "t", "yes"})
_FALSE_TOKENS = frozenset({"0", "false", "f", "no"})

#: Cell value substituted by the fault injector's ``storage.row`` point.
CORRUPT_MARKER = "\x00corrupt"


def _parse_bool(s: str) -> bool:
    """Strict boolean parse: unrecognized tokens raise, never read False."""
    token = s.strip().lower()
    if token in _TRUE_TOKENS:
        return True
    if token in _FALSE_TOKENS:
        return False
    raise ValueError(f"not a boolean: {s!r}")


_PARSERS = {
    ColumnType.INT64: int,
    ColumnType.FLOAT64: float,
    ColumnType.STRING: str,
    ColumnType.BOOL: _parse_bool,
}

#: Stand-in written for a quarantined row's cell before the row is dropped.
_PLACEHOLDERS = {
    ColumnType.INT64: 0,
    ColumnType.FLOAT64: float("nan"),
    ColumnType.STRING: "",
    ColumnType.BOOL: False,
}


def _infer_column(values: List[str], error_budget: float = 0.0
                  ) -> ColumnType:
    """Infer the narrowest type that parses (almost) every column value.

    With ``error_budget > 0`` (quarantine active), a type is accepted
    when at least ``1 - error_budget`` of the values parse — otherwise a
    single malformed cell would demote a numeric column to STRING and
    the bad row would sail through unquarantined.
    """
    def ok_fraction(fn) -> float:
        if not values:
            return 1.0
        bad = 0
        for v in values:
            try:
                fn(v)
            except (TypeError, ValueError):
                bad += 1
        return 1.0 - bad / len(values)

    threshold = 1.0 - error_budget
    if ok_fraction(int) >= threshold:
        return ColumnType.INT64
    if ok_fraction(float) >= threshold:
        return ColumnType.FLOAT64
    if ok_fraction(_parse_bool) >= threshold:
        return ColumnType.BOOL
    return ColumnType.STRING


def read_csv(path: PathLike, schema: Optional[Schema] = None,
             delimiter: str = ",", quarantine=None,
             injector=None) -> Table:
    """Load a headered CSV file, inferring types unless a schema is given.

    ``quarantine`` (a :class:`repro.faults.RowQuarantine`) switches from
    abort-on-first-bad-row to collect-and-drop: malformed rows are
    recorded with their line number and reason, dropped from the result,
    and the load only aborts when the quarantined fraction exceeds the
    quarantine's error budget.  ``injector`` (a
    :class:`repro.faults.FaultInjector`) corrupts a deterministic subset
    of rows at the ``storage.row`` fault point before parsing — the
    test harness for the quarantine path.
    """
    with open(path, newline="") as f:
        reader = csv.reader(f, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path}: empty file, no header") from None
        rows = list(reader)

    if injector is not None:
        corrupt = injector.corrupted_rows("storage.row", len(rows))
        for idx in np.flatnonzero(corrupt):
            rows[idx] = [CORRUPT_MARKER] * len(header)

    raw = {name: [row[i] for row in rows] for i, name in enumerate(header)}
    if schema is None:
        budget = quarantine.error_budget if quarantine is not None else 0.0
        schema = Schema(
            [Column(name, _infer_column(raw[name], budget))
             for name in header]
        )

    num_rows = len(rows)
    parsed: Dict[str, list] = {}
    # row index -> (column, value, reason): only the first failing column
    # is reported per row; the whole row is dropped either way.
    bad_rows: Dict[int, Tuple[str, str, str]] = {}
    for col in schema:
        parse = _PARSERS[col.ctype]
        placeholder = _PLACEHOLDERS[col.ctype]
        values = []
        for idx, v in enumerate(raw[col.name]):
            try:
                values.append(parse(v))
            except (TypeError, ValueError) as exc:
                if quarantine is None:
                    raise SchemaError(
                        f"{path}: line {idx + 2}, column {col.name!r}: "
                        f"{exc}"
                    ) from None
                bad_rows.setdefault(idx, (col.name, v, str(exc)))
                values.append(placeholder)
        parsed[col.name] = values

    keep = None
    if bad_rows:
        for idx in sorted(bad_rows):
            column, value, reason = bad_rows[idx]
            quarantine.add(line_number=idx + 2, column=column,
                           value=value, reason=reason)
        keep = np.ones(num_rows, dtype=bool)
        keep[list(bad_rows)] = False
    if quarantine is not None:
        quarantine.check_budget(num_rows, source=str(path))

    columns = {}
    for col in schema:
        arr = np.array(parsed[col.name], dtype=col.ctype.numpy_dtype)
        columns[col.name] = arr if keep is None else arr[keep]
    return Table(schema, columns)


def write_csv(table: Table, path: PathLike, delimiter: str = ",") -> None:
    """Write a table as a headered CSV file."""
    with open(path, "w", newline="") as f:
        writer = csv.writer(f, delimiter=delimiter)
        writer.writerow(table.schema.names)
        writer.writerows(table.iter_rows())


def read_jsonl(path: PathLike) -> Table:
    """Load a JSON-lines file (one flat object per line)."""
    records = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    if not records:
        raise SchemaError(f"{path}: no records")
    names = list(records[0])
    columns = {n: np.array([r[n] for r in records]) for n in names}
    return Table.from_columns(columns)


def write_jsonl(table: Table, path: PathLike) -> None:
    """Write a table as JSON lines."""
    names = table.schema.names
    with open(path, "w") as f:
        for row in table.iter_rows():
            record = {
                n: (v.item() if hasattr(v, "item") else v)
                for n, v in zip(names, row)
            }
            f.write(json.dumps(record) + "\n")
