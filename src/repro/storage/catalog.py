"""A named-table catalog.

The session-level registry that binds table names appearing in SQL text to
in-memory :class:`~repro.storage.table.Table` objects.  Also records which
relations the user marked as *streamed* — G-OLA lets the user choose a
subset of input relations to process online (typically the large fact
table) while small dimension tables are read in entirety (paper section 2).
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from ..errors import CatalogError
from .table import Schema, Table


class Catalog:
    """Mutable mapping of table name -> table, with streaming marks."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        self._streamed: Dict[str, bool] = {}

    def register(self, name: str, table: Table, streamed: bool = True,
                 replace: bool = False) -> None:
        """Add ``table`` under ``name``.

        Args:
            streamed: Process this relation online in mini-batches.  Non
                streamed (dimension) tables are consumed whole in batch 1.
            replace: Allow overwriting an existing registration.
        """
        key = name.lower()
        if key in self._tables and not replace:
            raise CatalogError(f"table {name!r} already registered")
        self._tables[key] = table
        self._streamed[key] = streamed

    def unregister(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        del self._tables[key]
        del self._streamed[key]

    def get(self, name: str) -> Table:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(
                f"unknown table {name!r}; registered: {sorted(self._tables)}"
            )
        return self._tables[key]

    def schema(self, name: str) -> Schema:
        return self.get(name).schema

    def is_streamed(self, name: str) -> bool:
        key = name.lower()
        if key not in self._streamed:
            raise CatalogError(f"unknown table {name!r}")
        return self._streamed[key]

    def set_streamed(self, name: str, streamed: bool) -> None:
        key = name.lower()
        if key not in self._streamed:
            raise CatalogError(f"unknown table {name!r}")
        self._streamed[key] = streamed

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables

    def __iter__(self) -> Iterator[str]:
        return iter(self._tables)

    def names(self) -> List[str]:
        return sorted(self._tables)
