"""Random shuffling and mini-batch partitioning.

G-OLA's statistical guarantees rest on processing the input *in random
order*: every prefix ``D_i = ΔD_1 ∪ … ∪ ΔD_i`` must be a uniform random
sample of the full dataset ``D``.  The paper offers two mechanisms:

* partition-wise randomness — randomly pick existing partitions, which is
  valid when query attributes are uncorrelated with physical layout; and
* a pre-processing shuffle of the whole dataset, after which *any* subset
  is a uniform sample.

:class:`MiniBatchPartitioner` implements both and slices the (optionally
shuffled) table into ``k`` batches of uniform size.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from .table import Table


class MiniBatchPartitioner:
    """Splits a table into ``k`` uniform mini-batches in random order.

    Args:
        num_batches: The number of mini-batches ``k``.
        seed: Seed for the shuffle permutation (reproducible runs).
        shuffle: If True, rows are globally shuffled before slicing —
            the paper's pre-processing tool.  If False, the table is sliced
            in storage order and the *batch order* is randomized instead
            (partition-wise randomness).
    """

    def __init__(self, num_batches: int, seed: int = 0, shuffle: bool = True):
        if num_batches < 1:
            raise ValueError("num_batches must be >= 1")
        self.num_batches = num_batches
        self.seed = seed
        self.shuffle = shuffle

    def partition(self, table: Table) -> List[Table]:
        """Return the list of mini-batches, in processing order.

        Batch sizes differ by at most one row (uniform size up to
        divisibility); the paper assumes ``|ΔD_1| = … = |ΔD_k|``.
        """
        rng = np.random.default_rng(self.seed)
        n = table.num_rows
        if self.shuffle:
            perm = rng.permutation(n)
            shuffled = table.take(perm)
            bounds = self._bounds(n)
            return [shuffled.slice(lo, hi) for lo, hi in bounds]
        bounds = self._bounds(n)
        order = rng.permutation(len(bounds))
        return [table.slice(*bounds[i]) for i in order]

    def iter_batches(self, table: Table) -> Iterator[Table]:
        """Iterate mini-batches lazily in processing order.

        Yields the same batches as :meth:`partition` (``shuffled.slice(lo,
        hi)`` equals ``table.take(perm[lo:hi])`` row for row) but
        materializes only one batch at a time — no full shuffled copy —
        so conversion and streaming runs over mmap-backed tables peak at
        one batch of gathered rows instead of 2x the table.
        """
        rng = np.random.default_rng(self.seed)
        n = table.num_rows
        if self.shuffle:
            perm = rng.permutation(n)
            for lo, hi in self._bounds(n):
                yield table.take(perm[lo:hi])
            return
        bounds = self._bounds(n)
        order = rng.permutation(len(bounds))
        for i in order:
            yield table.slice(*bounds[i])

    def _bounds(self, n: int):
        edges = np.linspace(0, n, self.num_batches + 1).astype(np.int64)
        return [(int(edges[i]), int(edges[i + 1])) for i in range(self.num_batches)]


def batch_sizes(total_rows: int, num_batches: int) -> List[int]:
    """The sizes the partitioner will produce for ``total_rows`` rows."""
    edges = np.linspace(0, total_rows, num_batches + 1).astype(np.int64)
    return [int(edges[i + 1] - edges[i]) for i in range(num_batches)]


def shuffle_table(table: Table, seed: int = 0) -> Table:
    """The paper's pre-processing tool: globally shuffle a dataset.

    After shuffling, *any* contiguous subset of the rows is a uniform
    random sample of the original dataset, so partition-wise batch
    selection is statistically safe even when query attributes correlate
    with the original physical order (paper section 2).
    """
    rng = np.random.default_rng(seed)
    return table.take(rng.permutation(table.num_rows))


def random_sample(table: Table, fraction: float, seed: int = 0) -> Table:
    """A uniform random sample of ``fraction`` of the rows (no replacement).

    Utility used by tests and the BlinkDB-style comparisons in the
    benchmarks; not part of the G-OLA hot path.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    n = table.num_rows
    take = int(round(n * fraction))
    idx = rng.choice(n, size=take, replace=False)
    return table.take(np.sort(idx))
