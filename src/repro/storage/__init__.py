"""Storage substrate: columnar tables, partitioning, catalog, I/O."""

from .catalog import Catalog
from .io import read_csv, read_jsonl, write_csv, write_jsonl
from .partition import (
    MiniBatchPartitioner,
    batch_sizes,
    random_sample,
    shuffle_table,
)
from .table import Column, ColumnType, Schema, Table

# colstore is exposed lazily: its pruning module needs repro.expr,
# which itself imports .table from this package — an eager import here
# would cycle whenever repro.expr is what triggered this package.
_COLSTORE_EXPORTS = frozenset(
    {"ColstoreDataset", "ProjectionStore", "convert_table", "open_dataset"}
)


def __getattr__(name):
    if name in _COLSTORE_EXPORTS:
        from . import colstore

        return getattr(colstore, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Catalog",
    "ColstoreDataset",
    "Column",
    "ColumnType",
    "MiniBatchPartitioner",
    "ProjectionStore",
    "Schema",
    "Table",
    "batch_sizes",
    "convert_table",
    "open_dataset",
    "random_sample",
    "read_csv",
    "read_jsonl",
    "shuffle_table",
    "write_csv",
    "write_jsonl",
]
