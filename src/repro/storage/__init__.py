"""Storage substrate: columnar tables, partitioning, catalog, I/O."""

from .catalog import Catalog
from .io import read_csv, read_jsonl, write_csv, write_jsonl
from .partition import (
    MiniBatchPartitioner,
    batch_sizes,
    random_sample,
    shuffle_table,
)
from .table import Column, ColumnType, Schema, Table

__all__ = [
    "Catalog",
    "Column",
    "ColumnType",
    "MiniBatchPartitioner",
    "Schema",
    "Table",
    "batch_sizes",
    "random_sample",
    "read_csv",
    "read_jsonl",
    "shuffle_table",
    "write_csv",
    "write_jsonl",
]
