"""Columnar in-memory tables.

The storage substrate for the whole engine: a :class:`Table` is an ordered
set of named numpy columns of equal length.  All relational operators are
vectorized over these columns, which is what makes laptop-scale runs of the
paper's 100GB-scale experiments feasible.

Types are deliberately minimal (the four the paper's queries need); strings
are stored as object arrays so joins and group-bys can hash them directly.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import SchemaError


class ColumnType(enum.Enum):
    """Logical column types supported by the engine."""

    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"
    BOOL = "bool"

    @property
    def numpy_dtype(self):
        if self is ColumnType.INT64:
            return np.dtype(np.int64)
        if self is ColumnType.FLOAT64:
            return np.dtype(np.float64)
        if self is ColumnType.BOOL:
            return np.dtype(np.bool_)
        return np.dtype(object)

    @classmethod
    def infer(cls, array: np.ndarray) -> "ColumnType":
        """Infer a logical type from a numpy array's dtype."""
        if array.dtype == np.bool_:
            return cls.BOOL
        if np.issubdtype(array.dtype, np.integer):
            return cls.INT64
        if np.issubdtype(array.dtype, np.floating):
            return cls.FLOAT64
        return cls.STRING

    @property
    def is_numeric(self) -> bool:
        return self in (ColumnType.INT64, ColumnType.FLOAT64)


class Column:
    """A named, typed column definition (no data)."""

    __slots__ = ("name", "ctype")

    def __init__(self, name: str, ctype: ColumnType):
        if not name:
            raise SchemaError("column name must be non-empty")
        self.name = name
        self.ctype = ctype

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Column)
            and self.name == other.name
            and self.ctype is other.ctype
        )

    def __hash__(self) -> int:
        return hash((self.name, self.ctype))

    def __repr__(self) -> str:
        return f"Column({self.name!r}, {self.ctype.value})"


class Schema:
    """An ordered, duplicate-free list of :class:`Column` definitions."""

    def __init__(self, columns: Sequence[Column]):
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names: {dupes}")
        self._columns: Tuple[Column, ...] = tuple(columns)
        self._index: Dict[str, int] = {c.name: i for i, c in enumerate(columns)}

    @property
    def columns(self) -> Tuple[Column, ...]:
        return self._columns

    @property
    def names(self) -> List[str]:
        return [c.name for c in self._columns]

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other) -> bool:
        return isinstance(other, Schema) and self._columns == other._columns

    def __repr__(self) -> str:
        inner = ", ".join(f"{c.name}:{c.ctype.value}" for c in self._columns)
        return f"Schema({inner})"

    def field(self, name: str) -> Column:
        try:
            return self._columns[self._index[name]]
        except KeyError:
            raise SchemaError(f"unknown column {name!r}; have {self.names}") from None

    def index_of(self, name: str) -> int:
        if name not in self._index:
            raise SchemaError(f"unknown column {name!r}; have {self.names}")
        return self._index[name]

    def type_of(self, name: str) -> ColumnType:
        return self.field(name).ctype

    def select(self, names: Sequence[str]) -> "Schema":
        """A new schema containing only ``names``, in the given order."""
        return Schema([self.field(n) for n in names])


def _coerce(array: np.ndarray, ctype: ColumnType) -> np.ndarray:
    """Coerce ``array`` to the numpy dtype of ``ctype``, validating it."""
    want = ctype.numpy_dtype
    arr = np.asarray(array)
    if arr.ndim != 1:
        raise SchemaError(f"columns must be 1-D, got shape {arr.shape}")
    if arr.dtype == want:
        return arr
    if ctype is ColumnType.STRING:
        return arr.astype(object)
    try:
        return arr.astype(want)
    except (TypeError, ValueError) as exc:
        raise SchemaError(f"cannot coerce dtype {arr.dtype} to {ctype.value}") from exc


class Table:
    """An immutable-by-convention columnar table.

    Construct with :meth:`from_columns` (a mapping of name -> array) or
    :meth:`from_rows`.  Operations return new tables; column arrays are
    shared where safe (callers must not mutate returned arrays).
    """

    def __init__(self, schema: Schema, columns: Mapping[str, np.ndarray]):
        lengths = {name: len(arr) for name, arr in columns.items()}
        if set(lengths) != set(schema.names):
            raise SchemaError(
                f"columns {sorted(lengths)} do not match schema {schema.names}"
            )
        if lengths and len(set(lengths.values())) != 1:
            raise SchemaError(f"ragged columns: {lengths}")
        self._schema = schema
        self._columns = {
            c.name: _coerce(columns[c.name], c.ctype) for c in schema
        }
        self._num_rows = next(iter(lengths.values())) if lengths else 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_columns(
        cls,
        columns: Mapping[str, np.ndarray],
        schema: Optional[Schema] = None,
    ) -> "Table":
        """Build a table from a name -> array mapping, inferring types."""
        if schema is None:
            cols = []
            arrays = {}
            for name, values in columns.items():
                arr = np.asarray(values)
                if arr.dtype.kind in ("U", "S"):
                    arr = arr.astype(object)
                cols.append(Column(name, ColumnType.infer(arr)))
                arrays[name] = arr
            return cls(Schema(cols), arrays)
        return cls(schema, dict(columns))

    @classmethod
    def from_rows(
        cls, rows: Iterable[Sequence], schema: Schema
    ) -> "Table":
        """Build a table from row tuples matching ``schema``'s order."""
        rows = list(rows)
        columns = {}
        for i, col in enumerate(schema):
            values = [row[i] for row in rows]
            columns[col.name] = np.array(values, dtype=col.ctype.numpy_dtype)
        return cls(schema, columns)

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        """An empty table with the given schema."""
        return cls(
            schema,
            {c.name: np.empty(0, dtype=c.ctype.numpy_dtype) for c in schema},
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def num_rows(self) -> int:
        return self._num_rows

    def __len__(self) -> int:
        return self._num_rows

    def column(self, name: str) -> np.ndarray:
        """The backing array for ``name`` (treat as read-only)."""
        self._schema.field(name)
        return self._columns[name]

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def row(self, index: int) -> Tuple:
        """A single row as a tuple in schema order."""
        return tuple(self._columns[n][index] for n in self._schema.names)

    def iter_rows(self) -> Iterator[Tuple]:
        """Iterate rows as tuples (slow path; for tests and display)."""
        for i in range(self._num_rows):
            yield self.row(i)

    def to_pylist(self) -> List[dict]:
        """All rows as a list of dicts (slow path; for tests and display)."""
        names = self._schema.names
        return [
            {n: self._columns[n][i].item() if hasattr(self._columns[n][i], "item")
             else self._columns[n][i] for n in names}
            for i in range(self._num_rows)
        ]

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def take(self, indices_or_mask: np.ndarray) -> "Table":
        """Rows selected by an integer index array or boolean mask."""
        sel = np.asarray(indices_or_mask)
        if sel.dtype == np.bool_ and len(sel) != self._num_rows:
            raise SchemaError(
                f"mask length {len(sel)} != table length {self._num_rows}"
            )
        return Table(
            self._schema, {n: arr[sel] for n, arr in self._columns.items()}
        )

    def slice(self, start: int, stop: int) -> "Table":
        """Rows in ``[start, stop)`` (arrays are views, zero-copy)."""
        return Table(
            self._schema,
            {n: arr[start:stop] for n, arr in self._columns.items()},
        )

    def select(self, names: Sequence[str]) -> "Table":
        """A table with only ``names``, in the given order."""
        return Table(
            self._schema.select(names), {n: self._columns[n] for n in names}
        )

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """A table with columns renamed per ``mapping`` (others unchanged)."""
        cols = [
            Column(mapping.get(c.name, c.name), c.ctype) for c in self._schema
        ]
        arrays = {
            mapping.get(n, n): arr for n, arr in self._columns.items()
        }
        return Table(Schema(cols), arrays)

    def with_column(self, name: str, values: np.ndarray) -> "Table":
        """A table with ``name`` added (or replaced) by ``values``."""
        arr = np.asarray(values)
        if arr.dtype.kind in ("U", "S"):
            arr = arr.astype(object)
        ctype = ColumnType.infer(arr)
        if name in self._schema:
            cols = [
                Column(name, ctype) if c.name == name else c
                for c in self._schema
            ]
        else:
            cols = list(self._schema.columns) + [Column(name, ctype)]
        arrays = dict(self._columns)
        arrays[name] = arr
        return Table(Schema(cols), arrays)

    def drop(self, names: Sequence[str]) -> "Table":
        """A table without the given columns."""
        keep = [n for n in self._schema.names if n not in set(names)]
        return self.select(keep)

    @staticmethod
    def concat(tables: Sequence["Table"]) -> "Table":
        """Vertically concatenate tables with identical schemas."""
        if not tables:
            raise SchemaError("cannot concat zero tables")
        schema = tables[0].schema
        for t in tables[1:]:
            if t.schema != schema:
                raise SchemaError(
                    f"schema mismatch in concat: {t.schema} vs {schema}"
                )
        if len(tables) == 1:
            return tables[0]
        columns = {
            n: np.concatenate([t._columns[n] for t in tables])
            for n in schema.names
        }
        return Table(schema, columns)

    def sort_by(self, keys: Sequence[str], descending: Sequence[bool] = ()) -> "Table":
        """Stable multi-key sort.  ``descending[i]`` applies to ``keys[i]``."""
        if not keys:
            return self
        desc = list(descending) + [False] * (len(keys) - len(descending))
        order = np.arange(self._num_rows)
        # np.lexsort sorts by the *last* key first, so iterate reversed.
        for key, d in reversed(list(zip(keys, desc))):
            col = self._columns[key][order]
            idx = np.argsort(col, kind="stable")
            if d:
                idx = idx[::-1]
            order = order[idx]
        return self.take(order)

    def __repr__(self) -> str:
        return f"Table({self._schema!r}, num_rows={self._num_rows})"

    def head_str(self, n: int = 10) -> str:
        """A small aligned textual preview for consoles and docs."""
        names = self._schema.names
        rows = [names] + [
            [f"{v:.4g}" if isinstance(v, float) else str(v) for v in self.row(i)]
            for i in range(min(n, self._num_rows))
        ]
        widths = [max(len(r[i]) for r in rows) for i in range(len(names))]
        lines = [
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
            for row in rows
        ]
        if self._num_rows > n:
            lines.append(f"... ({self._num_rows} rows)")
        return "\n".join(lines)
