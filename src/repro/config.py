"""Configuration for G-OLA online execution.

A single immutable :class:`GolaConfig` object flows through the session,
controller and estimators so a run is fully described (and reproducible)
by its configuration plus the input data.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Optional


@dataclass(frozen=True)
class FaultsConfig:
    """Deterministic fault injection and recovery policy (``repro.faults``).

    All injection is driven by per-fault-point RNG streams derived from
    ``seed`` (defaulting to the master :attr:`GolaConfig.seed`), so two
    runs with the same configuration inject byte-identical fault
    sequences.  With ``enabled=False`` (the default) every fault point is
    a no-op and the engine's outputs are bit-identical to a build without
    the subsystem.

    Attributes:
        enabled: Master switch; when False no RNG stream is ever drawn.
        seed: Seed for the injection streams (None = the master seed).
        task_failure_prob: Per-attempt probability that a simulated
            cluster task fails (detected at its timeout, then retried).
        straggler_prob: Probability that a simulated task runs at
            ``straggler_factor`` × its nominal duration.
        straggler_factor: Slowdown multiplier for straggler tasks.
        task_timeout_factor: A task attempt is declared failed/straggling
            when it exceeds ``factor`` × its nominal duration.
        batch_failure_prob: Per-attempt probability that loading a
            mini-batch fails in the controller.  Failures within
            ``max_retries`` are retried; beyond that the batch is dropped
            and the run degrades (skip-and-reweight).
        row_corruption_prob: Probability that a CSV input row is
            corrupted at load time (exercises the quarantine path).
        worker_kill_prob: Per-attempt probability that a pool worker is
            SIGKILLed mid-task (``parallel.worker_kill``).  The
            supervisor detects the broken pool, rebuilds it and
            re-dispatches only the lost shards.
        worker_hang_prob: Per-attempt probability that a pool worker
            hangs for ``worker_hang_s`` (``parallel.worker_hang``);
            detected at the task deadline, the pool is abandoned and the
            shard re-dispatched.
        worker_hang_s: How long an injected hang sleeps.  Keep it above
            the task deadline so the hang is detected as such.
        result_corrupt_prob: Per-attempt probability that a worker's
            partial aggregate state comes back corrupted
            (``parallel.result_corrupt``); the merge-time integrity
            check rejects it and the shard is re-executed.
        submit_failure_prob: Per-attempt probability that admitting a
            query to the serving scheduler fails (``serve.submit``).
            Failures within ``max_retries`` are retried transparently;
            beyond that the submission is rejected with InjectedFault.
        step_failure_prob: Per-attempt probability that one scheduler
            step of an online query crashes (``scheduler.step``).
            Failures within ``max_retries`` are retried; beyond that the
            query is quarantined while other queries keep refining.
        max_retries: Bounded retry budget for tasks and batch loads.
        retry_backoff_s: Base delay before the first retry.
        retry_backoff_factor: Exponential backoff multiplier per retry.
        speculate: Launch a speculative copy of a straggler task once it
            exceeds its timeout; the task finishes at whichever copy
            completes first (simulated-latency model only).
        row_error_budget: Maximum tolerated fraction of quarantined rows
            per loaded file before the load is aborted with SchemaError.
        checkpoint_every: Auto-checkpoint the online run every N batches
            (0 disables; requires ``checkpoint_path``).
        checkpoint_path: Where auto-checkpoints are pickled.
    """

    enabled: bool = False
    seed: Optional[int] = None
    task_failure_prob: float = 0.0
    straggler_prob: float = 0.0
    straggler_factor: float = 8.0
    task_timeout_factor: float = 3.0
    batch_failure_prob: float = 0.0
    row_corruption_prob: float = 0.0
    worker_kill_prob: float = 0.0
    worker_hang_prob: float = 0.0
    worker_hang_s: float = 30.0
    result_corrupt_prob: float = 0.0
    submit_failure_prob: float = 0.0
    step_failure_prob: float = 0.0
    max_retries: int = 3
    retry_backoff_s: float = 0.05
    retry_backoff_factor: float = 2.0
    speculate: bool = True
    row_error_budget: float = 0.05
    checkpoint_every: int = 0
    checkpoint_path: Optional[str] = None

    def __post_init__(self) -> None:
        for name in ("task_failure_prob", "straggler_prob",
                     "batch_failure_prob", "row_corruption_prob",
                     "worker_kill_prob", "worker_hang_prob",
                     "result_corrupt_prob",
                     "submit_failure_prob", "step_failure_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")
        if self.task_timeout_factor < 1.0:
            raise ValueError("task_timeout_factor must be >= 1")
        if self.worker_hang_s < 0.0:
            raise ValueError("worker_hang_s must be >= 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff_s < 0.0:
            raise ValueError("retry_backoff_s must be >= 0")
        if self.retry_backoff_factor < 1.0:
            raise ValueError("retry_backoff_factor must be >= 1")
        if not 0.0 <= self.row_error_budget <= 1.0:
            raise ValueError("row_error_budget must be in [0, 1]")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")

    @classmethod
    def parse(cls, spec: str) -> "FaultsConfig":
        """Build a config from a ``key=value,key=value`` CLI string.

        An empty spec yields the enabled default profile; unknown keys
        raise ValueError.  Example::

            FaultsConfig.parse("batch_failure_prob=0.3,max_retries=1")
        """
        known = {f.name: f.type for f in fields(cls)}
        kwargs: dict = {"enabled": True}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or key not in known:
                raise ValueError(
                    f"unknown --faults key {key!r}; valid keys: "
                    + ", ".join(sorted(known))
                )
            value = value.strip()
            ftype = known[key]
            if "bool" in str(ftype):
                kwargs[key] = value.lower() in ("1", "true", "t", "yes")
            elif "int" in str(ftype):
                kwargs[key] = int(value)
            elif "float" in str(ftype):
                kwargs[key] = float(value)
            else:
                kwargs[key] = value
        return cls(**kwargs)


@dataclass(frozen=True)
class ParallelConfig:
    """Worker-pool knobs for ``repro.parallel``.

    Parallel execution is a pure throughput optimization: for any setting
    of these knobs (including serial) the engine's outputs are
    bit-identical, because bootstrap trial shards draw from per-(batch,
    trial) RNG streams and merge into disjoint state columns.  That is
    also why none of these fields participate in checkpoint fingerprints —
    a run checkpointed at one worker count may resume at another.

    Attributes:
        workers: Number of pool workers.  0 (default) disables the pool
            entirely and runs the classic serial path; 1 still exercises
            the full shard/merge machinery on a single worker (useful for
            testing the parallel path deterministically).
        backend: ``"process"`` (default) for a fork-based process pool,
            ``"thread"`` for a thread pool (no pickling; numpy releases
            the GIL in the hot kernels), or ``"serial"`` to run shard
            tasks inline while keeping the shard/merge code path.
        block_fanout: Also fan independent lineage blocks (same
            dependency level of the meta-plan) out across a thread pool.
        min_shard_rows: Batches smaller than this skip sharding — the
            per-task overhead would exceed the kernel time.
        supervise: Run shard tasks under the supervised execution layer
            (``repro.parallel.supervisor``): per-task deadlines, broken
            pool detection and rebuild, lost-shard re-dispatch, poison
            quarantine and merge-time integrity checks.  Because shard
            payloads are stateless per-(batch, trial) specs, every
            recovery re-execution is bit-identical, so supervision never
            changes results.
        task_deadline_s: A shard task still running this many seconds
            after dispatch is declared hung; the pool is abandoned
            (workers killed) and the task re-dispatched.  0 disables
            hang detection.
        task_retries: How many failed pool attempts (crash, hang,
            corrupt result) one shard tolerates before it is quarantined
            and run serially on the coordinator.
        shared_memory: Publish each folded batch's columns (group
            indices, aggregate arguments, surviving-row indices) once
            into ``multiprocessing.shared_memory`` and ship shard
            payloads as tiny (segment, dtype, shape, offset) specs
            instead of pickled arrays (``repro.parallel.shm``).  Only
            affects the process backend; degrades automatically to
            inline payloads where shared memory is unavailable.  Pure
            transport — results are bit-identical either way.
        pipeline: Overlap the coordinator's merge/publish work with the
            workers' fold of the next dispatch: sharded folds return
            immediately after dispatch and their partial states are
            merged at the next synchronization point (publish, snapshot,
            checkpoint) in dispatch order — which keeps float
            accumulation order, and therefore every bit of output,
            identical to the eager path.
        start_method: Process start method for pool workers: ``"auto"``
            (fork where available, else the platform default),
            ``"fork"``, ``"spawn"`` or ``"forkserver"``.  Spawn works
            because task functions are module-level and payloads are
            spec-sized; fork stays the default for its startup cost.
    """

    workers: int = 0
    backend: str = "process"
    block_fanout: bool = True
    min_shard_rows: int = 2048
    supervise: bool = True
    task_deadline_s: float = 60.0
    task_retries: int = 2
    shared_memory: bool = True
    pipeline: bool = True
    start_method: str = "auto"

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.backend not in ("process", "thread", "serial"):
            raise ValueError(
                "backend must be one of 'process', 'thread', 'serial'"
            )
        if self.min_shard_rows < 0:
            raise ValueError("min_shard_rows must be >= 0")
        if self.task_deadline_s < 0:
            raise ValueError("task_deadline_s must be >= 0")
        if self.task_retries < 0:
            raise ValueError("task_retries must be >= 0")
        if self.start_method not in ("auto", "fork", "spawn", "forkserver"):
            raise ValueError(
                "start_method must be one of 'auto', 'fork', 'spawn', "
                "'forkserver'"
            )

    @property
    def enabled(self) -> bool:
        return self.workers > 0

    @classmethod
    def parse(cls, spec: str) -> "ParallelConfig":
        """Build a config from a ``key=value,key=value`` CLI string.

        A bare integer is shorthand for ``workers=N``.  Example::

            ParallelConfig.parse("4")
            ParallelConfig.parse("workers=4,backend=thread")
        """
        spec = spec.strip()
        if spec.isdigit():
            return cls(workers=int(spec))
        known = {f.name: f.type for f in fields(cls)}
        kwargs: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or key not in known:
                raise ValueError(
                    f"unknown --workers key {key!r}; valid keys: "
                    + ", ".join(sorted(known))
                )
            value = value.strip()
            ftype = known[key]
            if "bool" in str(ftype):
                kwargs[key] = value.lower() in ("1", "true", "t", "yes")
            elif "int" in str(ftype):
                kwargs[key] = int(value)
            else:
                kwargs[key] = value
        return cls(**kwargs)


@dataclass(frozen=True)
class ServeConfig:
    """Knobs for the serving subsystem (``repro.serve``).

    The scheduler cooperatively interleaves mini-batch steps of many
    concurrent online queries on one scheduler thread, sharing one
    ``repro.parallel`` worker pool and (optionally) one batch-scan
    cache.  Because every query keeps its own RNG streams and block
    state, any interleaving produces snapshot streams bit-identical to
    running the same queries serially.

    Attributes:
        host: Bind address for the HTTP/JSON server.
        port: Bind port (0 picks an ephemeral port — used by tests).
        max_concurrent: Maximum queries refining at once; further
            admitted queries wait in the submission queue.
        queue_depth: Maximum queries waiting for a run slot; beyond
            this, submissions are rejected (HTTP 429 / AdmissionError).
        memory_budget_mb: Soft budget for the mini-batch memory of the
            queries running concurrently (estimated from their streamed
            tables).  A query whose admission would exceed it stays
            queued until slots free up; 0 disables the budget.  A query
            that exceeds the whole budget on its own is still admitted
            when nothing else runs (no livelock).
        default_deadline_s: Deadline applied to queries submitted
            without one: a query still refining this many seconds after
            it starts is finalized with its latest snapshot (state
            ``expired``).  0 means no deadline.
        max_steps_per_turn: Cap on mini-batch steps one query may take
            per scheduler visit.  The deficit round-robin scheduler
            grants each query ``priority`` step credits per cycle, so
            with the default of 1 every runnable query advances exactly
            one batch per cycle regardless of priority backlog.
        snapshot_queue: Per-subscriber buffer of undelivered snapshot
            records; a slower consumer has its oldest records dropped
            (counted, never blocking the scheduler).  Replay-from-start
            subscriptions are never lossy — the full per-query history
            is kept for the query's lifetime.
        scan_cache: Share per-mini-batch row partitions between
            concurrent queries over the same table (same ``num_batches``
            / ``seed`` / ``shuffle``) instead of re-slicing per query.
        scan_cache_entries: Maximum distinct partition lists kept (LRU).
        telemetry: Record serve-layer telemetry (SLO quantile
            histograms, sliding-window rates, per-query convergence
            streams; served at ``/metrics`` and
            ``/queries/<id>/telemetry``).  Telemetry never changes query
            results — disabling it only darkens the observability
            surface.
        drain_timeout_s: On graceful shutdown (SIGTERM), how long to
            wait for in-flight queries to finish refining before they
            are cancelled with their latest snapshot.  0 cancels
            immediately.
    """

    host: str = "127.0.0.1"
    port: int = 8000
    max_concurrent: int = 4
    queue_depth: int = 16
    memory_budget_mb: float = 0.0
    default_deadline_s: float = 0.0
    max_steps_per_turn: int = 1
    snapshot_queue: int = 256
    scan_cache: bool = True
    scan_cache_entries: int = 8
    telemetry: bool = True
    drain_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if self.queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        if self.memory_budget_mb < 0:
            raise ValueError("memory_budget_mb must be >= 0")
        if self.default_deadline_s < 0:
            raise ValueError("default_deadline_s must be >= 0")
        if self.max_steps_per_turn < 1:
            raise ValueError("max_steps_per_turn must be >= 1")
        if self.snapshot_queue < 1:
            raise ValueError("snapshot_queue must be >= 1")
        if self.scan_cache_entries < 1:
            raise ValueError("scan_cache_entries must be >= 1")
        if self.drain_timeout_s < 0:
            raise ValueError("drain_timeout_s must be >= 0")

    @classmethod
    def parse(cls, spec: str) -> "ServeConfig":
        """Build a config from a ``key=value,key=value`` CLI string.

        An empty spec yields the defaults; unknown keys raise
        ValueError.  Example::

            ServeConfig.parse("port=9000,max_concurrent=8,scan_cache=0")
        """
        known = {f.name: f.type for f in fields(cls)}
        kwargs: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or key not in known:
                raise ValueError(
                    f"unknown --serve key {key!r}; valid keys: "
                    + ", ".join(sorted(known))
                )
            value = value.strip()
            ftype = known[key]
            if "bool" in str(ftype):
                kwargs[key] = value.lower() in ("1", "true", "t", "yes")
            elif "int" in str(ftype):
                kwargs[key] = int(value)
            elif "float" in str(ftype):
                kwargs[key] = float(value)
            else:
                kwargs[key] = value
        return cls(**kwargs)


@dataclass(frozen=True)
class StorageConfig:
    """Knobs for the colstore storage tier (``repro.storage.colstore``).

    All of these are throughput/memory knobs, never correctness knobs:
    a catalog-registered colstore dataset produces snapshot streams
    bit-identical to the in-memory table it was converted from, with
    pruning on or off and at any worker count.  None of these fields
    participate in checkpoint fingerprints.

    Attributes:
        format: Substrate for converted datasets: ``"colstore"`` (the
            partition-file format) is the only on-disk format today.
        codec: Default column codec for ``repro convert``: ``"auto"``
            (smallest encoding per column), ``"plain"``, ``"dict"``,
            ``"rle"`` or ``"delta"``.
        mmap: Open partition files through ``np.memmap`` so column
            segments page in lazily and plain-coded numerics decode to
            zero-copy views (datasets larger than RAM stream
            batch-by-batch).  False reads files into heap buffers.
        prune: Consult per-chunk zone maps in the filter operators and
            the uncertain-set re-evaluation to skip predicate-disjoint
            chunks (``colstore.chunks_pruned``).  Pruned and unpruned
            runs are bit-identical; this only skips provably dead work.
        chunk_rows: Zone-map granularity (rows per chunk) used when
            writing partitions.
        projections: Persist per-lineage-block partial-aggregate fold
            states next to the dataset and warm-start recurring queries
            from them.  Off by default: a warm-started stream *starts*
            at a later batch, so it is deliberately not part of the
            bit-identity contract.
        projection_dir: Where projections live (None = the dataset's
            ``_projections`` subdirectory).
        projection_every: Save a projection every N folded batches
            (the final batch never saves — a warm start must still
            have at least one snapshot to emit).
    """

    format: str = "colstore"
    codec: str = "auto"
    mmap: bool = True
    prune: bool = True
    chunk_rows: int = 4096
    projections: bool = False
    projection_dir: Optional[str] = None
    projection_every: int = 1

    def __post_init__(self) -> None:
        if self.format not in ("colstore",):
            raise ValueError("format must be 'colstore'")
        if self.codec not in ("auto", "plain", "dict", "rle", "delta"):
            raise ValueError(
                "codec must be one of 'auto', 'plain', 'dict', 'rle', "
                "'delta'"
            )
        if self.chunk_rows < 16:
            raise ValueError("chunk_rows must be >= 16")
        if self.projection_every < 1:
            raise ValueError("projection_every must be >= 1")

    @classmethod
    def parse(cls, spec: str) -> "StorageConfig":
        """Build a config from a ``key=value,key=value`` CLI string."""
        known = {f.name: f.type for f in fields(cls)}
        kwargs: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or key not in known:
                raise ValueError(
                    f"unknown --storage key {key!r}; valid keys: "
                    + ", ".join(sorted(known))
                )
            value = value.strip()
            ftype = known[key]
            if "bool" in str(ftype):
                kwargs[key] = value.lower() in ("1", "true", "t", "yes")
            elif "int" in str(ftype):
                kwargs[key] = int(value)
            elif "float" in str(ftype):
                kwargs[key] = float(value)
            else:
                kwargs[key] = value
        return cls(**kwargs)


@dataclass(frozen=True)
class QaConfig:
    """Knobs for the QA harness (``repro.qa``): fuzzing + calibration.

    The differential fuzzer derives seeded random SQL from a generated
    catalog and executes each query through the exact batch engine, CDM,
    serial G-OLA and worker-parallel G-OLA (optionally the serve
    scheduler), failing on any structural divergence beyond float
    tolerance.  The calibration sweep replays paper queries across many
    seeds and tests empirical bootstrap-CI coverage against an exact
    binomial band around the nominal confidence.

    Attributes:
        queries: Number of random queries per fuzz sweep.
        seed: Master seed for table specs and query generation.
        rows: Fact-table row count for generated fuzz tables.
        num_batches: Mini-batch count for the online fuzz paths.
        bootstrap_trials: Bootstrap trials for the online fuzz paths.
        rtol: Relative float tolerance of the structural comparator.
        atol: Absolute float tolerance of the structural comparator.
        workers: Worker count for the parallel differential path.
        include_serve: Also run every query through the concurrent
            serving scheduler (slower; on in the nightly sweep).
        include_colstore: Also run every query's streamed table through
            a converted colstore dataset (zone-map pruning on) and
            require the snapshot stream to be bit-identical to the
            in-memory serial path.
        shrink: Minimize failing queries and write reproducer artifacts.
        artifact_dir: Where failing-query reproducers are written.
        grammar: Query-generation profile: "default" for the classic
            nested-aggregate grammar, "deep" to also generate window
            functions, DISTINCT/quantile aggregates, multi-fact
            subqueries over a second streamed fact, and NULL-heavy /
            empty-group edge biases.
        calibration_runs: Seeds per query in a calibration sweep.
        calibration_fraction: Batch fraction at which coverage is
            measured (0.5 = the mid-run snapshot).
        calibration_alpha: Significance of the binomial acceptance band.
    """

    queries: int = 50
    seed: int = 0
    rows: int = 4000
    num_batches: int = 4
    bootstrap_trials: int = 16
    rtol: float = 1e-6
    atol: float = 1e-9
    workers: int = 2
    include_serve: bool = False
    include_colstore: bool = False
    shrink: bool = True
    artifact_dir: str = "qa-artifacts"
    grammar: str = "default"
    calibration_runs: int = 100
    calibration_fraction: float = 0.5
    calibration_alpha: float = 1e-3

    def __post_init__(self) -> None:
        if self.queries < 1:
            raise ValueError("queries must be >= 1")
        if self.rows < 64:
            raise ValueError("rows must be >= 64")
        if self.num_batches < 2:
            raise ValueError("num_batches must be >= 2")
        if self.bootstrap_trials < 2:
            raise ValueError("bootstrap_trials must be >= 2")
        if self.rtol < 0 or self.atol < 0:
            raise ValueError("tolerances must be >= 0")
        if self.grammar not in ("default", "deep"):
            raise ValueError(
                f"unknown grammar {self.grammar!r}; "
                "one of 'default', 'deep'"
            )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.calibration_runs < 10:
            raise ValueError("calibration_runs must be >= 10")
        if not 0.0 < self.calibration_fraction <= 1.0:
            raise ValueError("calibration_fraction must be in (0, 1]")
        if not 0.0 < self.calibration_alpha < 1.0:
            raise ValueError("calibration_alpha must be in (0, 1)")

    @classmethod
    def parse(cls, spec: str) -> "QaConfig":
        """Build a config from a ``key=value,key=value`` CLI string."""
        known = {f.name: f.type for f in fields(cls)}
        kwargs: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or key not in known:
                raise ValueError(
                    f"unknown --qa key {key!r}; valid keys: "
                    + ", ".join(sorted(known))
                )
            value = value.strip()
            ftype = known[key]
            if "bool" in str(ftype):
                kwargs[key] = value.lower() in ("1", "true", "t", "yes")
            elif "int" in str(ftype):
                kwargs[key] = int(value)
            elif "float" in str(ftype):
                kwargs[key] = float(value)
            else:
                kwargs[key] = value
        return cls(**kwargs)


@dataclass(frozen=True)
class GolaConfig:
    """Tuning knobs for the G-OLA execution model.

    Attributes:
        num_batches: Number of uniform mini-batches ``k`` the input is
            randomly partitioned into.  The paper sets the batch granularity
            by how often the user wants the result refreshed.
        bootstrap_trials: Number of bootstrap trials ``B`` used for error
            estimation and for deriving variation ranges.
        epsilon_multiplier: Slack ``ε`` for variation ranges, expressed as a
            multiple of the standard deviation of the bootstrap replicas.
            The paper recommends 1.0 as a good balance between the
            recomputation probability and the uncertain-set size.
        confidence: Two-sided confidence level for reported intervals.
        seed: Master seed for every stochastic component (partition
            shuffling, bootstrap weights).  Identical seeds reproduce
            identical runs bit-for-bit.
        shuffle: Whether to randomly shuffle rows before partitioning
            (the paper's pre-processing for data whose physical order is
            correlated with query attributes).  Partition-wise randomness
            alone corresponds to ``shuffle=False``.
        retain_batches: Keep raw mini-batches after folding so the
            controller can recompute state when a variation range fails.
            Disabling this trades failure recovery for memory.
        max_quantile_sample: Reservoir size for mergeable quantile states.
        trial_aware_uncertain: Evaluate the (small) uncertain set under
            each bootstrap trial's own inner-aggregate replicas when
            computing error bars, instead of sharing the point-estimate
            classification across trials.  More faithful to the paper's
            "recompute the query per trial" bootstrap — the intervals then
            include inner-selection uncertainty — at ``O(B · |U|)`` extra
            work per snapshot.
        trace: Enable structured tracing (``repro.obs``) with an
            in-memory aggregating sink: hierarchical spans per batch,
            block and phase, rendered by the console frontends.  Off by
            default; disabled tracing costs one attribute check per
            record site.
        trace_path: Also write every span/event as one JSON object per
            line to this path (the ``python -m repro report`` input).
            Setting a path implies tracing.
        trace_rotate_mb: Rotate the ``trace_path`` JSONL file once it
            exceeds this many megabytes, keeping two rolled backups
            (``.1``, ``.2``).  0 (the default) never rotates — the
            pre-rotation behavior.
        metrics: Collect counters/gauges/histograms in the tracer's
            :class:`~repro.obs.MetricsRegistry` even when span tracing
            is off.  Tracing implies metrics.
        faults: Deterministic fault injection and recovery policy (see
            :class:`FaultsConfig`).  Disabled by default; with injection
            off the engine's outputs are bit-identical to a faultless
            build.
        parallel: Worker-pool configuration (see :class:`ParallelConfig`).
            Serial by default; any worker count yields bit-identical
            output.
        serve: Serving-subsystem configuration (see :class:`ServeConfig`):
            the concurrent multi-query scheduler and the streaming
            result server.  Inert unless a scheduler/server is created.
        qa: QA-harness configuration (see :class:`QaConfig`): the
            differential query fuzzer and the CI-calibration sweep.
            Inert during normal execution.
        storage: Colstore storage-tier configuration (see
            :class:`StorageConfig`).  Only consulted when a colstore
            dataset is registered in the catalog; pure in-memory runs
            never read it.
    """

    num_batches: int = 10
    bootstrap_trials: int = 100
    epsilon_multiplier: float = 1.0
    confidence: float = 0.95
    seed: int = 2015
    shuffle: bool = True
    retain_batches: bool = True
    max_quantile_sample: int = 4096
    trial_aware_uncertain: bool = True
    trace: bool = False
    trace_path: Optional[str] = None
    trace_rotate_mb: float = 0.0
    metrics: bool = False
    faults: FaultsConfig = field(default_factory=FaultsConfig)
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    serve: ServeConfig = field(default_factory=ServeConfig)
    qa: QaConfig = field(default_factory=QaConfig)
    storage: StorageConfig = field(default_factory=StorageConfig)

    def __post_init__(self) -> None:
        if self.num_batches < 1:
            raise ValueError("num_batches must be >= 1")
        if self.bootstrap_trials < 2:
            raise ValueError("bootstrap_trials must be >= 2 for error bars")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        if self.epsilon_multiplier < 0.0:
            raise ValueError("epsilon_multiplier must be >= 0")
        if self.max_quantile_sample < 16:
            raise ValueError("max_quantile_sample must be >= 16")
        if self.trace_rotate_mb < 0:
            raise ValueError("trace_rotate_mb must be >= 0")

    def with_options(self, **kwargs) -> "GolaConfig":
        """Return a copy of this config with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class ClusterConfig:
    """Parameters of the simulated cluster (see ``repro.cluster``).

    The defaults are calibrated so that the *shape* of the paper's latency
    figures is reproduced at laptop scale: a fixed per-task scheduling
    overhead, linear per-tuple operator costs, a per-batch driver overhead
    (result collection, plotting), and a multiplicative overhead for
    bootstrap error estimation (the paper reports ~60% overall).
    """

    num_workers: int = 8
    task_overhead_s: float = 0.020
    per_tuple_cost_s: float = 2.0e-7
    batch_overhead_s: float = 0.100
    shuffle_cost_per_tuple_s: float = 1.0e-7
    broadcast_cost_s: float = 0.010
    bootstrap_overhead_factor: float = 0.60
    rows_per_task: int = 2_000_000
    #: Re-evaluating a cached uncertain tuple only re-applies its
    #: predicates over in-memory lineage columns — far cheaper than
    #: ingesting a fresh tuple (scan, decode, full pipeline).
    cached_row_cost_factor: float = 0.25

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.rows_per_task < 1:
            raise ValueError("rows_per_task must be >= 1")
