"""Configuration for G-OLA online execution.

A single immutable :class:`GolaConfig` object flows through the session,
controller and estimators so a run is fully described (and reproducible)
by its configuration plus the input data.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class GolaConfig:
    """Tuning knobs for the G-OLA execution model.

    Attributes:
        num_batches: Number of uniform mini-batches ``k`` the input is
            randomly partitioned into.  The paper sets the batch granularity
            by how often the user wants the result refreshed.
        bootstrap_trials: Number of bootstrap trials ``B`` used for error
            estimation and for deriving variation ranges.
        epsilon_multiplier: Slack ``ε`` for variation ranges, expressed as a
            multiple of the standard deviation of the bootstrap replicas.
            The paper recommends 1.0 as a good balance between the
            recomputation probability and the uncertain-set size.
        confidence: Two-sided confidence level for reported intervals.
        seed: Master seed for every stochastic component (partition
            shuffling, bootstrap weights).  Identical seeds reproduce
            identical runs bit-for-bit.
        shuffle: Whether to randomly shuffle rows before partitioning
            (the paper's pre-processing for data whose physical order is
            correlated with query attributes).  Partition-wise randomness
            alone corresponds to ``shuffle=False``.
        retain_batches: Keep raw mini-batches after folding so the
            controller can recompute state when a variation range fails.
            Disabling this trades failure recovery for memory.
        max_quantile_sample: Reservoir size for mergeable quantile states.
        trial_aware_uncertain: Evaluate the (small) uncertain set under
            each bootstrap trial's own inner-aggregate replicas when
            computing error bars, instead of sharing the point-estimate
            classification across trials.  More faithful to the paper's
            "recompute the query per trial" bootstrap — the intervals then
            include inner-selection uncertainty — at ``O(B · |U|)`` extra
            work per snapshot.
        trace: Enable structured tracing (``repro.obs``) with an
            in-memory aggregating sink: hierarchical spans per batch,
            block and phase, rendered by the console frontends.  Off by
            default; disabled tracing costs one attribute check per
            record site.
        trace_path: Also write every span/event as one JSON object per
            line to this path (the ``python -m repro report`` input).
            Setting a path implies tracing.
        metrics: Collect counters/gauges/histograms in the tracer's
            :class:`~repro.obs.MetricsRegistry` even when span tracing
            is off.  Tracing implies metrics.
    """

    num_batches: int = 10
    bootstrap_trials: int = 100
    epsilon_multiplier: float = 1.0
    confidence: float = 0.95
    seed: int = 2015
    shuffle: bool = True
    retain_batches: bool = True
    max_quantile_sample: int = 4096
    trial_aware_uncertain: bool = True
    trace: bool = False
    trace_path: Optional[str] = None
    metrics: bool = False

    def __post_init__(self) -> None:
        if self.num_batches < 1:
            raise ValueError("num_batches must be >= 1")
        if self.bootstrap_trials < 2:
            raise ValueError("bootstrap_trials must be >= 2 for error bars")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        if self.epsilon_multiplier < 0.0:
            raise ValueError("epsilon_multiplier must be >= 0")
        if self.max_quantile_sample < 16:
            raise ValueError("max_quantile_sample must be >= 16")

    def with_options(self, **kwargs) -> "GolaConfig":
        """Return a copy of this config with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class ClusterConfig:
    """Parameters of the simulated cluster (see ``repro.cluster``).

    The defaults are calibrated so that the *shape* of the paper's latency
    figures is reproduced at laptop scale: a fixed per-task scheduling
    overhead, linear per-tuple operator costs, a per-batch driver overhead
    (result collection, plotting), and a multiplicative overhead for
    bootstrap error estimation (the paper reports ~60% overall).
    """

    num_workers: int = 8
    task_overhead_s: float = 0.020
    per_tuple_cost_s: float = 2.0e-7
    batch_overhead_s: float = 0.100
    shuffle_cost_per_tuple_s: float = 1.0e-7
    broadcast_cost_s: float = 0.010
    bootstrap_overhead_factor: float = 0.60
    rows_per_task: int = 2_000_000
    #: Re-evaluating a cached uncertain tuple only re-applies its
    #: predicates over in-memory lineage columns — far cheaper than
    #: ingesting a fresh tuple (scan, decode, full pipeline).
    cached_row_cost_factor: float = 0.25

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.rows_per_task < 1:
            raise ValueError("rows_per_task must be >= 1")
