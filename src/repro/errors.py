"""Exception hierarchy for the repro (G-OLA) library.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to distinguish front-end errors (parsing, binding) from
planning and runtime errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ParseError(ReproError):
    """The SQL text could not be tokenized or parsed.

    Carries the offending position so front ends can point at it.
    """

    def __init__(self, message: str, position: int = -1, text: str = ""):
        self.position = position
        self.text = text
        if position >= 0 and text:
            line = text.count("\n", 0, position) + 1
            col = position - (text.rfind("\n", 0, position) + 1) + 1
            message = f"{message} (line {line}, column {col})"
        super().__init__(message)


class BindError(ReproError):
    """A name in the query could not be resolved against the catalog."""


class PlanError(ReproError):
    """The bound query cannot be turned into an executable plan."""


class UnsupportedQueryError(PlanError):
    """The query is valid SQL but outside the engine's supported class.

    Classical OLA raises this for non-monotonic (nested-aggregate) queries;
    this is exactly the gap the G-OLA execution model fills.
    """


class ExecutionError(ReproError):
    """A runtime failure while evaluating a plan."""


class ShardLostError(ExecutionError):
    """A parallel shard task was permanently lost despite supervision.

    Raised by :mod:`repro.parallel.supervisor` only after the full
    recovery ladder failed: pool retries exhausted, the task quarantined
    and its serial fallback on the coordinator *also* failed.  The
    controller maps this onto the skip-and-reweight degraded path (the
    batch is dropped, later snapshots are flagged ``degraded``) instead
    of aborting the run.
    """

    def __init__(self, task_index: int, message: str):
        self.task_index = task_index
        super().__init__(f"[shard {task_index}] {message}")


class SchemaError(ReproError):
    """Inconsistent schema: unknown column, duplicate name, type mismatch."""


class CatalogError(ReproError):
    """Unknown or duplicate table in the catalog."""


class StorageError(ReproError):
    """A colstore partition file or manifest is malformed or unreadable.

    Raised on magic/footer corruption, unknown codecs, segment length
    mismatches, and manifest/schema inconsistencies.
    """


class RangeViolation(ReproError):
    """A running value or bootstrap replica escaped its variation range.

    The query controller catches this internally and schedules a
    recomputation of the affected delta state (paper section 3.2); it only
    propagates to callers if recovery itself fails.
    """

    def __init__(self, slot: str, value: float, low: float, high: float):
        self.slot = slot
        self.value = value
        self.low = low
        self.high = high
        super().__init__(
            f"uncertain value {slot!r} = {value:.6g} escaped its variation "
            f"range [{low:.6g}, {high:.6g}]"
        )


class QueryStopped(ReproError):
    """The user stopped an online query before all batches were processed."""


class InjectedFault(ReproError):
    """A deterministic fault injected by :mod:`repro.faults`.

    Raised only where a fault exhausts its recovery budget and no
    graceful-degradation path exists; recoverable injections surface as
    trace events and degraded snapshots instead.
    """

    def __init__(self, point: str, message: str):
        self.point = point
        super().__init__(f"[{point}] {message}")


class CheckpointError(ReproError):
    """A run checkpoint cannot be restored (wrong query, config, or file)."""


class AdmissionError(ReproError):
    """The serving scheduler refused a query submission.

    Raised when the run slots and the submission queue are both full (or
    the scheduler is shutting down); clients should back off and retry.
    The HTTP front end maps this to ``429 Too Many Requests``.
    """
