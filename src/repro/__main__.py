"""Command-line entry point: ``python -m repro <command>``.

Commands:
    demo      run the SBI quickstart online (generated data)
    console   interactive online-SQL console over generated workloads
    queries   list the bundled paper queries
"""

from __future__ import annotations

import argparse
import sys


def _demo(args) -> int:
    from .config import GolaConfig
    from .core.session import GolaSession
    from .frontends.console import ProgressConsole
    from .workloads.sessions import SBI_QUERY, generate_sessions

    session = GolaSession(
        GolaConfig(num_batches=args.batches, bootstrap_trials=80,
                   seed=args.seed)
    )
    print(f"generating {args.rows:,} session rows ...")
    session.register_table(
        "sessions", generate_sessions(args.rows, seed=args.seed)
    )
    query = session.sql(SBI_QUERY)
    print(query.plan_description, "\n")
    console = ProgressConsole()
    for snapshot in query.run_online():
        console.update(snapshot)
    console.finish()
    return 0


def _console(args) -> int:
    import runpy
    from pathlib import Path

    script = Path(__file__).resolve().parents[2] / "examples" / \
        "sql_console.py"
    if script.exists():
        sys.argv = [str(script), str(args.rows)]
        runpy.run_path(str(script), run_name="__main__")
        return 0
    # Installed without the examples directory: inline minimal console.
    from .config import GolaConfig
    from .core.session import GolaSession
    from .errors import ReproError
    from .frontends.console import render_snapshot
    from .workloads.conviva import generate_conviva
    from .workloads.sessions import generate_sessions

    session = GolaSession(GolaConfig(num_batches=10, bootstrap_trials=60))
    session.register_table("sessions", generate_sessions(args.rows))
    session.register_table("conviva", generate_conviva(args.rows))
    print("online SQL console; \\quit to exit")
    while True:
        try:
            line = input("gola> ").strip()
        except (EOFError, KeyboardInterrupt):
            return 0
        if line in ("\\quit", "\\q", "exit", "quit"):
            return 0
        if not line:
            continue
        try:
            for snapshot in session.sql(line).run_online():
                print(render_snapshot(snapshot))
        except ReproError as exc:
            print(f"error: {exc}")


def _queries(args) -> int:
    from .workloads import (
        ADSTREAM_QUERIES,
        CONVIVA_QUERIES,
        SBI_QUERY,
        TPCH_QUERIES,
    )

    print("SBI (paper Example 1):")
    print(SBI_QUERY)
    for suite, queries in (("Conviva", CONVIVA_QUERIES),
                           ("TPC-H", TPCH_QUERIES),
                           ("Ad stream", ADSTREAM_QUERIES)):
        for name, sql in queries.items():
            print(f"-- {suite} {name} " + "-" * 40)
            print(sql.strip())
            print()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="G-OLA reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the SBI quickstart online")
    demo.add_argument("--rows", type=int, default=100_000)
    demo.add_argument("--batches", type=int, default=10)
    demo.add_argument("--seed", type=int, default=2015)
    demo.set_defaults(fn=_demo)

    console = sub.add_parser("console", help="interactive SQL console")
    console.add_argument("--rows", type=int, default=50_000)
    console.set_defaults(fn=_console)

    queries = sub.add_parser("queries", help="print the bundled queries")
    queries.set_defaults(fn=_queries)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
