"""Command-line entry point: ``python -m repro <command>``.

Commands:
    demo      run the SBI quickstart online (generated data)
    console   interactive online-SQL console over generated workloads
    queries   list the bundled paper queries
    trace     run a query online with tracing, writing a JSONL event log
    report    render the per-phase/per-operator profile of a trace file
    serve     start the concurrent multi-query HTTP server
    submit    submit a query to a running server, stream its snapshots
    convert   write a CSV or generated workload as a colstore dataset
    inspect   report a colstore dataset's layout and stored state
    fuzz      differential query fuzzing across every execution path
    calibrate measure empirical bootstrap-CI coverage vs nominal
    chaos     kill/hang/corrupt workers mid-run; assert answers are
              bit-identical to serial
"""

from __future__ import annotations

import argparse
import sys


def _parse_faults(spec):
    """``--faults`` spec -> FaultsConfig (default when not given)."""
    from .config import FaultsConfig

    return FaultsConfig.parse(spec) if spec else FaultsConfig()


def _parse_workers(spec):
    """``--workers`` spec -> ParallelConfig (serial when not given)."""
    from .config import ParallelConfig

    return ParallelConfig.parse(spec) if spec else ParallelConfig()


def _print_recovery(metrics) -> None:
    """Print the run's ``faults.*`` counters, if any fired."""
    counters = metrics.snapshot().counters
    recovery = {
        name: value for name, value in counters.items()
        if name.startswith("faults.")
    }
    if not recovery:
        return
    print("recovery:")
    for name in sorted(recovery):
        print(f"  {name:<28} {recovery[name]:>10,}")


def _demo(args) -> int:
    from .config import GolaConfig
    from .core.session import GolaSession
    from .frontends.console import ProgressConsole
    from .workloads.sessions import SBI_QUERY, generate_sessions

    faults = _parse_faults(args.faults)
    tracer = None
    if faults.enabled:
        from .obs import MetricsRegistry, Tracer

        tracer = Tracer(metrics=MetricsRegistry(enabled=True))
    session = GolaSession(
        GolaConfig(num_batches=args.batches, bootstrap_trials=80,
                   seed=args.seed, faults=faults,
                   parallel=_parse_workers(args.workers)),
        tracer=tracer,
    )
    print(f"generating {args.rows:,} session rows ...")
    session.register_table(
        "sessions", generate_sessions(args.rows, seed=args.seed)
    )
    query = session.sql(SBI_QUERY)
    print(query.plan_description, "\n")
    console = ProgressConsole()
    for snapshot in query.run_online():
        console.update(snapshot)
    console.finish()
    if tracer is not None:
        _print_recovery(tracer.metrics)
    return 0


def _console(args) -> int:
    import runpy
    from pathlib import Path

    script = Path(__file__).resolve().parents[2] / "examples" / \
        "sql_console.py"
    if script.exists():
        sys.argv = [str(script), str(args.rows)]
        runpy.run_path(str(script), run_name="__main__")
        return 0
    # Installed without the examples directory: inline minimal console.
    from .config import GolaConfig
    from .core.session import GolaSession
    from .errors import ReproError
    from .frontends.console import render_snapshot
    from .workloads.conviva import generate_conviva
    from .workloads.sessions import generate_sessions

    session = GolaSession(GolaConfig(num_batches=10, bootstrap_trials=60))
    session.register_table("sessions", generate_sessions(args.rows))
    session.register_table("conviva", generate_conviva(args.rows))
    print("online SQL console; \\quit to exit")
    while True:
        try:
            line = input("gola> ").strip()
        except (EOFError, KeyboardInterrupt):
            return 0
        if line in ("\\quit", "\\q", "exit", "quit"):
            return 0
        if not line:
            continue
        try:
            for snapshot in session.sql(line).run_online():
                print(render_snapshot(snapshot))
        except ReproError as exc:
            print(f"error: {exc}")


def _trace(args) -> int:
    from .config import GolaConfig
    from .core.session import GolaSession
    from .frontends.console import ProgressConsole
    from .errors import ReproError
    from .obs import AggregatingSink, JsonlSink, MetricsRegistry, TeeSink, \
        Tracer
    from .workloads.conviva import generate_conviva
    from .workloads.sessions import SBI_QUERY, generate_sessions

    agg = AggregatingSink()
    if args.trace_out:
        try:  # fail before the run, not at the first span
            open(args.trace_out, "w", encoding="utf-8").close()
        except OSError as exc:
            print(f"error: cannot write {args.trace_out}: {exc.strerror}",
                  file=sys.stderr)
            return 1
        sink = TeeSink(agg, JsonlSink(args.trace_out))
    else:
        sink = agg
    tracer = Tracer(sink, metrics=MetricsRegistry(enabled=True))

    session = GolaSession(
        GolaConfig(num_batches=args.batches, bootstrap_trials=80,
                   seed=args.seed, faults=_parse_faults(args.faults),
                   parallel=_parse_workers(args.workers)),
        tracer=tracer,
    )
    print(f"generating {args.rows:,} rows ...")
    session.register_table(
        "sessions", generate_sessions(args.rows, seed=args.seed)
    )
    session.register_table(
        "conviva", generate_conviva(args.rows, seed=args.seed)
    )
    sql = SBI_QUERY if args.query.lower() == "sbi" else args.query
    try:
        query = session.sql(sql)
        console = ProgressConsole(tracer=tracer, max_rows=5)
        for snapshot in query.run_online():
            console.update(snapshot)
        console.finish()
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        tracer.close()
    _print_recovery(tracer.metrics)
    if args.trace_out:
        print(f"trace written to {args.trace_out}")
    return 0


def _report(args) -> int:
    import json

    from .obs import build_profile, load_events, render_profile

    try:
        records = load_events(args.trace)
    except OSError as exc:
        print(f"error: cannot read {args.trace}: {exc.strerror}",
              file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"error: {args.trace} is not a JSONL trace file ({exc})",
              file=sys.stderr)
        return 1
    if not records:
        print(f"{args.trace}: no trace events")
        return 1
    print(render_profile(build_profile(records)))
    return 0


def _serve(args) -> int:
    import dataclasses

    from .config import GolaConfig, ServeConfig
    from .core.session import GolaSession
    from .obs import MetricsRegistry, Tracer
    from .serve import GolaServer, QueryScheduler
    from .workloads import generate_conviva, generate_sessions, generate_tpch

    serve = ServeConfig.parse(args.serve) if args.serve else ServeConfig()
    overrides = {}
    if args.host is not None:
        overrides["host"] = args.host
    if args.port is not None:
        overrides["port"] = args.port
    if overrides:
        serve = dataclasses.replace(serve, **overrides)
    config = GolaConfig(
        num_batches=args.batches, bootstrap_trials=80, seed=args.seed,
        faults=_parse_faults(args.faults),
        parallel=_parse_workers(args.workers), serve=serve,
    )
    tracer = Tracer(metrics=MetricsRegistry(enabled=True))
    session = GolaSession(config, tracer=tracer)
    print(f"generating {args.rows:,} rows per workload table ...")
    session.register_table(
        "sessions", generate_sessions(args.rows, seed=args.seed)
    )
    session.register_table(
        "conviva", generate_conviva(args.rows, seed=args.seed)
    )
    session.register_table("tpch", generate_tpch(args.rows, seed=args.seed))
    server = GolaServer(QueryScheduler(session, serve=serve))
    server.start()

    def ready():
        # Printed only once signal handlers are live, so "serving on"
        # means a SIGTERM from here on always drains gracefully.
        print(f"serving on {server.url}  (Ctrl-C to stop)")
        print("submit a query and stream its estimates:")
        print(f"  curl -s -X POST {server.url}/query "
              "-d '{\"sql\": \"SELECT AVG(play_time) FROM sessions\"}'")
        print(f"  curl -sN {server.url}/query/q1/snapshots")

    server.serve_forever(ready=ready)
    return 0


def _submit(args) -> int:
    import json
    import urllib.error
    import urllib.request

    from .workloads import SBI_QUERY

    base = f"http://{args.host}:{args.port}"
    body = {"sql": SBI_QUERY if args.sql.lower() == "sbi" else args.sql,
            "priority": args.priority}
    if args.deadline is not None:
        body["deadline_s"] = args.deadline
    if args.target_rsd is not None:
        body["target_rsd"] = args.target_rsd
    request = urllib.request.Request(
        base + "/query", method="POST",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            submitted = json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode("utf-8", "replace")
        print(f"error: HTTP {exc.code}: {detail}", file=sys.stderr)
        return 1
    except urllib.error.URLError as exc:
        print(f"error: cannot reach {base}: {exc.reason}", file=sys.stderr)
        return 1
    print(f"submitted as {submitted['id']}", file=sys.stderr)
    with urllib.request.urlopen(
        base + submitted["snapshots_url"], timeout=args.timeout
    ) as resp:
        for line in resp:
            line = line.strip()
            if line:
                print(line.decode("utf-8"))
    return 0


def _top(args) -> int:
    from .frontends.top import run_top

    base = args.url or f"http://{args.host}:{args.port}"
    return run_top(base.rstrip("/"), interval_s=args.interval,
                   once=args.once)


def _loadgen(args) -> int:
    import json

    from .serve.loadgen import LoadGenerator, LoadSpec

    base = args.url or f"http://{args.host}:{args.port}"
    spec = LoadSpec(
        rate_qps=args.rate,
        clients=args.clients,
        queries=args.queries,
        seed=args.seed,
        open_loop=not args.closed_loop,
        think_s=args.think,
        abandon_prob=args.abandon_prob,
        abandon_after_s=args.abandon_after,
        target_rel_width=args.target_rel_width,
        num_batches=args.batches,
        timeout_s=args.timeout,
    )
    report = LoadGenerator(spec).run(base.rstrip("/"))
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.json}", file=sys.stderr)
    print(text)
    failed = report["errors"] > 0 or report["completed"] == 0
    return 1 if failed else 0


def _convert(args) -> int:
    from .faults.quarantine import RowQuarantine
    from .errors import ReproError
    from .storage.colstore import convert_table

    quarantine = None
    source = None
    try:
        if args.csv is not None:
            from .storage.io import read_csv

            source = args.csv
            quarantine = RowQuarantine(
                error_budget=args.error_budget, label=args.csv
            )
            print(f"loading {args.csv} ...")
            table = read_csv(args.csv, quarantine=quarantine)
        else:
            from .workloads import (
                generate_conviva,
                generate_sessions,
                generate_tpch,
            )

            generate = {"sessions": generate_sessions,
                        "conviva": generate_conviva,
                        "tpch": generate_tpch}[args.workload]
            source = f"workload:{args.workload}"
            print(f"generating {args.rows:,} {args.workload} rows ...")
            table = generate(args.rows, seed=args.seed)
        dataset = convert_table(
            table, args.out, num_batches=args.batches, seed=args.seed,
            shuffle=not args.no_shuffle, codec=args.codec,
            chunk_rows=args.chunk_rows, quarantine=quarantine,
            source=source,
        )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    encoded = sum(p["bytes"] for p in dataset.manifest["partitions"])
    print(
        f"wrote {dataset.num_batches} partitions, "
        f"{dataset.num_rows:,} rows, {encoded:,} encoded bytes "
        f"(~{encoded / max(dataset.estimated_bytes, 1):.0%} of decoded) "
        f"to {args.out}"
    )
    if quarantine is not None and quarantine.rows:
        print(f"quarantined {len(quarantine.rows)} malformed row(s) "
              "(recorded in the manifest; see 'repro inspect')")
    print(f"fingerprint: {dataset.fingerprint}")
    return 0


def _inspect(args) -> int:
    import json

    from .errors import ReproError
    from .storage.colstore import ProjectionStore, open_dataset

    try:
        dataset = open_dataset(args.dataset)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    manifest = dataset.manifest
    partitions = manifest["partitions"]
    encoded = sum(p["bytes"] for p in partitions)
    codec_counts = {}
    zone_summary = {}
    for index in range(dataset.num_batches):
        for col in dataset.reader(index).footer["columns"]:
            codec_counts[col["codec"]] = \
                codec_counts.get(col["codec"], 0) + 1
            zones = col.get("zones") or []
            entry = zone_summary.setdefault(
                col["name"],
                {"type": col["type"], "chunks": 0, "nulls": 0,
                 "lo": None, "hi": None},
            )
            entry["chunks"] += len(zones)
            for z in zones:
                entry["nulls"] += z["nulls"]
                if z["lo"] is not None and entry["type"] != "string":
                    entry["lo"] = z["lo"] if entry["lo"] is None \
                        else min(entry["lo"], z["lo"])
                    entry["hi"] = z["hi"] if entry["hi"] is None \
                        else max(entry["hi"], z["hi"])
    projections = ProjectionStore(dataset.projection_dir).entries()
    quarantine = manifest.get("quarantine")
    report = {
        "path": dataset.path,
        "fingerprint": dataset.fingerprint,
        "num_rows": dataset.num_rows,
        "num_batches": dataset.num_batches,
        "seed": dataset.seed,
        "shuffle": dataset.shuffle,
        "chunk_rows": manifest["chunk_rows"],
        "schema": manifest["schema"],
        "source": manifest.get("source"),
        "encoded_bytes": encoded,
        "estimated_decoded_bytes": dataset.estimated_bytes,
        "codec_segments": codec_counts,
        "zones": zone_summary,
        "partitions": partitions,
        "quarantine": quarantine,
        "projections": projections,
    }
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(f"{dataset.path}: colstore dataset "
          f"(fingerprint {dataset.fingerprint})")
    print(f"  rows {dataset.num_rows:,} in {dataset.num_batches} "
          f"partitions (seed={dataset.seed}, shuffle={dataset.shuffle}, "
          f"chunk_rows={manifest['chunk_rows']})")
    if manifest.get("source"):
        print(f"  source: {manifest['source']}")
    print(f"  encoded {encoded:,} bytes "
          f"(~{encoded / max(dataset.estimated_bytes, 1):.0%} of "
          f"estimated decoded {dataset.estimated_bytes:,})")
    print("  columns:")
    for name, entry in zone_summary.items():
        span = ""
        if entry["lo"] is not None:
            span = f", range [{entry['lo']:g}, {entry['hi']:g}]"
        print(f"    {name:<16} {entry['type']:<8} "
              f"{entry['chunks']} zone chunks, "
              f"{entry['nulls']} nulls{span}")
    print("  codec segments: " + ", ".join(
        f"{codec}={count}" for codec, count in sorted(codec_counts.items())
    ))
    if quarantine and quarantine["rows"]:
        rows = quarantine["rows"]
        print(f"  quarantined rows: {len(rows)} "
              f"(budget {quarantine['error_budget']}, "
              f"seen {quarantine['total_seen']})")
        for row in rows[:10]:
            print(f"    line {row['line_number']}: "
                  f"{row['column']}={row['value']!r} ({row['reason']})")
        if len(rows) > 10:
            print(f"    ... and {len(rows) - 10} more")
    else:
        print("  quarantined rows: none")
    if projections:
        print(f"  projections: {len(projections)}")
        for entry in projections[:10]:
            print(f"    {entry['state_file']}: "
                  f"batch {entry['batch_index']}, "
                  f"query {entry['query_fp'][:12]}..., "
                  f"{entry['state_bytes']:,} bytes")
    else:
        print("  projections: none")
    return 0


def _fuzz(args) -> int:
    from .qa.cli import main_fuzz

    return main_fuzz(args)


def _calibrate(args) -> int:
    from .qa.cli import main_calibrate

    return main_calibrate(args)


def _chaos(args) -> int:
    import dataclasses
    import json

    from .faults.chaos import ChaosRunner, ChaosSpec

    spec = ChaosSpec.smoke() if args.smoke else ChaosSpec()
    overrides = {}
    if args.queries:
        overrides["queries"] = tuple(
            q.strip().lower() for q in args.queries.split(",") if q.strip()
        )
    for name in ("rows", "batches", "workers", "seed"):
        value = getattr(args, name)
        if value is not None:
            overrides[name] = value
    if args.no_killer:
        overrides["external_killer"] = False
    if overrides:
        spec = dataclasses.replace(spec, **overrides)
    report = ChaosRunner(
        spec, progress=lambda msg: print(msg, file=sys.stderr)
    ).run()
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    print(text)
    return 0 if report["identical"] else 1


def _queries(args) -> int:
    from .workloads import (
        ADSTREAM_QUERIES,
        CONVIVA_QUERIES,
        SBI_QUERY,
        TPCH_QUERIES,
    )

    print("SBI (paper Example 1):")
    print(SBI_QUERY)
    for suite, queries in (("Conviva", CONVIVA_QUERIES),
                           ("TPC-H", TPCH_QUERIES),
                           ("Ad stream", ADSTREAM_QUERIES)):
        for name, sql in queries.items():
            print(f"-- {suite} {name} " + "-" * 40)
            print(sql.strip())
            print()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="G-OLA reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    faults_help = (
        "enable fault injection: 'key=value,...' over FaultsConfig "
        "fields, e.g. 'batch_failure_prob=0.3,max_retries=1,seed=7'"
    )
    workers_help = (
        "parallel execution: a worker count ('4') or 'key=value,...' "
        "over ParallelConfig fields, e.g. 'workers=4,backend=thread'; "
        "results are bit-identical to the serial default"
    )

    demo = sub.add_parser("demo", help="run the SBI quickstart online")
    demo.add_argument("--rows", type=int, default=100_000)
    demo.add_argument("--batches", type=int, default=10)
    demo.add_argument("--seed", type=int, default=2015)
    demo.add_argument("--faults", default=None, metavar="SPEC",
                      help=faults_help)
    demo.add_argument("--workers", default=None, metavar="SPEC",
                      help=workers_help)
    demo.set_defaults(fn=_demo)

    console = sub.add_parser("console", help="interactive SQL console")
    console.add_argument("--rows", type=int, default=50_000)
    console.set_defaults(fn=_console)

    queries = sub.add_parser("queries", help="print the bundled queries")
    queries.set_defaults(fn=_queries)

    trace = sub.add_parser(
        "trace", help="run a query online with tracing enabled"
    )
    trace.add_argument(
        "query", nargs="?", default="sbi",
        help="'sbi' (default) or a SQL string over the generated "
             "'sessions'/'conviva' tables",
    )
    trace.add_argument("--rows", type=int, default=100_000)
    trace.add_argument("--batches", type=int, default=10)
    trace.add_argument("--seed", type=int, default=2015)
    trace.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the JSONL event log here (e.g. trace.jsonl)",
    )
    trace.add_argument("--faults", default=None, metavar="SPEC",
                       help=faults_help)
    trace.add_argument("--workers", default=None, metavar="SPEC",
                       help=workers_help)
    trace.set_defaults(fn=_trace)

    report = sub.add_parser(
        "report", help="profile a JSONL trace file"
    )
    report.add_argument("trace", help="path to a trace .jsonl file")
    report.set_defaults(fn=_report)

    serve = sub.add_parser(
        "serve",
        help="serve concurrent online queries over HTTP (NDJSON streams)",
    )
    serve.add_argument("--host", default=None,
                       help="bind address (default from ServeConfig)")
    serve.add_argument("--port", type=int, default=None,
                       help="bind port; 0 picks an ephemeral port")
    serve.add_argument("--rows", type=int, default=100_000,
                       help="rows per generated workload table")
    serve.add_argument("--batches", type=int, default=20)
    serve.add_argument("--seed", type=int, default=2015)
    serve.add_argument(
        "--serve", default=None, metavar="SPEC",
        help="scheduler knobs: 'key=value,...' over ServeConfig fields, "
             "e.g. 'max_concurrent=8,queue_depth=32,max_steps_per_turn=2'",
    )
    serve.add_argument("--faults", default=None, metavar="SPEC",
                       help=faults_help)
    serve.add_argument("--workers", default=None, metavar="SPEC",
                       help=workers_help)
    serve.set_defaults(fn=_serve)

    submit = sub.add_parser(
        "submit", help="submit a query to a running server and stream it"
    )
    submit.add_argument(
        "sql", nargs="?", default="sbi",
        help="'sbi' (default) or a SQL string over the served tables",
    )
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=8000)
    submit.add_argument("--priority", type=int, default=1)
    submit.add_argument("--deadline", type=float, default=None,
                        help="per-query deadline in seconds")
    submit.add_argument("--target-rsd", type=float, default=None,
                        help="stop once relative stdev reaches this")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="stream read timeout in seconds")
    submit.set_defaults(fn=_submit)

    top = sub.add_parser(
        "top", help="live terminal dashboard over a running server"
    )
    top.add_argument("--url", default=None,
                     help="server base URL (overrides --host/--port)")
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=8000)
    top.add_argument("--interval", type=float, default=2.0,
                     help="refresh interval in seconds")
    top.add_argument("--once", action="store_true",
                     help="print one frame and exit")
    top.set_defaults(fn=_top)

    loadgen = sub.add_parser(
        "loadgen",
        help="seeded Poisson load against a running server, with a "
             "latency/throughput report",
    )
    loadgen.add_argument("--url", default=None,
                         help="server base URL (overrides --host/--port)")
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8000)
    loadgen.add_argument("--rate", type=float, default=4.0,
                         help="mean Poisson arrival rate (queries/s)")
    loadgen.add_argument("--clients", type=int, default=4,
                         help="concurrent client threads")
    loadgen.add_argument("--queries", type=int, default=24,
                         help="total queries to submit")
    loadgen.add_argument("--seed", type=int, default=2015)
    loadgen.add_argument("--closed-loop", action="store_true",
                         help="closed loop with think times instead of "
                              "scheduled Poisson arrivals")
    loadgen.add_argument("--think", type=float, default=0.1,
                         help="mean think time (closed loop)")
    loadgen.add_argument("--abandon-prob", type=float, default=0.0,
                         help="per-query abandonment probability")
    loadgen.add_argument("--abandon-after", type=float, default=2.0,
                         help="patience before an abandoner cancels")
    loadgen.add_argument("--target-rel-width", type=float, default=0.01,
                         help="convergence target: CI half-width / "
                              "|estimate|")
    loadgen.add_argument("--batches", type=int, default=0,
                         help="per-query num_batches override (0 = "
                              "server default)")
    loadgen.add_argument("--timeout", type=float, default=120.0)
    loadgen.add_argument("--json", default=None, metavar="PATH",
                         help="also write the report JSON here")
    loadgen.set_defaults(fn=_loadgen)

    convert = sub.add_parser(
        "convert",
        help="convert a CSV file or generated workload into a "
             "compressed colstore dataset directory",
    )
    convert_src = convert.add_mutually_exclusive_group(required=True)
    convert_src.add_argument("--csv", default=None, metavar="PATH",
                             help="source CSV file (malformed rows are "
                                  "quarantined into the manifest)")
    convert_src.add_argument("--workload", default=None,
                             choices=("sessions", "conviva", "tpch"),
                             help="generate this paper workload instead")
    convert.add_argument("--out", required=True, metavar="DIR",
                         help="dataset directory to write")
    convert.add_argument("--rows", type=int, default=100_000,
                         help="rows when generating a workload")
    convert.add_argument("--batches", type=int, default=20,
                         help="mini-batch partitions to write")
    convert.add_argument("--seed", type=int, default=2015)
    convert.add_argument("--no-shuffle", action="store_true",
                         help="partition without the random shuffle")
    convert.add_argument("--codec", default="auto",
                         choices=("auto", "plain", "dict", "rle", "delta"),
                         help="column codec (auto picks the smallest "
                              "per column chunk)")
    convert.add_argument("--chunk-rows", type=int, default=4096,
                         help="rows per zone-map chunk")
    convert.add_argument("--error-budget", type=float, default=0.05,
                         help="malformed-row fraction tolerated before "
                              "the CSV load aborts")
    convert.set_defaults(fn=_convert)

    inspect_p = sub.add_parser(
        "inspect",
        help="report a colstore dataset's layout: partitions, codecs, "
             "zone maps, quarantined rows, projections",
    )
    inspect_p.add_argument("dataset", help="dataset directory")
    inspect_p.add_argument("--json", action="store_true",
                           help="emit the full report as JSON")
    inspect_p.set_defaults(fn=_inspect)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: random queries through every "
             "execution path, comparing final answers",
    )
    fuzz.add_argument("--seed", type=int, default=None,
                      help="master seed for schema/data/query generation")
    fuzz.add_argument("--queries", type=int, default=None,
                      help="number of random queries to check")
    fuzz.add_argument("--rows", type=int, default=None,
                      help="rows in the generated fact table")
    fuzz.add_argument("--serve", action="store_true",
                      help="also run each query through the scheduler")
    fuzz.add_argument("--colstore", action="store_true",
                      help="also stream each query from a converted "
                           "on-disk colstore dataset (bit-identity "
                           "checked against the in-memory stream)")
    fuzz.add_argument("--grammar", default=None,
                      choices=("default", "deep"),
                      help="query-generation profile: 'deep' adds "
                           "window functions, DISTINCT/quantile "
                           "aggregates, multi-fact subqueries and "
                           "NULL-heavy/empty-group edge biases")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="skip minimizing divergent queries")
    fuzz.add_argument("--artifact-dir", default=None, metavar="DIR",
                      help="where reproducer artifacts are written")
    fuzz.add_argument("--inject-bug", default=None, metavar="PATH",
                      choices=("batch", "cdm", "serial", "parallel",
                               "serve", "colstore"),
                      help="corrupt this path's results (harness "
                           "self-check: the sweep must then fail)")
    fuzz.add_argument("--replay", default=None, metavar="ARTIFACT",
                      help="replay a saved reproducer instead of fuzzing")
    fuzz.add_argument("--out", default=None, metavar="PATH",
                      help="write the JSON divergence report here")
    fuzz.add_argument(
        "--qa", default=None, metavar="SPEC",
        help="base knobs: 'key=value,...' over QaConfig fields, e.g. "
             "'num_batches=6,bootstrap_trials=32,workers=4'",
    )
    fuzz.set_defaults(fn=_fuzz)

    calibrate = sub.add_parser(
        "calibrate",
        help="empirical bootstrap-CI coverage vs an exact binomial band",
    )
    calibrate.add_argument(
        "--queries", default=None, metavar="NAMES",
        help="comma-separated workload queries (default: all of "
             "sbi,c3,q17,q20,t_roll,t_dist,t_p95; the t_* names are "
             "the deep-surface taxi queries)",
    )
    calibrate.add_argument("--runs", type=int, default=None,
                           help="runs (seeds) per query")
    calibrate.add_argument("--rows", type=int, default=None,
                           help="rows in the generated workload table")
    calibrate.add_argument("--batches", type=int, default=6,
                           help="mini-batches per run")
    calibrate.add_argument("--trials", type=int, default=60,
                           help="bootstrap trials per snapshot")
    calibrate.add_argument("--seed", type=int, default=None,
                           help="base seed offset for the run sweep")
    calibrate.add_argument("--alpha", type=float, default=None,
                           help="binomial band significance level")
    calibrate.add_argument("--out", default=None, metavar="PATH",
                           help="write the JSON calibration report here")
    calibrate.add_argument(
        "--qa", default=None, metavar="SPEC",
        help="base knobs: 'key=value,...' over QaConfig fields, e.g. "
             "'calibration_runs=200,calibration_fraction=0.5'",
    )
    calibrate.set_defaults(fn=_calibrate)

    chaos = sub.add_parser(
        "chaos",
        help="run the paper workload while workers are SIGKILLed, "
             "suspended and corrupted; assert snapshots bit-identical "
             "to serial",
    )
    chaos.add_argument("--smoke", action="store_true",
                       help="CI-sized campaign: one query, small table")
    chaos.add_argument("--queries", default=None, metavar="NAMES",
                       help="comma-separated workload queries "
                            "(default sbi,c3,q17; smoke: sbi)")
    chaos.add_argument("--rows", type=int, default=None,
                       help="rows in each generated workload table")
    chaos.add_argument("--batches", type=int, default=None,
                       help="mini-batches per run")
    chaos.add_argument("--workers", type=int, default=None,
                       help="supervised pool size (default 4)")
    chaos.add_argument("--seed", type=int, default=None,
                       help="seed for data, faults and the killer")
    chaos.add_argument("--no-killer", action="store_true",
                       help="disable the external SIGKILL/SIGSTOP "
                            "thread (in-band injection only)")
    chaos.add_argument("--out", default=None, metavar="PATH",
                       help="write the JSON chaos report here")
    chaos.set_defaults(fn=_chaos)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
