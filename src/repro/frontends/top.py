"""``repro top`` — a live terminal dashboard over a serving process.

Polls a running server's ``/healthz``, ``/queries`` and ``/metrics``
(re-deriving p50/p95/p99 from the exported Prometheus histogram buckets
— the same numbers any external Prometheus would compute) and renders a
refreshing text dashboard: server state and uptime, SLO latency
quantiles, sliding-window rates, and per-query convergence progress
bars.  Everything returns strings so tests assert on output.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

from ..core.result import format_rsd
from ..serve.telemetry import PrometheusFamily, parse_prometheus
from .console import progress_bar

#: Histogram families summarized in the SLO panel, with display labels.
SLO_FAMILIES = (
    ("repro_serve_first_answer_seconds", "first answer"),
    ("repro_serve_convergence_seconds", "time to ±1%"),
    ("repro_serve_queue_wait_seconds", "queue wait"),
    ("repro_serve_step_seconds", "step"),
)


def fetch_json(base_url: str, path: str, timeout: float = 10.0) -> dict:
    with urllib.request.urlopen(base_url + path, timeout=timeout) as resp:
        return json.loads(resp.read())


def fetch_metrics(base_url: str,
                  timeout: float = 10.0) -> Dict[str, PrometheusFamily]:
    with urllib.request.urlopen(base_url + "/metrics",
                                timeout=timeout) as resp:
        return parse_prometheus(resp.read().decode("utf-8"))


def _seconds(value: float) -> str:
    if value != value:
        return "   n/a"
    if value < 1.0:
        return f"{value * 1e3:5.1f}ms"
    return f"{value:5.2f}s "


def _histogram_row(family: Optional[PrometheusFamily],
                   label: str) -> Optional[str]:
    if family is None:
        return None
    count = sum(
        value for name, labels, value in family.samples
        if name.endswith("_count")
    )
    if count <= 0:
        return None
    quantiles = [family.histogram_quantile(q) for q in (0.5, 0.95, 0.99)]
    return (f"  {label:<14} n={int(count):<7,} "
            f"p50={_seconds(quantiles[0])} p95={_seconds(quantiles[1])} "
            f"p99={_seconds(quantiles[2])}")


def _window_rows(families: Dict[str, PrometheusFamily]) -> List[str]:
    family = families.get("repro_window_first_answer_seconds")
    if family is None:
        return []
    by_window: Dict[str, Dict[str, float]] = {}
    for name, labels, value in family.samples:
        window = labels.get("window")
        stat = labels.get("stat")
        if window and stat:
            by_window.setdefault(window, {})[stat] = value
    rows = []
    for window in ("10s", "1m", "5m"):
        stats = by_window.get(window)
        if not stats:
            continue
        rate = stats.get("rate", float("nan"))
        p95 = stats.get("p95", float("nan"))
        rows.append(
            f"  last {window:<4} rate={rate:6.2f}/s  "
            f"first-answer p95={_seconds(p95)}"
        )
    return rows


def _query_rows(queries: List[dict], limit: int = 12) -> List[str]:
    active = [q for q in queries
              if q["state"] in ("queued", "running", "paused")]
    recent = [q for q in queries
              if q["state"] not in ("queued", "running", "paused")]
    rows = []
    for query in (active + list(reversed(recent)))[:limit]:
        done = query["batches_done"]
        total = max(query["num_batches"], 1)
        bar = progress_bar(done / total, width=20)
        rsd = query.get("rel_stdev")
        rsd_text = format_rsd(float("nan") if rsd is None else rsd)
        rows.append(
            f"  {query['id']:<6} {query['state']:<9} {bar} "
            f"{done:>3}/{total:<3} rsd={rsd_text}"
        )
    return rows


def render_dashboard(health: dict, queries: List[dict],
                     families: Dict[str, PrometheusFamily]) -> str:
    """One full dashboard frame as a string."""
    lines = []
    scheduler = health.get("scheduler", {})
    uptime = health.get("uptime_s")
    lines.append(
        f"repro top — state={health.get('state', '?')}"
        + (f"  up={uptime:.0f}s" if uptime is not None else "")
        + f"  running={scheduler.get('running', 0)}"
        + f"  queued={scheduler.get('queued', 0)}"
        + f"  completed={scheduler.get('completed', 0)}"
    )
    cache = scheduler.get("scan_cache")
    if cache:
        hits, misses = cache.get("hits", 0), cache.get("misses", 0)
        total = hits + misses
        ratio = hits / total if total else 0.0
        lines.append(
            f"  scan cache: {hits}/{total} hits ({ratio:.0%})"
        )
    lines.append("")
    lines.append("latency (cumulative):")
    for name, label in SLO_FAMILIES:
        row = _histogram_row(families.get(name), label)
        if row is not None:
            lines.append(row)
    windows = _window_rows(families)
    if windows:
        lines.append("windows:")
        lines.extend(windows)
    if queries:
        lines.append("queries:")
        lines.extend(_query_rows(queries))
    return "\n".join(lines)


def run_top(base_url: str, interval_s: float = 2.0,
            once: bool = False) -> int:
    """Poll and render until interrupted; ``once`` prints one frame."""
    while True:
        try:
            health = fetch_json(base_url, "/healthz")
            queries = fetch_json(base_url, "/queries")["queries"]
            families = fetch_metrics(base_url)
        except (urllib.error.URLError, OSError) as exc:
            print(f"cannot reach {base_url}: {exc}")
            return 1
        frame = render_dashboard(health, queries, families)
        if once:
            print(frame)
            return 0
        # ANSI clear + home keeps the dashboard in place per refresh.
        print("\x1b[2J\x1b[H" + frame, flush=True)
        try:
            time.sleep(interval_s)
        except KeyboardInterrupt:
            return 0
