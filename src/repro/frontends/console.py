"""Text console / dashboard rendering for online queries.

The demo paper drives web dashboards; this module provides the terminal
equivalent: progress bars, error-bar sparklines and result tables that
refresh per mini-batch.  Everything returns strings so tests can assert
on output and notebooks can display it.
"""

from __future__ import annotations

import sys
from typing import Optional, TextIO

import numpy as np

from ..core.result import OnlineSnapshot, format_rsd
from ..obs import AggregatingSink, Tracer
from ..storage.table import Table


def progress_bar(fraction: float, width: int = 30) -> str:
    """A ``[#####.....]`` bar for the processed fraction."""
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def error_bar(low: float, value: float, high: float, width: int = 24) -> str:
    """An ASCII error bar ``|---*---|`` positioned within [low, high]."""
    if high <= low:
        return "*".center(width)
    pos = int(round((value - low) / (high - low) * (width - 1)))
    pos = min(max(pos, 0), width - 1)
    chars = ["-"] * width
    chars[0] = "|"
    chars[-1] = "|"
    chars[pos] = "*"
    return "".join(chars)


def render_table(table: Table, max_rows: int = 15) -> str:
    """An aligned textual result table."""
    return table.head_str(max_rows)


def render_snapshot(snapshot: OnlineSnapshot, max_rows: int = 10) -> str:
    """A multi-line dashboard panel for one snapshot."""
    lines = [
        f"batch {snapshot.batch_index}/{snapshot.num_batches} "
        f"{progress_bar(snapshot.fraction)} "
        f"{100 * snapshot.fraction:.0f}% of data",
    ]
    try:
        est = snapshot.estimate
        ci = snapshot.interval
        lines.append(
            f"  estimate {est:,.4f}   {ci}   "
            f"rel.stdev {format_rsd(snapshot.relative_stdev)}"
        )
        lines.append(
            f"  {error_bar(ci.low, est, ci.high)}"
        )
    except ValueError:
        lines.append(render_table(snapshot.table, max_rows))
        for name, err in snapshot.errors.items():
            if len(err.rel_stdev) and not np.isnan(err.rel_stdev).all():
                worst = float(np.nanmax(err.rel_stdev))
                lines.append(f"  {name}: worst rel.stdev {worst:.3%}")
    lines.append(
        f"  uncertain set: {snapshot.total_uncertain:,} tuples   "
        f"rows touched: {snapshot.total_rows_processed:,}"
        + (f"   RECOMPUTED: {', '.join(snapshot.rebuilds)}"
           if snapshot.rebuilds else "")
    )
    if snapshot.phase_seconds:
        lines.append(
            "  phases: " + "  ".join(
                f"{name} {seconds * 1e3:.1f}ms"
                for name, seconds in snapshot.phase_seconds.items()
            )
        )
    return "\n".join(lines)


_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 40) -> str:
    """A unicode sparkline of a numeric series (empty-safe)."""
    values = [float(v) for v in values][-width:]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK_LEVELS[0] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def render_history(snapshots, max_width: int = 40) -> str:
    """Estimate and error trajectories across an online run.

    Works for single-value queries; returns the estimate sparkline, the
    relative-stdev sparkline and the endpoints.
    """
    estimates = []
    stdevs = []
    for snapshot in snapshots:
        try:
            estimates.append(snapshot.estimate)
            rsd = snapshot.relative_stdev
        except ValueError:
            continue
        if not np.isnan(rsd):  # nan = no replica support, nothing to plot
            stdevs.append(rsd)
    if not estimates:
        return "(no scalar history)"
    lines = [
        f"estimate  {sparkline(estimates, max_width)}  "
        f"{estimates[0]:.4g} -> {estimates[-1]:.4g}",
    ]
    if stdevs:
        lines.append(
            f"rel.stdev {sparkline(stdevs, max_width)}  "
            f"{stdevs[0]:.2%} -> {stdevs[-1]:.2%}"
        )
    return "\n".join(lines)


def aggregating_sink_of(tracer: Tracer) -> Optional[AggregatingSink]:
    """The tracer's in-memory AggregatingSink, if it has one (tees ok)."""
    sink = tracer.sink
    candidates = getattr(sink, "sinks", [sink])
    for candidate in candidates:
        if isinstance(candidate, AggregatingSink):
            return candidate
    return None


def render_tracer_profile(tracer: Tracer) -> str:
    """Per-span profile + metrics the tracer accumulated in memory.

    Returns an empty string when the tracer collected nothing (no
    aggregating sink and no metrics) so callers can print
    unconditionally.
    """
    sections = []
    agg = aggregating_sink_of(tracer)
    if agg is not None and agg.spans:
        sections.append("-- span profile " + "-" * 40)
        sections.append(agg.render())
    if tracer.metrics.enabled:
        rendered = tracer.metrics.snapshot().describe()
        if rendered:
            sections.append("-- metrics " + "-" * 45)
            sections.append(rendered)
    return "\n".join(sections)


class ProgressConsole:
    """Streams snapshot panels to a file-like sink (stdout by default).

    Example::

        console = ProgressConsole()
        for snapshot in query.run_online():
            console.update(snapshot)
        console.finish()

    With a tracer attached, ``finish()`` also prints the accumulated
    span profile and metrics (the in-memory aggregating sink's view).
    """

    def __init__(self, sink: Optional[TextIO] = None, max_rows: int = 10,
                 tracer: Optional[Tracer] = None):
        self.sink = sink or sys.stdout
        self.max_rows = max_rows
        self.tracer = tracer
        self._count = 0

    def update(self, snapshot: OnlineSnapshot) -> None:
        self._count += 1
        panel = render_snapshot(snapshot, self.max_rows)
        self.sink.write(panel + "\n\n")
        self.sink.flush()

    def finish(self) -> None:
        self.sink.write(f"done after {self._count} snapshot(s)\n")
        if self.tracer is not None:
            profile = render_tracer_profile(self.tracer)
            if profile:
                self.sink.write(profile + "\n")
        self.sink.flush()
