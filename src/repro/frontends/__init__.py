"""Front-ends: terminal progress consoles and dashboards."""

from .html_report import render_html_report, write_html_report
from .console import (
    ProgressConsole,
    error_bar,
    progress_bar,
    render_history,
    render_snapshot,
    render_table,
    sparkline,
)

__all__ = [
    "ProgressConsole",
    "error_bar",
    "progress_bar",
    "render_history",
    "render_html_report",
    "render_snapshot",
    "render_table",
    "sparkline",
    "write_html_report",
]
