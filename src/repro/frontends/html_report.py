"""Static HTML reports of online query runs.

The paper demos a web dashboard with progressively refined answers and
error bars (section 6).  This module renders a completed (or stopped)
online run — the sequence of :class:`OnlineSnapshot` — into a single
self-contained HTML file: the estimate trajectory with its confidence
band as an inline SVG, the per-batch accounting table, and the final
result table.  No external assets or scripts, so the file is portable
and diff-able in tests.
"""

from __future__ import annotations

import html
from typing import List, Sequence, Tuple

from ..core.result import OnlineSnapshot, format_rsd
from ..storage.table import Table

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2rem;
       color: #1a1a2e; max-width: 60rem; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; font-size: 0.85rem; margin-top: .5rem; }
th, td { border: 1px solid #cbd5e1; padding: .25rem .6rem;
         text-align: right; }
th { background: #eef2f7; }
.rebuild { background: #fff3cd; }
.meta { color: #64748b; font-size: .8rem; }
svg { background: #fafbfc; border: 1px solid #e2e8f0; }
"""


def _svg_chart(points: Sequence[Tuple[float, float, float]],
               width: int = 640, height: int = 220) -> str:
    """Inline SVG: estimate line + confidence band over batch index."""
    if not points:
        return "<p>(no scalar trajectory)</p>"
    pad = 34
    lows = [p[1] for p in points]
    highs = [p[2] for p in points]
    y_min, y_max = min(lows), max(highs)
    if y_max <= y_min:
        y_max = y_min + 1.0
    span = y_max - y_min

    def sx(i: int) -> float:
        if len(points) == 1:
            return width / 2
        return pad + i * (width - 2 * pad) / (len(points) - 1)

    def sy(v: float) -> float:
        return height - pad - (v - y_min) / span * (height - 2 * pad)

    band_top = " ".join(
        f"{sx(i):.1f},{sy(hi):.1f}" for i, (_, _, hi) in enumerate(points)
    )
    band_bottom = " ".join(
        f"{sx(i):.1f},{sy(lo):.1f}"
        for i, (_, lo, _) in reversed(list(enumerate(points)))
    )
    line = " ".join(
        f"{sx(i):.1f},{sy(est):.1f}"
        for i, (est, _, _) in enumerate(points)
    )
    labels = (
        f'<text x="4" y="{sy(y_max):.1f}" font-size="10">{y_max:.4g}</text>'
        f'<text x="4" y="{sy(y_min):.1f}" font-size="10">{y_min:.4g}</text>'
        f'<text x="{sx(0):.1f}" y="{height - 8}" font-size="10">1</text>'
        f'<text x="{sx(len(points) - 1) - 14:.1f}" y="{height - 8}" '
        f'font-size="10">{len(points)}</text>'
    )
    return (
        f'<svg width="{width}" height="{height}" '
        'xmlns="http://www.w3.org/2000/svg">'
        f'<polygon points="{band_top} {band_bottom}" fill="#93c5fd" '
        'fill-opacity="0.35" stroke="none"/>'
        f'<polyline points="{line}" fill="none" stroke="#1d4ed8" '
        'stroke-width="2"/>'
        f"{labels}</svg>"
    )


def _result_table(table: Table, max_rows: int = 25) -> str:
    names = table.schema.names
    head = "".join(f"<th>{html.escape(str(n))}</th>" for n in names)
    body_rows = []
    for i in range(min(table.num_rows, max_rows)):
        cells = "".join(
            f"<td>{html.escape(_fmt(v))}</td>" for v in table.row(i)
        )
        body_rows.append(f"<tr>{cells}</tr>")
    more = (
        f'<p class="meta">… {table.num_rows - max_rows} more rows</p>'
        if table.num_rows > max_rows else ""
    )
    return (
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{''.join(body_rows)}</tbody></table>{more}"
    )


def render_html_report(snapshots: Sequence[OnlineSnapshot],
                       title: str = "G-OLA online run",
                       sql: str = "") -> str:
    """Render a full online run to a self-contained HTML document."""
    if not snapshots:
        raise ValueError("no snapshots to report")
    final = snapshots[-1]

    points: List[Tuple[float, float, float]] = []
    for snapshot in snapshots:
        try:
            ci = snapshot.interval
            points.append((snapshot.estimate, ci.low, ci.high))
        except ValueError:
            break

    progress_rows = []
    for snapshot in snapshots:
        css = ' class="rebuild"' if snapshot.rebuilds else ""
        try:
            value = f"{snapshot.estimate:,.4f}"
            rsd = format_rsd(snapshot.relative_stdev, digits=2)
        except ValueError:
            value = f"{snapshot.table.num_rows} rows"
            rsd = "—"
        progress_rows.append(
            f"<tr{css}><td>{snapshot.batch_index}</td>"
            f"<td>{snapshot.fraction:.0%}</td><td>{value}</td>"
            f"<td>{rsd}</td><td>{snapshot.total_uncertain:,}</td>"
            f"<td>{snapshot.total_rows_processed:,}</td>"
            f"<td>{', '.join(snapshot.rebuilds) or ''}</td></tr>"
        )

    sql_block = (
        f"<pre>{html.escape(sql.strip())}</pre>" if sql else ""
    )
    chart = _svg_chart(points) if points else ""
    processed = f"{final.fraction:.0%}"

    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>{html.escape(title)}</title><style>{_STYLE}</style></head>
<body>
<h1>{html.escape(title)}</h1>
<p class="meta">{final.batch_index} of {final.num_batches} mini-batches
processed ({processed} of the data); confidence
{final.confidence:.0%}.</p>
{sql_block}
<h2>Estimate trajectory</h2>
{chart}
<h2>Per-batch progress</h2>
<table><thead><tr><th>batch</th><th>data</th><th>estimate</th>
<th>rel stdev</th><th>uncertain</th><th>rows touched</th>
<th>recomputed</th></tr></thead>
<tbody>{''.join(progress_rows)}</tbody></table>
<h2>Current result</h2>
{_result_table(final.table)}
</body></html>
"""


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:,.4f}"
    return str(value)


def write_html_report(snapshots: Sequence[OnlineSnapshot], path,
                      title: str = "G-OLA online run",
                      sql: str = "") -> None:
    """Render and write the report to ``path``."""
    with open(path, "w") as f:
        f.write(render_html_report(snapshots, title=title, sql=sql))
