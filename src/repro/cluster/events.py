"""A minimal discrete-event simulation kernel.

Generic priority-queue event loop used by the cluster simulator: events
are (time, action) pairs; actions may schedule further events.  Kept
independent of cluster semantics so tests can exercise it directly and
other substrates could reuse it.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Tuple


class EventLoop:
    """Priority-queue driven simulated clock."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable]] = []
        self._counter = itertools.count()  # FIFO tie-break at equal times
        self.now = 0.0

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` ``delay`` simulated seconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(
            self._queue, (self.now + delay, next(self._counter), action)
        )

    def schedule_at(self, when: float, action: Callable[[], None]) -> None:
        """Run ``action`` at absolute simulated time ``when``.

        ``when`` is often computed by accumulating float durations, so it
        can land a few ULPs before ``now``; such deltas in ``[-1e-9, 0)``
        are clamped to "immediately" rather than rejected.
        """
        delta = when - self.now
        if -1e-9 <= delta < 0.0:
            delta = 0.0
        self.schedule(delta, action)

    def run(self) -> float:
        """Drain all events; returns the final simulated time."""
        while self._queue:
            when, _, action = heapq.heappop(self._queue)
            self.now = when
            action()
        return self.now

    def __len__(self) -> int:
        return len(self._queue)


class WorkerPool:
    """Greedy earliest-available-worker task placement.

    Models a homogeneous executor pool: ``submit`` places a task of the
    given duration on the worker that frees up first and returns its
    completion time.  ``makespan`` is when the last task finishes.

    Workers live in a ``(free_at, worker_id)`` heap so each submit is
    O(log W) — a linear min-scan made large simulated pools quadratic in
    the task count.  The ``worker_id`` tie-break preserves the old
    lowest-index-first placement exactly.
    """

    def __init__(self, num_workers: int):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.num_workers = num_workers
        self._heap: List[Tuple[float, int]] = [
            (0.0, wid) for wid in range(num_workers)
        ]
        self._makespan = 0.0

    def submit(self, duration: float, not_before: float = 0.0) -> float:
        free_at, worker = heapq.heappop(self._heap)
        start = max(free_at, not_before)
        finish = start + duration
        heapq.heappush(self._heap, (finish, worker))
        if finish > self._makespan:
            self._makespan = finish
        return finish

    def submit_all(self, durations, not_before: float = 0.0) -> float:
        """Submit many tasks (longest-first for a tighter makespan)."""
        finish = not_before
        for duration in sorted(durations, reverse=True):
            finish = max(finish, self.submit(duration, not_before))
        return finish

    @property
    def makespan(self) -> float:
        return self._makespan

    def reset(self) -> None:
        self._heap = [(0.0, wid) for wid in range(self.num_workers)]
        self._makespan = 0.0
