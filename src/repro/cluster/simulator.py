"""Discrete-event cluster simulator.

Stands in for the paper's 100-node Spark/EC2 testbed: converts the row
volumes each execution model touches per mini-batch into wall-clock-like
latencies using the :mod:`repro.cluster.cost` model and a simulated
worker pool.  Latency *shape* — first-answer time, refinement cadence,
CDM/G-OLA ratios, the batch-engine bar — is what the paper's figures
report; absolute seconds are testbed-specific and not chased.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..config import ClusterConfig
from ..faults import NULL_INJECTOR, FaultInjector, RetryPolicy
from ..obs import NULL_TRACER, Tracer
from .cost import broadcast_cost, task_durations
from .events import EventLoop, WorkerPool


@dataclass
class StageRecovery:
    """Recovery accounting for one simulated stage."""

    retries: int = 0
    speculations: int = 0
    timeouts: int = 0
    permanent_failures: int = 0

    def merge(self, other: "StageRecovery") -> None:
        self.retries += other.retries
        self.speculations += other.speculations
        self.timeouts += other.timeouts
        self.permanent_failures += other.permanent_failures

    @property
    def any(self) -> bool:
        return bool(self.retries or self.speculations
                    or self.permanent_failures)


@dataclass
class SimulatedBatch:
    """Latency breakdown for one mini-batch iteration."""

    batch_index: int
    stage_seconds: Dict[str, float]
    broadcast_seconds: float
    overhead_seconds: float
    retries: int = 0
    speculations: int = 0
    failed: bool = False

    @property
    def total_seconds(self) -> float:
        return (
            sum(self.stage_seconds.values())
            + self.broadcast_seconds
            + self.overhead_seconds
        )


@dataclass
class SimulatedRun:
    """A full online run: cumulative latency per batch."""

    batches: List[SimulatedBatch] = field(default_factory=list)

    @property
    def batch_seconds(self) -> List[float]:
        return [b.total_seconds for b in self.batches]

    @property
    def cumulative_seconds(self) -> List[float]:
        out = []
        total = 0.0
        for b in self.batches:
            total += b.total_seconds
            out.append(total)
        return out

    @property
    def total_seconds(self) -> float:
        return sum(self.batch_seconds)

    @property
    def total_retries(self) -> int:
        return sum(b.retries for b in self.batches)

    @property
    def total_speculations(self) -> int:
        return sum(b.speculations for b in self.batches)

    @property
    def failed_batches(self) -> List[int]:
        return [b.batch_index for b in self.batches if b.failed]


class ClusterSimulator:
    """Maps execution traces (rows per block per batch) to latencies.

    When a tracer is attached, every simulated batch/stage is recorded
    as a span with ``clock="simulated"`` under the *same names* the real
    controller uses (``batch``, ``block``), so a report can place the
    simulated cluster profile next to the measured in-process one.
    """

    def __init__(self, config: Optional[ClusterConfig] = None,
                 tracer: Optional[Tracer] = None,
                 injector: Optional[FaultInjector] = None):
        self.config = config or ClusterConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.retry_policy = RetryPolicy.from_faults(self.injector.config)

    def stage_seconds(self, rows: int, bootstrap: bool = True) -> float:
        """Makespan of one stage over the worker pool."""
        pool = WorkerPool(self.config.num_workers)
        durations = task_durations(rows, self.config, bootstrap)
        durations, _ = self._recovered_durations(durations)
        return pool.submit_all(durations)

    # ------------------------------------------------------------------
    # Fault-aware task execution
    # ------------------------------------------------------------------

    def _recovered_durations(self, durations: List[float]):
        """Per-task effective durations including recovery cost.

        The execution model per task attempt:

        * a *failed* attempt hangs and is detected at its timeout
          (``task_timeout_factor`` × nominal duration); after an
          exponential-backoff pause the task is retried, up to
          ``max_retries`` times — beyond that the task (and hence the
          stage) fails permanently;
        * a *straggler* runs at ``straggler_factor`` × nominal; once it
          exceeds its timeout a speculative copy is launched, so the
          task completes at ``min(straggler finish, timeout + nominal)``
          (the paper's Spark testbed speculates exactly this way).

        Returns ``(effective_durations, StageRecovery)``.  Effective
        durations feed the worker pool, so simulated latency curves
        include the cost of recovery, not just clean execution.
        """
        injector = self.injector
        if not injector.enabled:
            return durations, StageRecovery()
        faults = injector.config
        policy = self.retry_policy
        n = len(durations)
        failures = injector.task_failures("cluster.task", n)
        factors = injector.straggler_factors("cluster.straggler", n)
        recovery = StageRecovery()
        effective: List[float] = []
        tracer = self.tracer
        for i, nominal in enumerate(durations):
            timeout = faults.task_timeout_factor * nominal
            spent = 0.0
            fails = int(failures[i])
            attempts = min(fails, policy.max_retries + 1)
            for attempt in range(attempts):
                spent += timeout
                recovery.timeouts += 1
                if attempt < policy.max_retries:
                    spent += policy.delay(attempt)
            if policy.gives_up_after(fails):
                recovery.permanent_failures += 1
                recovery.retries += policy.max_retries
                if tracer.enabled:
                    tracer.event("fault.task_failed", task=i,
                                 attempts=attempts,
                                 elapsed_s=round(spent, 9))
                effective.append(spent)
                continue
            recovery.retries += fails
            if tracer.enabled and fails:
                tracer.event("fault.task_retry", task=i, attempts=fails,
                             backoff_s=round(policy.total_delay(fails), 9))
            run = nominal * float(factors[i])
            if factors[i] > 1.0 and faults.speculate and run > timeout:
                run = min(run, timeout + nominal)
                recovery.speculations += 1
                if tracer.enabled:
                    tracer.event("fault.speculation", task=i,
                                 launched_at_s=round(timeout, 9))
            effective.append(spent + run)
        if tracer.metrics.enabled:
            metrics = tracer.metrics
            if recovery.retries:
                metrics.counter("faults.task_retries").inc(recovery.retries)
            if recovery.speculations:
                metrics.counter(
                    "faults.speculations"
                ).inc(recovery.speculations)
            if recovery.permanent_failures:
                metrics.counter(
                    "faults.task_failures"
                ).inc(recovery.permanent_failures)
        return effective, recovery

    def simulate_batch(self, batch_index: int,
                       rows_by_block: Dict[str, int],
                       bootstrap: bool = True,
                       broadcasts: Optional[int] = None) -> SimulatedBatch:
        """Latency of one mini-batch iteration.

        Lineage blocks run as consecutive stages (they are dependent:
        inner aggregates must refresh before outer blocks classify), each
        parallelized over the worker pool; aggregate values are broadcast
        between stages.  Stage sequencing runs on the event loop so stage
        starts respect the dependency chain.
        """
        loop = EventLoop()
        stage_seconds: Dict[str, float] = {}
        recovery = StageRecovery()

        def run_stage(block_ids: List[str]) -> None:
            if not block_ids:
                return
            block_id = block_ids[0]
            pool = WorkerPool(self.config.num_workers)
            durations = task_durations(
                rows_by_block[block_id], self.config, bootstrap
            )
            durations, stage_recovery = self._recovered_durations(durations)
            recovery.merge(stage_recovery)
            finish = pool.submit_all(durations)
            stage_seconds[block_id] = finish
            if stage_recovery.permanent_failures:
                # A task exhausted its retry budget: the stage — and with
                # it the whole mini-batch — fails permanently.  Latency
                # up to the detection point is still charged; downstream
                # stages never run.
                return
            loop.schedule(finish, lambda: run_stage(block_ids[1:]))

        loop.schedule(0.0, lambda: run_stage(list(rows_by_block)))
        loop.run()
        num_broadcasts = (
            broadcasts if broadcasts is not None
            else max(len(rows_by_block) - 1, 0)
        )
        failed = recovery.permanent_failures > 0
        out = SimulatedBatch(
            batch_index=batch_index,
            stage_seconds=stage_seconds,
            broadcast_seconds=broadcast_cost(num_broadcasts, self.config),
            overhead_seconds=self.config.batch_overhead_s,
            retries=recovery.retries,
            speculations=recovery.speculations,
            failed=failed,
        )
        if failed and self.tracer.enabled:
            self.tracer.event(
                "fault.batch_failed", batch_index=batch_index,
                clock="simulated",
            )
        if self.tracer.enabled:
            for block_id, seconds in stage_seconds.items():
                self.tracer.record_span(
                    "block", seconds, clock="simulated", block=block_id,
                    batch_index=batch_index,
                    rows_in=rows_by_block[block_id],
                )
            attrs = dict(
                batch_index=batch_index,
                rows_in=sum(rows_by_block.values()),
                broadcast_s=out.broadcast_seconds,
            )
            if recovery.any:
                attrs.update(retries=recovery.retries,
                             speculations=recovery.speculations)
            if failed:
                attrs["failed"] = True
            self.tracer.record_span(
                "batch", out.total_seconds, clock="simulated", **attrs
            )
        return out

    def simulate_run(self, per_batch_rows: Sequence[Dict[str, int]],
                     bootstrap: bool = True) -> SimulatedRun:
        """Latency series for a whole online run."""
        run = SimulatedRun()
        for i, rows_by_block in enumerate(per_batch_rows, start=1):
            run.batches.append(
                self.simulate_batch(i, rows_by_block, bootstrap)
            )
        return run

    def simulate_batch_engine(self, total_rows: int,
                              num_blocks: int = 1) -> float:
        """Latency of a traditional batch engine over the whole dataset.

        ``total_rows`` is the total tuple volume across ALL plan stages
        (the executor's ``rows_processed`` already counts every block's
        scan); it is split evenly over ``num_blocks`` sequential stages.
        No bootstrap overhead — batch engines report exact answers.
        """
        num_blocks = max(num_blocks, 1)
        per_stage = total_rows // num_blocks
        total = 0.0
        for _ in range(num_blocks):
            total += self.stage_seconds(per_stage, bootstrap=False)
        total += self.config.batch_overhead_s
        if self.tracer.enabled:
            self.tracer.record_span(
                "batch_engine", total, clock="simulated",
                rows_in=total_rows, blocks=num_blocks,
            )
        return total
