"""Discrete-event cluster simulator.

Stands in for the paper's 100-node Spark/EC2 testbed: converts the row
volumes each execution model touches per mini-batch into wall-clock-like
latencies using the :mod:`repro.cluster.cost` model and a simulated
worker pool.  Latency *shape* — first-answer time, refinement cadence,
CDM/G-OLA ratios, the batch-engine bar — is what the paper's figures
report; absolute seconds are testbed-specific and not chased.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..config import ClusterConfig
from ..obs import NULL_TRACER, Tracer
from .cost import broadcast_cost, task_durations
from .events import EventLoop, WorkerPool


@dataclass
class SimulatedBatch:
    """Latency breakdown for one mini-batch iteration."""

    batch_index: int
    stage_seconds: Dict[str, float]
    broadcast_seconds: float
    overhead_seconds: float

    @property
    def total_seconds(self) -> float:
        return (
            sum(self.stage_seconds.values())
            + self.broadcast_seconds
            + self.overhead_seconds
        )


@dataclass
class SimulatedRun:
    """A full online run: cumulative latency per batch."""

    batches: List[SimulatedBatch] = field(default_factory=list)

    @property
    def batch_seconds(self) -> List[float]:
        return [b.total_seconds for b in self.batches]

    @property
    def cumulative_seconds(self) -> List[float]:
        out = []
        total = 0.0
        for b in self.batches:
            total += b.total_seconds
            out.append(total)
        return out

    @property
    def total_seconds(self) -> float:
        return sum(self.batch_seconds)


class ClusterSimulator:
    """Maps execution traces (rows per block per batch) to latencies.

    When a tracer is attached, every simulated batch/stage is recorded
    as a span with ``clock="simulated"`` under the *same names* the real
    controller uses (``batch``, ``block``), so a report can place the
    simulated cluster profile next to the measured in-process one.
    """

    def __init__(self, config: Optional[ClusterConfig] = None,
                 tracer: Optional[Tracer] = None):
        self.config = config or ClusterConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def stage_seconds(self, rows: int, bootstrap: bool = True) -> float:
        """Makespan of one stage over the worker pool."""
        pool = WorkerPool(self.config.num_workers)
        durations = task_durations(rows, self.config, bootstrap)
        return pool.submit_all(durations)

    def simulate_batch(self, batch_index: int,
                       rows_by_block: Dict[str, int],
                       bootstrap: bool = True,
                       broadcasts: Optional[int] = None) -> SimulatedBatch:
        """Latency of one mini-batch iteration.

        Lineage blocks run as consecutive stages (they are dependent:
        inner aggregates must refresh before outer blocks classify), each
        parallelized over the worker pool; aggregate values are broadcast
        between stages.  Stage sequencing runs on the event loop so stage
        starts respect the dependency chain.
        """
        loop = EventLoop()
        stage_seconds: Dict[str, float] = {}

        def run_stage(block_ids: List[str]) -> None:
            if not block_ids:
                return
            block_id = block_ids[0]
            pool = WorkerPool(self.config.num_workers)
            durations = task_durations(
                rows_by_block[block_id], self.config, bootstrap
            )
            finish = pool.submit_all(durations)
            stage_seconds[block_id] = finish
            loop.schedule(finish, lambda: run_stage(block_ids[1:]))

        loop.schedule(0.0, lambda: run_stage(list(rows_by_block)))
        loop.run()
        num_broadcasts = (
            broadcasts if broadcasts is not None
            else max(len(rows_by_block) - 1, 0)
        )
        out = SimulatedBatch(
            batch_index=batch_index,
            stage_seconds=stage_seconds,
            broadcast_seconds=broadcast_cost(num_broadcasts, self.config),
            overhead_seconds=self.config.batch_overhead_s,
        )
        if self.tracer.enabled:
            for block_id, seconds in stage_seconds.items():
                self.tracer.record_span(
                    "block", seconds, clock="simulated", block=block_id,
                    batch_index=batch_index,
                    rows_in=rows_by_block[block_id],
                )
            self.tracer.record_span(
                "batch", out.total_seconds, clock="simulated",
                batch_index=batch_index,
                rows_in=sum(rows_by_block.values()),
                broadcast_s=out.broadcast_seconds,
            )
        return out

    def simulate_run(self, per_batch_rows: Sequence[Dict[str, int]],
                     bootstrap: bool = True) -> SimulatedRun:
        """Latency series for a whole online run."""
        run = SimulatedRun()
        for i, rows_by_block in enumerate(per_batch_rows, start=1):
            run.batches.append(
                self.simulate_batch(i, rows_by_block, bootstrap)
            )
        return run

    def simulate_batch_engine(self, total_rows: int,
                              num_blocks: int = 1) -> float:
        """Latency of a traditional batch engine over the whole dataset.

        ``total_rows`` is the total tuple volume across ALL plan stages
        (the executor's ``rows_processed`` already counts every block's
        scan); it is split evenly over ``num_blocks`` sequential stages.
        No bootstrap overhead — batch engines report exact answers.
        """
        num_blocks = max(num_blocks, 1)
        per_stage = total_rows // num_blocks
        total = 0.0
        for _ in range(num_blocks):
            total += self.stage_seconds(per_stage, bootstrap=False)
        total += self.config.batch_overhead_s
        if self.tracer.enabled:
            self.tracer.record_span(
                "batch_engine", total, clock="simulated",
                rows_in=total_rows, blocks=num_blocks,
            )
        return total
