"""Operator cost model for the simulated cluster.

Calibrated so the *shape* of the paper's Figure 3 reproduces at laptop
scale: task scheduling overhead dominates tiny stages (the first-answer
latency), per-tuple costs dominate large stages (the batch-engine bar),
and bootstrap error estimation adds the ~60 % overhead the paper reports
for a full online pass.

All latencies are simulated; they are a deterministic function of row
volumes, so benchmarks are stable across machines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..config import ClusterConfig


@dataclass(frozen=True)
class StageCost:
    """The work of one stage (one lineage block's pass over some rows)."""

    rows: int
    bootstrap: bool = True
    broadcasts: int = 0


def task_durations(rows: int, config: ClusterConfig,
                   bootstrap: bool = True) -> List[float]:
    """Durations of the tasks a stage of ``rows`` rows fans out into."""
    per_tuple = config.per_tuple_cost_s
    if bootstrap:
        per_tuple *= 1.0 + config.bootstrap_overhead_factor
    if rows <= 0:
        return [config.task_overhead_s]
    num_tasks = max(1, math.ceil(rows / config.rows_per_task))
    base = rows // num_tasks
    remainder = rows - base * num_tasks
    durations = []
    for t in range(num_tasks):
        task_rows = base + (1 if t < remainder else 0)
        durations.append(config.task_overhead_s + task_rows * per_tuple)
    return durations


def broadcast_cost(count: int, config: ClusterConfig) -> float:
    """Serialized cost of broadcasting aggregate values between blocks."""
    return count * config.broadcast_cost_s
