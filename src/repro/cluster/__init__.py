"""Simulated shared-nothing cluster (the paper's Spark/EC2 stand-in)."""

from .cost import StageCost, broadcast_cost, task_durations
from .events import EventLoop, WorkerPool
from .simulator import (
    ClusterSimulator,
    SimulatedBatch,
    SimulatedRun,
    StageRecovery,
)

__all__ = [
    "ClusterSimulator",
    "EventLoop",
    "SimulatedBatch",
    "SimulatedRun",
    "StageCost",
    "StageRecovery",
    "WorkerPool",
    "broadcast_cost",
    "task_durations",
]
