"""repro — a reproduction of G-OLA: Generalized On-Line Aggregation.

G-OLA (Zeng, Agarwal, Dave, Armbrust, Stoica — SIGMOD 2015) generalizes
online aggregation to OLAP queries with arbitrarily nested aggregates via
mini-batch execution and uncertain/deterministic delta maintenance.  This
package implements the full system in pure Python/numpy: the SQL front
end, a vectorized relational engine, poissonized-bootstrap error
estimation, the G-OLA execution model itself, the classical baselines it
is evaluated against, a discrete-event cluster simulator for the paper's
latency figures, and the paper's workloads.

Quickstart::

    from repro import GolaSession, GolaConfig

    session = GolaSession(GolaConfig(num_batches=50))
    session.register_table("sessions", sessions_table)
    query = session.sql(
        "SELECT AVG(play_time) FROM sessions "
        "WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)"
    )
    for snapshot in query.run_online():
        print(snapshot.describe())
"""

from .config import ClusterConfig, FaultsConfig, GolaConfig, QaConfig, \
    ServeConfig, StorageConfig
from .core.result import OnlineSnapshot
from .core.session import GolaSession, OnlineQuery
from .errors import (
    AdmissionError,
    BindError,
    CatalogError,
    CheckpointError,
    ExecutionError,
    InjectedFault,
    ParseError,
    PlanError,
    QueryStopped,
    RangeViolation,
    ReproError,
    SchemaError,
    StorageError,
    UnsupportedQueryError,
)
from .faults import RunCheckpoint
from .storage.table import Column, ColumnType, Schema, Table

__version__ = "1.0.0"

__all__ = [
    "AdmissionError",
    "BindError",
    "CatalogError",
    "CheckpointError",
    "ClusterConfig",
    "Column",
    "ColumnType",
    "ExecutionError",
    "FaultsConfig",
    "GolaConfig",
    "GolaSession",
    "InjectedFault",
    "OnlineQuery",
    "OnlineSnapshot",
    "ParseError",
    "PlanError",
    "QaConfig",
    "QueryStopped",
    "RangeViolation",
    "ReproError",
    "RunCheckpoint",
    "Schema",
    "ServeConfig",
    "SchemaError",
    "StorageConfig",
    "StorageError",
    "Table",
    "UnsupportedQueryError",
    "__version__",
]
