"""Zero-copy shared-memory column publishing for shard workers.

The pre-shm shard path re-pickled every mini-batch column into every
shard payload: with ``W`` workers the coordinator serialized the batch
``W`` times per fold and each worker deserialized its private copy.
This module replaces that with PF-OLA-style shared state: the
coordinator publishes a batch's arrays **once** into a
:mod:`multiprocessing.shared_memory` segment and ships only tiny
:class:`ArraySpec` descriptors (segment name, dtype, shape, offset);
workers attach the segment and read the columns zero-copy.

Lifecycle is the hard part, so it is owned in one place:

* **Coordinator** — :class:`ShmRegistry` creates segments and hands out
  :class:`ShmLease` handles.  A lease covers one published batch; the
  executor holds it until every shard of that batch has merged (or
  failed for good), then :meth:`ShmLease.release` decrements the
  segment's refcount and the registry ``close()``\\ s and ``unlink()``\\ s
  it at zero.  :meth:`ShmRegistry.close` force-unlinks everything still
  live (run teardown, supervisor-driven rebuilds, crashes), and a
  ``weakref.finalize`` backstop does the same if a registry is dropped
  without ``close()`` — segments must never outlive the run.
* **Worker** — :func:`resolve` attaches a spec's segment and returns a
  read-only ndarray view over the shared buffer.  Attached segments are
  kept in a small per-process LRU cache so a persistent worker folding
  many shards of the same batch (and the next batch, and the next
  query) attaches each segment exactly once — the "warm cache" that
  makes persistent workers cheap.

On the :mod:`multiprocessing.resource_tracker`: pool workers (fork and
spawn alike) inherit the coordinator's tracker fd, so there is exactly
one tracker whose name cache is a *set* — the worker-side attach
re-registering a name is a no-op, and ``unlink()`` unregisters it once.
That single shared tracker is also the last-resort leak net: a segment
somehow surviving this module's cleanup is still unlinked (with a
warning) when the tracker exits.  Do **not** add the much-cited
"unregister after attach" workaround here — that protocol is for
*independent* processes with private trackers; under a shared tracker
it deletes the coordinator's own registration.

Crash safety: a SIGKILLed worker's mappings are reclaimed by the
kernel; the coordinator-side refcount never depended on the worker, so
the supervisor's rebuild path re-dispatches lost shards against the
still-live segment and the lease is released exactly once, after the
merge.  Nothing in this module affects results — specs resolve to
bit-identical arrays — so every path stays bit-identical to serial.
"""

from __future__ import annotations

import logging
import secrets
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

logger = logging.getLogger("repro.parallel")

try:  # pragma: no cover - import guard for exotic builds
    from multiprocessing import shared_memory as _shared_memory

    HAVE_SHM = True
except ImportError:  # pragma: no cover
    _shared_memory = None
    HAVE_SHM = False

#: Segment offsets are aligned so every published array starts on a
#: cache-line boundary (also satisfies any dtype's alignment).
_ALIGN = 64

#: Attached segments kept warm per worker process; evicting closes the
#: mapping.  Sized for a few in-flight batches across a few queries —
#: far above what one fold needs, far below any memory concern (closing
#: a mapping does not free the segment; only the coordinator unlinks).
_ATTACH_CACHE_CAP = 32


@dataclass(frozen=True)
class ArraySpec:
    """Where one published ndarray lives inside a shared segment.

    A few primitives instead of the array's bytes: this is the whole
    payload that crosses the process boundary (pickle-small, so the
    ``spawn`` start method works as well as ``fork``).
    """

    segment: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class ShmLease:
    """One published batch worth of arrays; release after the merge.

    ``specs`` maps the published name (e.g. ``"group_idx"``,
    ``"value:total"``) to its :class:`ArraySpec`.  ``release`` is
    idempotent; the registry unlinks the backing segment once every
    lease on it has been released.
    """

    __slots__ = ("specs", "segment", "nbytes", "_registry", "_released")

    def __init__(self, registry: "ShmRegistry", segment: str,
                 specs: Dict[str, ArraySpec], nbytes: int):
        self.specs = specs
        self.segment = segment
        self.nbytes = nbytes
        self._registry = registry
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._registry._decref(self.segment)


class ShmRegistry:
    """Coordinator-side segment registry: create, refcount, unlink.

    Thread-safe (the executor publishes from block fan-out threads).
    ``close()`` unlinks every live segment regardless of refcounts —
    it is the teardown/crash backstop, and a ``weakref.finalize`` calls
    it if the registry is garbage-collected while segments live.
    """

    def __init__(self, metrics=None):
        self.metrics = metrics
        self._lock = threading.Lock()
        #: name -> (SharedMemory, refcount)
        self._segments: Dict[str, List] = {}
        #: Every name this registry ever created (leak probing in tests).
        self.created: List[str] = []
        self._unavailable = not HAVE_SHM
        self._finalizer = weakref.finalize(
            self, _close_segments, self._segments, self._lock
        )

    @property
    def available(self) -> bool:
        return not self._unavailable

    def publish(self, arrays: Dict[str, np.ndarray]) -> Optional[ShmLease]:
        """Copy ``arrays`` into one fresh segment; None when unavailable.

        Arrays are packed back to back at :data:`_ALIGN`-byte offsets.
        A failed creation (no /dev/shm, size limits) logs one warning
        and permanently degrades this registry to the inline-payload
        path — publishing is an optimization, never a requirement.
        """
        if self._unavailable or not arrays:
            return None
        layout: List[Tuple[str, np.ndarray, int]] = []
        offset = 0
        for name, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            offset = _align(offset)
            layout.append((name, arr, offset))
            offset += arr.nbytes
        if offset == 0:
            return None
        try:
            segment = _shared_memory.SharedMemory(
                create=True, size=offset,
                name=f"repro-{secrets.token_hex(8)}",
            )
        except (OSError, ValueError) as exc:
            logger.warning(
                "shared-memory publish unavailable (%s: %s); falling "
                "back to inline shard payloads", type(exc).__name__, exc,
            )
            self._unavailable = True
            return None
        specs: Dict[str, ArraySpec] = {}
        for name, arr, off in layout:
            dst = np.ndarray(arr.shape, dtype=arr.dtype,
                             buffer=segment.buf, offset=off)
            dst[...] = arr
            specs[name] = ArraySpec(
                segment=segment.name, dtype=arr.dtype.str,
                shape=tuple(arr.shape), offset=off,
            )
        with self._lock:
            self._segments[segment.name] = [segment, 1]
            self.created.append(segment.name)
            live = len(self._segments)
        if self.metrics is not None and self.metrics.enabled:
            self.metrics.counter("parallel.shm_bytes").inc(offset)
            self.metrics.counter("parallel.shm_segments_created").inc()
            self.metrics.gauge("parallel.shm_segments").set(live)
        return ShmLease(self, segment.name, specs, offset)

    def retain(self, name: str) -> None:
        with self._lock:
            entry = self._segments.get(name)
            if entry is not None:
                entry[1] += 1

    def _decref(self, name: str) -> None:
        with self._lock:
            entry = self._segments.get(name)
            if entry is None:
                return
            entry[1] -= 1
            if entry[1] > 0:
                return
            del self._segments[name]
            live = len(self._segments)
        _destroy_segment(entry[0])
        if self.metrics is not None and self.metrics.enabled:
            self.metrics.gauge("parallel.shm_segments").set(live)

    def live_segments(self) -> List[str]:
        with self._lock:
            return list(self._segments)

    def close(self) -> None:
        """Unlink every live segment now (idempotent)."""
        with self._lock:
            segments = [entry[0] for entry in self._segments.values()]
            self._segments.clear()
        for segment in segments:
            _destroy_segment(segment)
        if segments and self.metrics is not None and self.metrics.enabled:
            self.metrics.gauge("parallel.shm_segments").set(0)

    def __enter__(self) -> "ShmRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _destroy_segment(segment) -> None:
    try:
        segment.close()
    except (OSError, BufferError):  # pragma: no cover - exported views
        pass
    try:
        segment.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover
        pass  # already unlinked (e.g. close() after an external cleanup)


def _close_segments(segments: Dict[str, List], lock) -> None:
    """Module-level finalize target (must not capture the registry)."""
    with lock:
        leaked = [entry[0] for entry in segments.values()]
        segments.clear()
    for segment in leaked:
        _destroy_segment(segment)


# -- worker side --------------------------------------------------------

_attach_lock = threading.Lock()
_attach_cache: "OrderedDict[str, object]" = OrderedDict()


def _attach_segment(name: str):
    """Attach (or reuse) one named segment in this process.

    The LRU cache is what keeps persistent workers warm: folding shard
    after shard of the same batch touches the segment map exactly once.
    (Attaching re-registers the name with the shared resource tracker —
    a set-add no-op; see the module docstring for why workers must not
    unregister.)
    """
    if not HAVE_SHM:  # pragma: no cover - guarded by the coordinator
        raise RuntimeError("shared memory is unavailable in this build")
    with _attach_lock:
        segment = _attach_cache.get(name)
        if segment is not None:
            _attach_cache.move_to_end(name)
            return segment
        segment = _shared_memory.SharedMemory(name=name)
        _attach_cache[name] = segment
        while len(_attach_cache) > _ATTACH_CACHE_CAP:
            _, old = _attach_cache.popitem(last=False)
            try:
                old.close()
            except (OSError, BufferError):  # pragma: no cover
                pass
        return segment


def resolve(obj):
    """An :class:`ArraySpec` becomes a read-only zero-copy view; any
    other object (inline ndarray fallback, None) passes through."""
    if not isinstance(obj, ArraySpec):
        return obj
    segment = _attach_segment(obj.segment)
    view = np.ndarray(obj.shape, dtype=np.dtype(obj.dtype),
                      buffer=segment.buf, offset=obj.offset)
    view.flags.writeable = False
    return view


#: Per-process memo of dense-group counts per published group_idx
#: array, keyed by (segment, offset).  Shared group codes are
#: immutable once published, so a persistent worker folding several
#: shards (or retries) of the same batch scans for the max group index
#: exactly once.
_group_count_cache: "OrderedDict[Tuple[str, int], int]" = OrderedDict()
_GROUP_COUNT_CACHE_CAP = 64


def cached_group_count(spec, group_idx: np.ndarray) -> int:
    """``group_idx.max() + 1``, memoized per published segment+offset."""
    if not isinstance(spec, ArraySpec) or len(group_idx) == 0:
        return int(group_idx.max()) + 1 if len(group_idx) else 0
    key = (spec.segment, spec.offset)
    with _attach_lock:
        groups = _group_count_cache.get(key)
        if groups is not None:
            _group_count_cache.move_to_end(key)
            return groups
    groups = int(group_idx.max()) + 1
    with _attach_lock:
        _group_count_cache[key] = groups
        while len(_group_count_cache) > _GROUP_COUNT_CACHE_CAP:
            _group_count_cache.popitem(last=False)
    return groups


def detach_all() -> None:
    """Close every cached attachment in this process (tests/teardown)."""
    with _attach_lock:
        segments = list(_attach_cache.values())
        _attach_cache.clear()
        _group_count_cache.clear()
    for segment in segments:
        try:
            segment.close()
        except (OSError, BufferError):  # pragma: no cover
            pass


def attached_segments() -> List[str]:
    """Names currently warm in this process's attach cache."""
    with _attach_lock:
        return list(_attach_cache)


def segment_exists(name: str) -> bool:
    """Probe whether a named segment still exists system-wide.

    Used by the lifecycle tests to assert no ``/dev/shm`` leaks after
    release / cancel / SIGKILL-induced pool rebuilds.
    """
    if not HAVE_SHM:
        return False
    try:
        probe = _shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    probe.close()
    return True
