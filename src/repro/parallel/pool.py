"""Worker pools behind one tiny ordered-``map`` interface.

Three interchangeable backends:

* ``process`` — a :class:`concurrent.futures.ProcessPoolExecutor`.  The
  start method defaults to ``fork`` where available (cheap worker
  startup, no import replay) and falls back to the platform default
  (``spawn`` on macOS/Windows); ``start_method`` pins it explicitly.
  Task functions must be module-level and payloads picklable — shard
  payloads are spec-sized (see ``repro.parallel.shm``), so even the
  spawn path ships only a few primitives per task.
* Workers are **persistent**: the executor (and therefore its worker
  processes) lives across ``map`` calls until :meth:`WorkerPool.close`,
  so per-process caches (attached shared-memory segments, GroupIndex
  digest memos) stay warm across batches and queries.
* ``thread`` — a :class:`concurrent.futures.ThreadPoolExecutor`; no
  pickling, relies on numpy releasing the GIL in the hot kernels.
* ``serial`` — runs tasks inline.  Same code path, zero concurrency;
  exists so the shard/merge machinery can be exercised deterministically
  in tests and as the graceful fallback when process pools are
  unavailable (restricted environments).

Pools are created lazily on first use and must be released with
:meth:`WorkerPool.close` (the controller does this when a run finishes).
The crash/hang-supervised layer (``repro.parallel.supervisor``) wraps
this class; ``WorkerPool`` itself stays a thin executor shim.
"""

from __future__ import annotations

import logging
import multiprocessing
from concurrent.futures import Executor, ProcessPoolExecutor, \
    ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence

logger = logging.getLogger("repro.parallel")


class WorkerPool:
    """A lazily-started pool of ``workers`` executing ordered maps."""

    def __init__(self, workers: int, backend: str = "process",
                 metrics=None, start_method: str = "auto"):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if backend not in ("process", "thread", "serial"):
            raise ValueError(f"unknown pool backend {backend!r}")
        if start_method not in ("auto", "fork", "spawn", "forkserver"):
            raise ValueError(f"unknown start method {start_method!r}")
        self.workers = workers
        self.backend = backend
        #: Process start method; ``"auto"`` prefers ``fork`` and falls
        #: back to the platform default where fork does not exist.
        self.start_method = start_method
        #: Optional :class:`~repro.obs.MetricsRegistry`; when set, a
        #: forced process→thread degradation bumps ``parallel.degraded``
        #: so degraded runs show up in ``/metrics`` and ``repro report``.
        self.metrics = metrics
        self._executor: Optional[Executor] = None

    def _ensure_executor(self) -> Optional[Executor]:
        if self.backend == "serial":
            return None
        if self._executor is None:
            if self.backend == "thread":
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-pool",
                )
            else:
                if self.start_method == "auto":
                    try:
                        ctx = multiprocessing.get_context("fork")
                    except ValueError:  # platform without fork
                        ctx = multiprocessing.get_context()
                else:
                    # An explicit start method is a hard requirement
                    # (the spawn-path tests pin it); let an unsupported
                    # choice raise rather than silently substituting.
                    ctx = multiprocessing.get_context(self.start_method)
                try:
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.workers, mp_context=ctx
                    )
                except (OSError, PermissionError) as exc:
                    # Sandboxed/restricted environment: degrade to
                    # threads rather than failing the run — but never
                    # silently; the backend swap changes the performance
                    # (and fault-isolation) profile of the whole run.
                    logger.warning(
                        "process pool unavailable (%s: %s); degrading "
                        "pool backend to threads", type(exc).__name__, exc,
                    )
                    if self.metrics is not None and self.metrics.enabled:
                        self.metrics.counter("parallel.degraded").inc()
                    self.backend = "thread"
                    self._executor = ThreadPoolExecutor(
                        max_workers=self.workers,
                        thread_name_prefix="repro-pool",
                    )
        return self._executor

    def executor(self) -> Optional[Executor]:
        """The live executor (created on demand; None for serial)."""
        return self._ensure_executor()

    def worker_pids(self) -> List[int]:
        """PIDs of the live process-pool workers ([] for thread/serial).

        Reaches into :class:`ProcessPoolExecutor` internals — there is
        no public enumeration — so it degrades to [] if the attribute
        ever moves.  Used by the supervisor (to kill hung workers) and
        the chaos harness (to pick SIGKILL victims).
        """
        executor = self._executor
        procs = getattr(executor, "_processes", None)
        if not procs:
            return []
        return [pid for pid, proc in list(procs.items())
                if proc.is_alive()]

    def map(self, fn: Callable, tasks: Sequence) -> List:
        """Apply ``fn`` to every task, returning results in task order."""
        tasks = list(tasks)
        if not tasks:
            return []
        if self.backend == "serial" or len(tasks) == 1:
            return [fn(task) for task in tasks]
        executor = self._ensure_executor()
        if executor is None:  # serial after degradation
            return [fn(task) for task in tasks]
        futures = [executor.submit(fn, task) for task in tasks]
        return [f.result() for f in futures]

    def map_async(self, fn: Callable, tasks: Sequence) -> "MapHandle":
        """Dispatch now, gather later: the pipelining primitive.

        Tasks are submitted before this returns, so workers compute
        while the caller does other coordinator work; ``.result()``
        blocks for the ordered results.  Serial (or degraded-to-serial)
        backends run inline here — there is nothing to overlap with.
        """
        tasks = list(tasks)
        if not tasks or self.backend == "serial":
            return MapHandle(results=[fn(task) for task in tasks])
        executor = self._ensure_executor()
        if executor is None:  # serial after degradation
            return MapHandle(results=[fn(task) for task in tasks])
        return MapHandle(
            futures=[executor.submit(fn, task) for task in tasks]
        )

    def close(self) -> None:
        """Shut the underlying executor down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def abandon(self) -> None:
        """Tear the executor down *without* waiting: kill process-pool
        workers outright, drop thread-pool threads on the floor.

        This is the supervisor's hang/crash escape hatch — ``close()``
        would block forever behind a hung worker.  SIGKILL also works on
        SIGSTOPed (suspended) workers, so a suspended pool is reaped the
        same way.  Idempotent; the next :meth:`map` builds a fresh pool.
        """
        executor, self._executor = self._executor, None
        if executor is None:
            return
        procs = getattr(executor, "_processes", None) or {}
        for proc in list(procs.values()):
            try:
                proc.kill()
            except (OSError, AttributeError, ValueError):
                pass  # already dead / already reaped
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except TypeError:  # Python < 3.9: no cancel_futures
            executor.shutdown(wait=False)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MapHandle:
    """Deferred ordered results of one :meth:`WorkerPool.map_async`.

    Either pre-computed ``results`` (inline/serial dispatch) or a list
    of futures still executing.  ``result()`` is idempotent and raises
    the first task's exception, matching ``WorkerPool.map`` semantics.
    """

    __slots__ = ("_results", "_futures")

    def __init__(self, results: Optional[List] = None,
                 futures: Optional[List] = None):
        self._results = results
        self._futures = futures

    def result(self) -> List:
        if self._results is None:
            self._results = [f.result() for f in self._futures]
            self._futures = None
        return self._results

    def done(self) -> bool:
        return self._results is not None or all(
            f.done() for f in self._futures
        )
