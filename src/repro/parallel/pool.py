"""Worker pools behind one tiny ordered-``map`` interface.

Three interchangeable backends:

* ``process`` — a :class:`concurrent.futures.ProcessPoolExecutor` using
  the ``fork`` start method (cheap worker startup, no import replay).
  Task functions must be module-level and payloads picklable.
* ``thread`` — a :class:`concurrent.futures.ThreadPoolExecutor`; no
  pickling, relies on numpy releasing the GIL in the hot kernels.
* ``serial`` — runs tasks inline.  Same code path, zero concurrency;
  exists so the shard/merge machinery can be exercised deterministically
  in tests and as the graceful fallback when process pools are
  unavailable (restricted environments).

Pools are created lazily on first use and must be released with
:meth:`WorkerPool.close` (the controller does this when a run finishes).
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import Executor, ProcessPoolExecutor, \
    ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence


class WorkerPool:
    """A lazily-started pool of ``workers`` executing ordered maps."""

    def __init__(self, workers: int, backend: str = "process"):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if backend not in ("process", "thread", "serial"):
            raise ValueError(f"unknown pool backend {backend!r}")
        self.workers = workers
        self.backend = backend
        self._executor: Optional[Executor] = None

    def _ensure_executor(self) -> Optional[Executor]:
        if self.backend == "serial":
            return None
        if self._executor is None:
            if self.backend == "thread":
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-pool",
                )
            else:
                try:
                    ctx = multiprocessing.get_context("fork")
                except ValueError:  # platform without fork
                    ctx = multiprocessing.get_context()
                try:
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.workers, mp_context=ctx
                    )
                except (OSError, PermissionError):
                    # Sandboxed/restricted environment: degrade to
                    # threads rather than failing the run.
                    self.backend = "thread"
                    self._executor = ThreadPoolExecutor(
                        max_workers=self.workers,
                        thread_name_prefix="repro-pool",
                    )
        return self._executor

    def map(self, fn: Callable, tasks: Sequence) -> List:
        """Apply ``fn`` to every task, returning results in task order."""
        tasks = list(tasks)
        if not tasks:
            return []
        if self.backend == "serial" or len(tasks) == 1:
            return [fn(task) for task in tasks]
        executor = self._ensure_executor()
        if executor is None:  # serial after degradation
            return [fn(task) for task in tasks]
        futures = [executor.submit(fn, task) for task in tasks]
        return [f.result() for f in futures]

    def close(self) -> None:
        """Shut the underlying executor down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
