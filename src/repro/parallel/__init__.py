"""Parallel bootstrap & delta maintenance (``repro.parallel``).

A persistent process/thread worker pool that shards each mini-batch's
bootstrap trial columns across workers and fans independent lineage
blocks out across threads, merging partial aggregate states on the
coordinator.  Batch columns are published once into shared-memory
segments (``repro.parallel.shm``) so shard payloads are spec-sized and
workers read zero-copy; sharded folds can be pipelined (dispatch batch
*i+1* while batch *i* merges/publishes).  Bit-identical to serial
execution for any worker count and any of these knobs — see
``docs/parallel-execution.md`` for the sharding model, segment
lifecycle and pipeline semantics.
"""

from .executor import SERIAL_EXECUTOR, ParallelExecutor
from .pool import WorkerPool
from .shards import make_shard_payloads, run_fold_shard, shard_ranges
from .shm import HAVE_SHM, ArraySpec, ShmLease, ShmRegistry, resolve, \
    segment_exists
from .supervisor import (
    CORRUPT_SENTINEL,
    SupervisedPool,
    WorkerKilledError,
    validate_fold_shard,
)

__all__ = [
    "CORRUPT_SENTINEL",
    "HAVE_SHM",
    "ArraySpec",
    "SERIAL_EXECUTOR",
    "ParallelExecutor",
    "ShmLease",
    "ShmRegistry",
    "SupervisedPool",
    "WorkerKilledError",
    "WorkerPool",
    "make_shard_payloads",
    "resolve",
    "run_fold_shard",
    "segment_exists",
    "shard_ranges",
    "validate_fold_shard",
]
