"""Parallel bootstrap & delta maintenance (``repro.parallel``).

A process/thread worker pool that shards each mini-batch's bootstrap
trial columns across workers and fans independent lineage blocks out
across threads, merging partial aggregate states on the coordinator.
Bit-identical to serial execution for any worker count — see
``docs/architecture.md`` ("Parallel execution") for the sharding model,
seed derivation and merge semantics.
"""

from .executor import SERIAL_EXECUTOR, ParallelExecutor
from .pool import WorkerPool
from .shards import make_shard_payloads, run_fold_shard, shard_ranges
from .supervisor import (
    CORRUPT_SENTINEL,
    SupervisedPool,
    WorkerKilledError,
    validate_fold_shard,
)

__all__ = [
    "CORRUPT_SENTINEL",
    "SERIAL_EXECUTOR",
    "ParallelExecutor",
    "SupervisedPool",
    "WorkerKilledError",
    "WorkerPool",
    "make_shard_payloads",
    "run_fold_shard",
    "shard_ranges",
    "validate_fold_shard",
]
