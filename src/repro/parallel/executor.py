"""The coordinator side of parallel bootstrap & block execution.

:class:`ParallelExecutor` is injected into every
:class:`~repro.core.delta.BlockRuntime` by the controller (the default is
the disabled :data:`SERIAL_EXECUTOR`).  It owns two pools:

* a **shard pool** (process/thread/serial per
  :class:`~repro.config.ParallelConfig`) that fans a batch's bootstrap
  trial columns out as independent shard tasks and merges the returned
  partial states column-wise — PF-OLA's partial-state parallelism applied
  to the trial axis;
* a **block pool** (always threads — block runtimes are stateful and must
  mutate in place) that runs independent lineage blocks of one
  dependency level concurrently.

Two transport/scheduling optimizations ride on top (both default-on,
both pure transport — outputs never change):

* **Zero-copy publishing** — each folded batch's columns are written
  once into a shared-memory segment (``repro.parallel.shm``) and every
  shard payload carries only specs; the executor holds the segment's
  lease until the batch's shards have merged, then releases it (the
  registry unlinks at refcount zero, and ``close()`` force-unlinks on
  teardown so no run can leak ``/dev/shm`` segments).
* **Pipelined folds** — with ``lazy=True`` a sharded fold returns right
  after dispatch and is merged at the next drain point (the caller's
  publish/snapshot/checkpoint), so the coordinator's single-threaded
  merge/classify/publish work overlaps the workers' compute.  Deferred
  merges apply in dispatch order per states dict — float addition is
  not associative, so that order is exactly what keeps every bit
  identical to the eager path.

Everything here is a pure throughput optimization: outputs are
bit-identical for any worker count because weight columns come from
per-(batch, trial) RNG streams and per-cell accumulation order is fixed
by ``_grouped_sum`` (see ``repro.parallel.shards``).
"""

from __future__ import annotations

import logging
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import ParallelConfig
from ..engine.aggregates import AggState
from ..estimate.bootstrap import as_batch_weights
from ..faults import FaultInjector, NULL_INJECTOR, RetryPolicy
from ..obs import NULL_TRACER
from .pool import WorkerPool
from .shards import make_shard_payloads, run_fold_shard, shard_ranges
from .shm import ShmRegistry
from .supervisor import SupervisedPool, validate_fold_shard

logger = logging.getLogger("repro.parallel")


#: Trial columns folded per inline chunk on the streamed serial path:
#: small enough that a chunk's weights stay cache-resident, large enough
#: that per-chunk state setup is noise.
STREAM_CHUNK_COLS = 8


class _PendingFold:
    """One dispatched-but-unmerged sharded fold (the pipeline slot).

    Holds a strong reference to the target states dict (so its ``id``
    cannot be recycled while pending), the dispatch handle, and the
    shared-memory lease to release once the merge lands or fails.
    """

    __slots__ = ("states", "ranges", "handle", "lease", "dispatched_at")

    def __init__(self, states: Dict[str, AggState],
                 ranges: List[Tuple[int, int]], handle, lease):
        self.states = states
        self.ranges = ranges
        self.handle = handle
        self.lease = lease
        self.dispatched_at = time.perf_counter()


class ParallelExecutor:
    """Shards bootstrap folds and fans out block tasks."""

    def __init__(self, config: Optional[ParallelConfig] = None,
                 tracer=None, injector: Optional[FaultInjector] = None):
        self.config = config if config is not None else ParallelConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Fault source for the supervised shard pool (worker kill/hang/
        #: corrupt plans); disabled by default.
        self.injector = injector if injector is not None else NULL_INJECTOR
        self._shard_pool = None
        self._block_pool: Optional[WorkerPool] = None
        self._shm: Optional[ShmRegistry] = None
        #: id(states dict) -> _PendingFold, in dispatch order.  At most
        #: one entry per states dict: dispatching the next fold first
        #: merges the previous one, so drains always apply merges in
        #: dispatch order (the bit-identity invariant).
        self._pending: "OrderedDict[int, _PendingFold]" = OrderedDict()
        self._pending_lock = threading.Lock()

    @classmethod
    def from_config(cls, config, tracer=None,
                    injector: Optional[FaultInjector] = None
                    ) -> "ParallelExecutor":
        """Build from a :class:`~repro.config.GolaConfig` (or a
        :class:`~repro.config.ParallelConfig` directly).

        Given a full ``GolaConfig`` and no explicit ``injector``, an
        injector is derived from its faults section so supervised pools
        inject the run's configured worker faults.
        """
        parallel = getattr(config, "parallel", config)
        if injector is None and hasattr(config, "faults"):
            injector = FaultInjector.from_config(config, tracer=tracer)
        return cls(parallel, tracer=tracer, injector=injector)

    @property
    def enabled(self) -> bool:
        return self.config.workers > 0

    # -- bootstrap trial sharding ---------------------------------------

    def fold_boot_states(self, boot_states: Dict[str, AggState],
                         group_idx: np.ndarray,
                         values: Dict[str, np.ndarray],
                         weights,
                         row_idx: Optional[np.ndarray] = None,
                         lazy: bool = False) -> None:
        """Fold one batch's rows into every bootstrap state.

        ``weights`` is an ``(n, B)`` array or a batch-weight handle over
        the *original* batch rows; ``row_idx`` selects the rows that
        survived the certain pipeline (None = all).  Column-mergeable
        states are sharded along the trial axis across the pool; the
        rest (reservoir quantiles, UDAFs) take the dense path.  Both
        paths produce bit-identical states.

        With ``lazy=True`` (and ``config.pipeline`` on) a pooled fold
        returns right after its shards are dispatched; the caller must
        :meth:`drain` before reading ``boot_states`` (the block runtime
        drains at publish/snapshot/checkpoint/reset).  Dispatching the
        next fold for the same states dict first merges the previous
        one, so deferred merges always land in dispatch order and the
        result stays bit-identical to the eager path.
        """
        weights = as_batch_weights(weights)
        n = len(group_idx)
        if n == 0:
            return
        shardable = [
            (alias, type(state)) for alias, state in boot_states.items()
            if state.supports_column_merge and state.width > 1
        ]
        cfg = self.config
        pooled = self.enabled and shardable and n >= cfg.min_shard_rows
        # Serial runs stream trial-column chunks through the same
        # fold-and-merge kernel when the weights are lazily generated:
        # each chunk is drawn, folded while cache-hot and discarded, so
        # the dense (n, B) rectangle is never materialized.  Chunk
        # boundaries cannot change results — per-(group, trial) cells
        # never span chunks (see shards.run_fold_shard).
        streamed = (
            not pooled and shardable and n >= cfg.min_shard_rows
            and weights.spec() is not None
            and getattr(weights, "_dense", None) is None
        )
        if not pooled:
            # Every inline path mutates states directly, so any deferred
            # merge for this states dict must land first (fold order is
            # accumulation order).
            self.drain(boot_states)
        if not pooled and not streamed:
            dense = weights.rows(row_idx)
            for alias, state in boot_states.items():
                state.update(group_idx, values[alias], dense)
            return

        dense_aliases = [
            alias for alias in boot_states
            if alias not in {a for a, _ in shardable}
        ]
        if dense_aliases:
            dense = weights.rows(row_idx)
            for alias in dense_aliases:
                boot_states[alias].update(group_idx, values[alias], dense)

        trials = boot_states[shardable[0][0]].width
        if pooled:
            ranges = shard_ranges(trials, cfg.workers)
        else:
            ranges = [
                (lo, min(trials, lo + STREAM_CHUNK_COLS))
                for lo in range(0, trials, STREAM_CHUNK_COLS)
            ]
        tracer = self.tracer
        shard_values = {alias: values[alias] for alias, _ in shardable}
        backend = cfg.backend if pooled else "stream"
        with tracer.span("parallel.shard", rows_in=n, trials=trials,
                         shards=len(ranges), backend=backend):
            published, lease = None, None
            if pooled:
                lease = self._publish_columns(group_idx, shard_values,
                                              row_idx)
                published = lease.specs if lease is not None else None
            payloads = make_shard_payloads(
                shardable, group_idx, shard_values, weights, ranges,
                row_idx=row_idx, published=published,
            )
            if pooled:
                handle = self._ensure_shard_pool().map_async(
                    run_fold_shard, payloads
                )
            else:
                results = [run_fold_shard(p) for p in payloads]
        if tracer.metrics.enabled:
            tracer.metrics.counter("parallel.shard_tasks").inc(len(ranges))
            tracer.metrics.counter("parallel.sharded_cells").inc(n * trials)
        if not pooled:
            with tracer.span("parallel.merge", shards=len(results)):
                _merge_shards(boot_states, ranges, results)
            return
        pending = _PendingFold(boot_states, ranges, handle, lease)
        with self._pending_lock:
            previous = self._pending.pop(id(boot_states), None)
            self._pending[id(boot_states)] = pending
        if previous is not None:
            # Pipeline step: the new dispatch is already running while
            # the previous batch's partial states merge here.
            self._merge_pending(previous)
        if not (lazy and cfg.pipeline):
            self.drain(boot_states)

    def _publish_columns(self, group_idx, shard_values, row_idx):
        """Publish one batch's columns to shared memory (None = inline).

        Only worth it for process pools — threads share the address
        space already — and silently skipped where shared memory is
        unavailable (the registry degrades itself after one warning).
        """
        cfg = self.config
        if not cfg.shared_memory or cfg.backend != "process":
            return None
        if self._shm is None:
            self._shm = ShmRegistry(metrics=self.tracer.metrics)
        if not self._shm.available:
            return None
        arrays = {"group_idx": np.ascontiguousarray(group_idx)}
        for alias, arr in shard_values.items():
            arrays[f"value:{alias}"] = np.ascontiguousarray(arr)
        if row_idx is not None:
            arrays["row_idx"] = np.ascontiguousarray(row_idx)
        return self._shm.publish(arrays)

    def _merge_pending(self, pending: _PendingFold) -> None:
        """Gather one deferred fold's shards and merge them (in order)."""
        tracer = self.tracer
        overlap_s = time.perf_counter() - pending.dispatched_at
        try:
            results = pending.handle.result()
            with tracer.span("parallel.merge", shards=len(results)):
                _merge_shards(pending.states, pending.ranges, results)
        finally:
            if pending.lease is not None:
                pending.lease.release()
        if tracer.metrics.enabled:
            tracer.metrics.counter(
                "parallel.pipeline_overlap_s"
            ).inc(overlap_s)

    def drain(self, boot_states: Optional[Dict[str, AggState]] = None,
              ) -> None:
        """Merge deferred sharded folds (one states dict, or all).

        The synchronization point of the pipelined path: callers invoke
        it before any read of ``boot_states`` (publish, snapshot,
        checkpoint, reset, inline folds).  No-op when nothing is
        pending; merges apply in dispatch order.
        """
        if not self._pending:
            return
        with self._pending_lock:
            if boot_states is None:
                items = list(self._pending.values())
                self._pending.clear()
            else:
                pending = self._pending.pop(id(boot_states), None)
                items = [pending] if pending is not None else []
        for pending in items:
            self._merge_pending(pending)

    # -- block fan-out ---------------------------------------------------

    def map_block_tasks(self, thunks: Sequence[Callable[[], object]],
                        ) -> List:
        """Run independent block tasks, in order, possibly concurrently.

        Block runtimes mutate their own state in place, so fan-out is
        thread-based regardless of the shard backend; each thunk must
        already carry its tracing scope (see the controller).
        """
        thunks = list(thunks)
        if (
            not self.enabled or not self.config.block_fanout
            or len(thunks) <= 1
        ):
            return [thunk() for thunk in thunks]
        if self._block_pool is None:
            self._block_pool = WorkerPool(
                min(self.config.workers, len(thunks)), backend="thread"
            )
        if self.tracer.metrics.enabled:
            self.tracer.metrics.counter(
                "parallel.block_tasks"
            ).inc(len(thunks))
        return self._block_pool.map(_call, thunks)

    # -- lifecycle -------------------------------------------------------

    def _ensure_shard_pool(self):
        """The shard pool — supervised unless configured off.

        Shard tasks are stateless per-(batch, trial) specs, exactly the
        contract :class:`SupervisedPool` needs for bit-identical
        re-dispatch; the serial backend runs inline and needs none of
        it, so it keeps the plain pool.
        """
        if self._shard_pool is None:
            cfg = self.config
            if cfg.supervise and cfg.backend != "serial":
                self._shard_pool = SupervisedPool(
                    cfg.workers, backend=cfg.backend,
                    deadline_s=cfg.task_deadline_s,
                    retries=cfg.task_retries,
                    injector=self.injector, tracer=self.tracer,
                    validate=validate_fold_shard,
                    backoff=RetryPolicy.from_faults(self.injector.config),
                    start_method=cfg.start_method,
                )
            else:
                self._shard_pool = WorkerPool(
                    cfg.workers, backend=cfg.backend,
                    metrics=self.tracer.metrics,
                    start_method=cfg.start_method,
                )
        return self._shard_pool

    @property
    def shm_registry(self) -> Optional[ShmRegistry]:
        """The live segment registry (None before the first publish)."""
        return self._shm

    def worker_pids(self) -> List[int]:
        """Live shard-pool worker PIDs ([] before first use / threads).

        The chaos harness uses this to pick real SIGKILL/SIGSTOP victims
        while a run is in flight.
        """
        pool = self._shard_pool
        return pool.worker_pids() if pool is not None else []

    def close(self) -> None:
        """Drain, unlink shared memory, release pools (idempotent).

        A failed leftover merge is logged and dropped — the states are
        being discarded anyway — because cleanup must be guaranteed:
        after ``close()`` no shared-memory segment of this executor
        exists, whatever the pools were doing.
        """
        try:
            self.drain()
        except Exception:
            logger.warning(
                "pending sharded folds abandoned at close", exc_info=True
            )
        if self._shm is not None:
            self._shm.close()
            self._shm = None
        if self._shard_pool is not None:
            self._shard_pool.close()
            self._shard_pool = None
        if self._block_pool is not None:
            self._block_pool.close()
            self._block_pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _call(thunk: Callable[[], object]):
    return thunk()


def _merge_shards(boot_states: Dict[str, AggState],
                  ranges: List[Tuple[int, int]], results: List) -> None:
    """Column-merge shard states back into the live states, in order."""
    for (lo, _hi), shard_states in zip(ranges, results):
        for alias, shard_state in shard_states:
            boot_states[alias].merge_columns(shard_state, lo)


#: Shared disabled executor: the default wiring of every BlockRuntime.
SERIAL_EXECUTOR = ParallelExecutor(ParallelConfig())
