"""Trial-axis sharding of bootstrap state maintenance.

A mini-batch's bootstrap update is ``state.update(group_idx, values, W)``
with ``W`` the ``(n, B)`` Poisson weight matrix.  Because every
column-mergeable state accumulates each ``(group, trial)`` cell
independently (see ``repro.engine.aggregates._grouped_sum``), the trial
axis splits cleanly: worker ``w`` builds fresh shard states of width
``hi - lo`` from weight columns ``[lo, hi)`` and the coordinator folds
them back with ``merge_columns`` — bit-identical to the full-width
update for any shard count.

Weights travel as a :class:`~repro.estimate.bootstrap.BatchWeights` spec
(a few primitives) whenever possible: each worker regenerates exactly
its own trial columns from the per-(batch, trial) RNG streams, so the
dense ``(n, B)`` matrix is never materialized anywhere.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..estimate.bootstrap import BatchWeights


def shard_ranges(trials: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``[0, trials)`` into at most ``shards`` contiguous ranges.

    Ranges are balanced (sizes differ by at most one) and never empty;
    fewer than ``shards`` ranges come back when ``trials < shards``.
    """
    if trials < 0:
        raise ValueError("trials must be >= 0")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    shards = min(shards, trials)
    out: List[Tuple[int, int]] = []
    base, rem = divmod(trials, max(shards, 1))
    lo = 0
    for s in range(shards):
        hi = lo + base + (1 if s < rem else 0)
        out.append((lo, hi))
        lo = hi
    return out


def run_fold_shard(payload: dict) -> List[Tuple[str, object]]:
    """Fold one trial shard of a batch into fresh states (worker side).

    ``payload`` keys:

    * ``aliases`` — list of ``(alias, state_class)`` pairs to fold;
    * ``lo``/``hi`` — the trial-column range of this shard;
    * ``group_idx`` — ``(n,)`` dense group indices;
    * ``values`` — alias -> ``(n,)`` argument values;
    * ``weight_spec`` — :meth:`BatchWeights.spec` dict to regenerate the
      shard's columns locally, or None when ``weights`` ships dense;
    * ``weights`` — the dense ``(n, hi-lo)`` slice (spec-less fallback);
    * ``row_idx`` — surviving row positions into the batch's weight
      matrix, or None for all rows.

    Module-level (not a closure) so process pools can pickle it.
    Returns ``[(alias, shard_state), ...]`` with each state of width
    ``hi - lo``.
    """
    lo, hi = payload["lo"], payload["hi"]
    group_idx = payload["group_idx"]
    row_idx = payload.get("row_idx")
    spec = payload.get("weight_spec")
    if spec is not None:
        weights = BatchWeights.from_spec(spec).shard(lo, hi, row_idx)
    else:
        weights = payload["weights"]
    out = []
    for alias, state_cls in payload["aliases"]:
        state = state_cls(hi - lo)
        state.update(group_idx, payload["values"][alias], weights)
        out.append((alias, state))
    return out


def make_shard_payloads(
    aliases, group_idx: np.ndarray, values: dict, weights,
    ranges: List[Tuple[int, int]],
    row_idx: Optional[np.ndarray] = None,
) -> List[dict]:
    """One :func:`run_fold_shard` payload per trial range.

    ``weights`` is a batch-weight handle; when it carries a regeneration
    spec only the spec crosses the process boundary, otherwise the dense
    column slice for each range is cut here.
    """
    spec = weights.spec()
    payloads = []
    for lo, hi in ranges:
        payload = {
            "aliases": list(aliases),
            "lo": lo,
            "hi": hi,
            "group_idx": group_idx,
            "values": values,
            "row_idx": row_idx,
            "weight_spec": spec,
        }
        if spec is None:
            payload["weights"] = weights.shard(lo, hi, row_idx)
        payloads.append(payload)
    return payloads
