"""Trial-axis sharding of bootstrap state maintenance.

A mini-batch's bootstrap update is ``state.update(group_idx, values, W)``
with ``W`` the ``(n, B)`` Poisson weight matrix.  Because every
column-mergeable state accumulates each ``(group, trial)`` cell
independently (see ``repro.engine.aggregates._grouped_sum``), the trial
axis splits cleanly: worker ``w`` builds fresh shard states of width
``hi - lo`` from weight columns ``[lo, hi)`` and the coordinator folds
them back with ``merge_columns`` — bit-identical to the full-width
update for any shard count.

Weights travel as a :class:`~repro.estimate.bootstrap.BatchWeights` spec
(a few primitives) whenever possible: each worker regenerates exactly
its own trial columns from the per-(batch, trial) RNG streams, so the
dense ``(n, B)`` matrix is never materialized anywhere.

Column data travels the same way: when the executor has published the
batch into shared memory (``repro.parallel.shm``), ``group_idx`` /
``values`` / ``row_idx`` arrive as :class:`~repro.parallel.shm.ArraySpec`
descriptors and the worker resolves them to zero-copy read-only views —
a whole shard payload is then a few hundred bytes regardless of batch
size, which is also what makes the ``spawn`` start method viable.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..estimate.bootstrap import BatchWeights
from .shm import cached_group_count, resolve


def shard_ranges(trials: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``[0, trials)`` into at most ``shards`` contiguous ranges.

    Ranges are balanced (sizes differ by at most one) and never empty;
    fewer than ``shards`` ranges come back when ``trials < shards``.
    """
    if trials < 0:
        raise ValueError("trials must be >= 0")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    shards = min(shards, trials)
    out: List[Tuple[int, int]] = []
    base, rem = divmod(trials, max(shards, 1))
    lo = 0
    for s in range(shards):
        hi = lo + base + (1 if s < rem else 0)
        out.append((lo, hi))
        lo = hi
    return out


def run_fold_shard(payload: dict) -> List[Tuple[str, object]]:
    """Fold one trial shard of a batch into fresh states (worker side).

    ``payload`` keys:

    * ``aliases`` — list of ``(alias, state_class)`` pairs to fold;
    * ``lo``/``hi`` — the trial-column range of this shard;
    * ``group_idx`` — ``(n,)`` dense group indices (ndarray or
      shared-memory :class:`~repro.parallel.shm.ArraySpec`);
    * ``values`` — alias -> ``(n,)`` argument values (ndarray or spec);
    * ``weight_spec`` — :meth:`BatchWeights.spec` dict to regenerate the
      shard's columns locally, or None when ``weights`` ships dense;
    * ``weights`` — the dense ``(n, hi-lo)`` slice (spec-less fallback);
    * ``row_idx`` — surviving row positions into the batch's weight
      matrix (ndarray or spec), or None for all rows.

    Module-level (not a closure) so process pools can pickle it.
    Returns ``[(alias, shard_state), ...]`` with each state of width
    ``hi - lo``.
    """
    lo, hi = payload["lo"], payload["hi"]
    group_spec = payload["group_idx"]
    group_idx = resolve(group_spec)
    row_idx = resolve(payload.get("row_idx"))
    spec = payload.get("weight_spec")
    if spec is not None:
        weights = BatchWeights.from_spec(spec).shard(lo, hi, row_idx)
    else:
        weights = payload["weights"]
    groups = cached_group_count(group_spec, group_idx)
    out = []
    for alias, state_cls in payload["aliases"]:
        state = state_cls(hi - lo)
        state.update(group_idx, resolve(payload["values"][alias]),
                     weights, groups=groups)
        out.append((alias, state))
    return out


def make_shard_payloads(
    aliases, group_idx: np.ndarray, values: dict, weights,
    ranges: List[Tuple[int, int]],
    row_idx: Optional[np.ndarray] = None,
    published: Optional[dict] = None,
) -> List[dict]:
    """One :func:`run_fold_shard` payload per trial range.

    ``weights`` is a batch-weight handle; when it carries a regeneration
    spec only the spec crosses the process boundary, otherwise the dense
    column slice for each range is cut here.

    ``published`` optionally maps payload keys (``"group_idx"``,
    ``"row_idx"``, ``"value:<alias>"``) to shared-memory specs from one
    :meth:`~repro.parallel.shm.ShmRegistry.publish` call; specs replace
    the arrays inside every payload (the batch is published once and
    referenced by all shards), while coordinator-side dense-weight
    slicing keeps using the raw ``row_idx``.
    """
    spec = weights.spec()
    published = published or {}
    pub_group = published.get("group_idx", group_idx)
    pub_row = published.get("row_idx", row_idx)
    pub_values = {
        alias: published.get(f"value:{alias}", arr)
        for alias, arr in values.items()
    }
    payloads = []
    for lo, hi in ranges:
        payload = {
            "aliases": list(aliases),
            "lo": lo,
            "hi": hi,
            "group_idx": pub_group,
            "values": pub_values,
            "row_idx": pub_row,
            "weight_spec": spec,
        }
        if spec is None:
            payload["weights"] = weights.shard(lo, hi, row_idx)
        payloads.append(payload)
    return payloads
