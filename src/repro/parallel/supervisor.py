"""Supervised execution over :class:`~repro.parallel.pool.WorkerPool`.

The plain pool calls ``future.result()`` with no timeout and no crash
handling: one SIGKILLed worker poisons every pending future with
``BrokenProcessPool``, and one hung worker blocks the coordinator
forever.  G-OLA's contract is the opposite — a long-running approximate
query keeps making progress and keeps its error guarantees no matter
what the substrate does — so :class:`SupervisedPool` wraps the pool in
a recovery ladder:

1. **Deadlines** — a dispatch round that outlives its task deadline is
   declared hung; the pool is abandoned (workers killed — SIGKILL also
   reaps SIGSTOPed workers) and rebuilt.
2. **Crash detection** — ``BrokenProcessPool``/worker death breaks only
   the round: the pool is rebuilt and *only the lost tasks* are
   re-dispatched.  Shard payloads are stateless per-(batch, trial)
   specs, so re-execution is bit-identical.
3. **Poison quarantine** — a task that fails ``retries`` pool attempts
   (crash, hang, or corrupt result) is quarantined and run serially on
   the coordinator, outside the pool.  Only if that *also* fails is the
   shard abandoned with :class:`~repro.errors.ShardLostError`, which the
   controller maps onto its skip-and-reweight degraded-snapshot path.
4. **Result integrity** — every worker result is validated before it is
   accepted (for fold shards: alias/type/shape/dtype/NaN-budget
   fingerprint, see :func:`validate_fold_shard`).  A corrupted result is
   rejected and the shard re-run instead of being silently folded into
   the estimate.

Fault injection (``parallel.worker_kill`` / ``parallel.worker_hang`` /
``parallel.result_corrupt``) rides along inside the dispatched payloads:
the coordinator draws a deterministic per-task fault plan from the
seeded injector, and the *worker side* executes it — a real
``os.kill(os.getpid(), SIGKILL)``, a real oversleep, a real poisoned
array — so recovery is exercised end to end, not simulated.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor
from concurrent.futures import wait as futures_wait
from math import ceil
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..errors import ExecutionError, ShardLostError
from ..faults import NULL_INJECTOR, RetryPolicy
from ..obs import NULL_TRACER
from .pool import WorkerPool
from .shm import resolve

#: Worker-side stand-in for a result too mangled to poison in place.
CORRUPT_SENTINEL = "__repro-corrupted-result__"

#: Upper bound on one blocking wait slice: every wake-up bumps the
#: ``parallel.heartbeats`` counter, so liveness is observable even while
#: a round is in flight.
_HEARTBEAT_S = 1.0


class WorkerKilledError(ExecutionError):
    """Injected worker death on a backend where SIGKILL is unavailable
    (thread pools share the coordinator process)."""


def _supervised_call(payload):
    """Worker-side wrapper: execute one task under its fault directive.

    ``payload`` is ``(fn, task, directive)``; the directive (or None)
    was drawn by the coordinator from the seeded injector, so two runs
    with the same fault config misbehave identically:

    * ``kill="sigkill"`` — SIGKILL our own process (process pools);
    * ``kill="raise"`` — raise :class:`WorkerKilledError` (thread pools);
    * ``hang_s > 0`` — oversleep before running the task;
    * ``corrupt`` — run the task, then poison the result in flight.

    Module-level (not a closure) so process pools can pickle it.
    """
    fn, task, directive = payload
    if directive:
        kill = directive.get("kill")
        if kill == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif kill == "raise":
            raise WorkerKilledError("injected worker death")
        hang_s = directive.get("hang_s", 0.0)
        if hang_s > 0.0:
            time.sleep(hang_s)
    result = fn(task)
    if directive and directive.get("corrupt"):
        result = corrupt_result(result)
    return result


def corrupt_result(result):
    """Poison a task result the way a bad worker would: flip the first
    cell of the first per-group array to NaN (what the NaN-budget check
    exists to catch); results with no array to poison are replaced by
    :data:`CORRUPT_SENTINEL` (caught by the structural check)."""
    if isinstance(result, list):
        for item in result:
            if not (isinstance(item, tuple) and len(item) == 2):
                continue
            state = item[1]
            for arr in vars(state).values():
                if isinstance(arr, np.ndarray) and arr.size:
                    arr = np.asarray(arr)
                    arr.reshape(-1)[0] = np.nan
                    return result
    return CORRUPT_SENTINEL


def validate_fold_shard(payload: dict, result) -> Optional[str]:
    """Integrity fingerprint for one fold-shard result (None = valid).

    The worker was handed ``payload`` (see ``shards.run_fold_shard``)
    and must return ``[(alias, state), ...]`` matching the payload's
    alias list, each state of the shard's trial width, with per-group
    arrays of the expected shape/dtype, and NaN-free unless the input
    values themselves carried NaNs (the NaN *budget*: NaNs may flow
    through, never appear).  Anything else is a corrupted worker result
    and must be re-run, not merged.
    """
    expected = payload["aliases"]
    width = payload["hi"] - payload["lo"]
    if not isinstance(result, list) or len(result) != len(expected):
        return "result is not a per-alias state list"
    nan_allowed: Optional[bool] = None  # computed lazily; NaNs are rare
    for item, (alias, state_cls) in zip(result, expected):
        if not (isinstance(item, tuple) and len(item) == 2):
            return "malformed (alias, state) entry"
        got_alias, state = item
        if got_alias != alias:
            return f"alias mismatch: {got_alias!r} != {alias!r}"
        if type(state) is not state_cls:
            return (f"state type {type(state).__name__} != "
                    f"{state_cls.__name__}")
        if state.width != width:
            return f"state width {state.width} != shard width {width}"
        for name, arr in vars(state).items():
            if not isinstance(arr, np.ndarray):
                continue
            if arr.ndim != 2 or arr.shape != (state.num_groups, width):
                return (f"{alias}.{name} shape {arr.shape} != "
                        f"({state.num_groups}, {width})")
            if arr.dtype != np.float64:
                return f"{alias}.{name} dtype {arr.dtype} != float64"
            if np.isnan(arr).any():
                if nan_allowed is None:
                    # Values may arrive as shared-memory specs; resolve
                    # to the zero-copy view before inspecting them.
                    nan_allowed = any(
                        np.isnan(
                            np.asarray(resolve(v), dtype=np.float64)
                        ).any()
                        for v in payload["values"].values()
                    )
                if not nan_allowed:
                    return f"{alias}.{name} violates the NaN budget"
    return None


def _default_validate(payload, result) -> Optional[str]:
    if isinstance(result, str) and result == CORRUPT_SENTINEL:
        return "corrupted result payload"
    return None


class SupervisedPool:
    """Crash/hang/corruption-supervised ordered ``map`` over a pool.

    Drop-in for :class:`WorkerPool` where tasks are **stateless and
    re-executable** (the shard path; *not* the in-place block fan-out).
    Bit-identity is preserved through every recovery action because a
    re-dispatched or quarantined task recomputes exactly the same
    deterministic function of its payload.
    """

    def __init__(self, workers: int, backend: str = "process", *,
                 deadline_s: float = 60.0, retries: int = 2,
                 injector=None, tracer=None,
                 validate: Optional[Callable[[object, object],
                                             Optional[str]]] = None,
                 backoff: Optional[RetryPolicy] = None,
                 start_method: str = "auto"):
        if backend == "serial":
            raise ValueError(
                "serial tasks run inline; there is nothing to supervise"
            )
        self.workers = workers
        self.backend = backend
        self.start_method = start_method
        self.deadline_s = deadline_s
        self.retries = retries
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.validate = validate if validate is not None else \
            _default_validate
        self.backoff = backoff if backoff is not None else RetryPolicy(
            max_retries=retries
        )
        self._jitter = self.backoff.jitter_rng(
            getattr(self.injector, "seed", 0), "parallel.supervisor"
        )
        self._pool: Optional[WorkerPool] = None
        self.restarts = 0

    # -- pool lifecycle --------------------------------------------------

    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None:
            self._pool = WorkerPool(
                self.workers, backend=self.backend,
                metrics=self.tracer.metrics,
                start_method=self.start_method,
            )
        return self._pool

    def _rebuild_pool(self, why: str) -> None:
        """Abandon the current pool (killing its workers) and count it."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.abandon()
        self.restarts += 1
        if self.tracer.metrics.enabled:
            self.tracer.metrics.counter("parallel.restarts").inc()
        if self.tracer.enabled:
            self.tracer.event("parallel.pool_restarted", reason=why,
                              restarts=self.restarts)

    def worker_pids(self) -> List[int]:
        """Live worker PIDs (chaos harness targets; [] for threads)."""
        pool = self._pool
        return pool.worker_pids() if pool is not None else []

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- supervised map --------------------------------------------------

    def map(self, fn: Callable, tasks: Sequence) -> List:
        """Apply ``fn`` to every task, in task order, surviving worker
        death, hangs and corrupted results.  Raises
        :class:`ShardLostError` only when a task failed its whole
        recovery ladder (pool retries *and* the serial fallback)."""
        tasks = list(tasks)
        n = len(tasks)
        if n == 0:
            return []
        plans = self.injector.worker_faults(n)
        hang_s = getattr(self.injector.config, "worker_hang_s", 0.0)
        return self._map_with_plans(fn, tasks, plans, hang_s)

    def map_async(self, fn: Callable, tasks: Sequence
                  ) -> "SupervisedMapHandle":
        """Dispatch now, supervise in the background, gather later.

        The fault plans are drawn here, on the **caller** thread, so
        deferring the gather never reorders the injector's RNG draws —
        pipelined and eager runs misbehave (and therefore recover)
        identically.  The recovery ladder itself (heartbeats, rebuilds,
        re-dispatch, quarantine) runs on a daemon thread; ``.result()``
        re-raises :class:`ShardLostError` from the caller's context.
        """
        tasks = list(tasks)
        handle = SupervisedMapHandle()
        if not tasks:
            handle._finish(results=[])
            return handle
        plans = self.injector.worker_faults(len(tasks))
        hang_s = getattr(self.injector.config, "worker_hang_s", 0.0)

        def _supervise() -> None:
            try:
                handle._finish(
                    results=self._map_with_plans(fn, tasks, plans, hang_s)
                )
            except BaseException as exc:  # noqa: BLE001 - relayed
                handle._finish(exc=exc)

        threading.Thread(
            target=_supervise, name="repro-supervise", daemon=True
        ).start()
        return handle

    def _map_with_plans(self, fn: Callable, tasks: List, plans,
                        hang_s: float) -> List:
        """The recovery-ladder loop shared by :meth:`map`/:meth:`map_async`."""
        n = len(tasks)
        results: List = [None] * n
        settled = [False] * n
        attempts = [0] * n
        pending = list(range(n))
        round_no = 0
        with self.tracer.span("parallel.supervise", tasks=n,
                              backend=self.backend):
            while pending:
                if round_no > 0:
                    time.sleep(self.backoff.jittered_delay(
                        round_no - 1, self._jitter
                    ))
                failed = self._dispatch_round(
                    fn, tasks, plans, hang_s, attempts, results, settled,
                    pending,
                )
                for t in failed:
                    if attempts[t] > self.retries:
                        results[t] = self._quarantine(fn, tasks[t], t,
                                                      attempts[t])
                        settled[t] = True
                pending = [t for t in pending if not settled[t]]
                round_no += 1
        return results

    def _directive(self, plans: Dict[str, np.ndarray], task: int,
                   attempt: int, hang_s: float) -> Optional[dict]:
        """The injected misbehavior for this (task, attempt), if any."""
        directive = {}
        if attempt < plans["kill"][task]:
            directive["kill"] = (
                "sigkill" if self.backend == "process" else "raise"
            )
        elif attempt < plans["hang"][task]:
            directive["hang_s"] = hang_s
        if attempt < plans["corrupt"][task]:
            directive["corrupt"] = True
        return directive or None

    def _round_deadline_s(self, num_tasks: int) -> Optional[float]:
        """Wall budget for one dispatch round.

        Tasks queue behind ``workers`` slots, so a round of ``m`` tasks
        legitimately needs up to ``ceil(m / workers)`` task deadlines;
        a *single* hung worker is still caught within one task deadline
        of its own dispatch, which is the bound the integration test
        pins (at one task per worker the budget *is* the deadline).
        """
        if self.deadline_s <= 0:
            return None
        return self.deadline_s * ceil(num_tasks / self.workers)

    def _dispatch_round(self, fn, tasks, plans, hang_s, attempts,
                        results, settled, pending) -> List[int]:
        """Dispatch every pending task once; settle what succeeds.

        Returns the task indices that failed this round (attempt
        counters already bumped).  Any breakage — worker death, hang
        past the deadline — abandons the pool so the next round starts
        on a fresh one.
        """
        tracer = self.tracer
        metrics = tracer.metrics
        executor = self._ensure_pool().executor()
        futures = {}
        try:
            for t in pending:
                payload = (fn, tasks[t],
                           self._directive(plans, t, attempts[t], hang_s))
                futures[executor.submit(_supervised_call, payload)] = t
        except BrokenExecutor:
            # A worker from the *previous* round died and its death was
            # only detected now; the whole round is lost before it
            # started.  Same treatment as a mid-round break: bump every
            # pending task (progress must be guaranteed — quarantine's
            # serial fallback stays correct) and rebuild.
            for t in pending:
                attempts[t] += 1
            if metrics.enabled:
                metrics.counter("parallel.worker_lost").inc()
                metrics.counter("parallel.redispatched").inc(len(pending))
            if tracer.enabled:
                tracer.event("parallel.pool_broken", lost=len(pending),
                             at="submit")
            self._rebuild_pool("worker death at submit")
            return list(pending)
        deadline = self._round_deadline_s(len(pending))
        expires = None if deadline is None else time.monotonic() + deadline
        not_done = set(futures)
        failed: List[int] = []
        broken = False
        while not_done and not broken:
            slice_s = _HEARTBEAT_S
            if expires is not None:
                slice_s = min(slice_s, max(0.0, expires - time.monotonic()))
            done, not_done = futures_wait(
                not_done, timeout=slice_s, return_when=FIRST_COMPLETED
            )
            if metrics.enabled:
                metrics.counter("parallel.heartbeats").inc()
            for future in done:
                t = futures[future]
                exc = future.exception()
                if exc is None:
                    result = future.result()
                    error = self.validate(tasks[t], result)
                    if error is None:
                        results[t] = result
                        settled[t] = True
                        continue
                    attempts[t] += 1
                    failed.append(t)
                    if metrics.enabled:
                        metrics.counter("parallel.corrupt_results").inc()
                    if tracer.enabled:
                        tracer.event("parallel.result_rejected", task=t,
                                     error=error)
                elif isinstance(exc, BrokenExecutor):
                    # A worker died; every sibling future is (or will
                    # be) poisoned too.  Keep scanning this batch so
                    # results that landed before the crash still settle,
                    # then rebuild below.
                    broken = True
                else:
                    attempts[t] += 1
                    failed.append(t)
                    if metrics.enabled:
                        metrics.counter("parallel.task_failures").inc()
                    if tracer.enabled:
                        tracer.event(
                            "parallel.task_failed", task=t,
                            error=f"{type(exc).__name__}: {exc}",
                        )
            if broken or (not_done and expires is not None
                          and time.monotonic() >= expires):
                break
        if broken:
            # Which task actually took the worker down is unknowable —
            # every unsettled task in the round is poisoned with the
            # same BrokenProcessPool — so all of them take an attempt
            # bump.  That guarantees a repeat killer eventually exhausts
            # its injected plan (or quarantines); innocents that get
            # dragged to quarantine still produce bit-identical results
            # through the serial fallback.
            lost = [t for t in pending
                    if not settled[t] and t not in failed]
            for t in lost:
                attempts[t] += 1
                failed.append(t)
            if metrics.enabled:
                metrics.counter("parallel.worker_lost").inc()
                metrics.counter("parallel.redispatched").inc(len(lost))
            if tracer.enabled:
                tracer.event("parallel.pool_broken", lost=len(lost))
            self._rebuild_pool("worker death")
        elif not_done:
            # Deadline expiry: the still-running tasks are hung.
            lost = [futures[f] for f in not_done
                    if not settled[futures[f]] and futures[f] not in failed]
            for t in lost:
                attempts[t] += 1
                failed.append(t)
            if metrics.enabled:
                metrics.counter("parallel.task_timeouts").inc(len(lost))
                metrics.counter("parallel.redispatched").inc(len(lost))
            if tracer.enabled:
                tracer.event("parallel.task_timeout", lost=len(lost),
                             deadline_s=self.deadline_s)
            self._rebuild_pool("task deadline exceeded")
        return failed

    def _quarantine(self, fn, task, index: int, failures: int):
        """Poison task: stop re-dispatching, run it serially right here.

        The serial fallback bypasses the pool (and any injected worker
        faults — those model the *pool*, not the computation), so a task
        that keeps killing workers still produces its bit-identical
        result; only a task whose computation itself fails is abandoned.
        """
        tracer = self.tracer
        if tracer.metrics.enabled:
            tracer.metrics.counter("parallel.quarantined").inc()
            tracer.metrics.counter("parallel.serial_fallbacks").inc()
        if tracer.enabled:
            tracer.event("parallel.task_quarantined", task=index,
                         failures=failures)
        try:
            result = fn(task)
        except Exception as exc:
            raise ShardLostError(
                index,
                f"quarantined after {failures} pool failures and the "
                f"serial fallback also failed: "
                f"{type(exc).__name__}: {exc}",
            ) from exc
        error = self.validate(task, result)
        if error is not None:
            raise ShardLostError(
                index,
                f"quarantined after {failures} pool failures and the "
                f"serial fallback produced an invalid result: {error}",
            )
        return result


class SupervisedMapHandle:
    """Deferred results of one :meth:`SupervisedPool.map_async`."""

    __slots__ = ("_done", "_results", "_exc")

    def __init__(self):
        self._done = threading.Event()
        self._results: Optional[List] = None
        self._exc: Optional[BaseException] = None

    def _finish(self, results: Optional[List] = None,
                exc: Optional[BaseException] = None) -> None:
        self._results = results
        self._exc = exc
        self._done.set()

    def result(self) -> List:
        self._done.wait()
        if self._exc is not None:
            raise self._exc
        return self._results

    def done(self) -> bool:
        return self._done.is_set()
