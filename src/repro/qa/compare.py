"""Float-tolerant structural table comparison (``repro.qa``).

The differential runner needs to decide whether two execution paths
produced "the same" answer, where "same" must tolerate benign
floating-point reassociation (different paths fold rows in different
orders) and row-order differences (result sets are multisets unless the
query orders them), but must still catch real value, shape and schema
divergences.

Comparison strategy:

1. schema (column names and order) must match exactly;
2. row counts must match exactly;
3. rows of both tables are brought into a canonical order (lexsort over
   all columns, string columns first) and compared cell-wise with
   ``rtol``/``atol`` (NaN == NaN: an empty group's AVG is NaN on every
   correct path);
4. if the row-aligned comparison fails, each column is also compared
   independently sorted — near-tied sort keys can legally order rows
   differently across paths at the tolerance boundary; only if that
   fallback fails too is a divergence reported.

:func:`self_test` runs the comparator over canned equal/divergent pairs
and fails if it misclassifies either direction — the fuzz CLI runs it
before every sweep so a comparator bug (e.g. a tolerance typo that makes
everything "equal") cannot silently blind the whole harness.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..storage.table import Table

__all__ = ["compare_tables", "self_test", "ComparatorBroken"]


class ComparatorBroken(AssertionError):
    """The comparator misclassified a canned self-test case."""


def _canonical_order(table: Table) -> np.ndarray:
    """Row permutation sorting by all columns (strings as primary keys).

    String/bool/int columns sort exactly; float columns participate too,
    so duplicate categorical keys still land in a deterministic order.
    """
    keys = []
    for col in reversed(table.schema.columns):
        values = table.column(col.name)
        if values.dtype == object:
            keys.append(np.asarray([str(v) for v in values], dtype=object))
        else:
            keys.append(values)
    if not keys:
        return np.arange(table.num_rows)
    return np.lexsort(keys)


def _cells_match(a: np.ndarray, b: np.ndarray,
                 rtol: float, atol: float) -> np.ndarray:
    """Elementwise match mask with float tolerance and NaN == NaN."""
    if a.dtype == object or b.dtype == object:
        return np.asarray(
            [str(x) == str(y) for x, y in zip(a.tolist(), b.tolist())],
            dtype=bool,
        )
    if a.dtype == np.bool_ and b.dtype == np.bool_:
        return a == b
    fa = np.asarray(a, dtype=np.float64)
    fb = np.asarray(b, dtype=np.float64)
    return np.isclose(fa, fb, rtol=rtol, atol=atol, equal_nan=True)


def compare_tables(expected: Table, actual: Table,
                   rtol: float = 1e-6, atol: float = 1e-9) -> List[str]:
    """Compare two result tables; returns a list of divergence messages.

    An empty list means the tables agree (up to tolerance and row
    order).  Messages are compact and meant for the JSON report.
    """
    problems: List[str] = []
    if expected.schema.names != actual.schema.names:
        return [
            "schema mismatch: expected "
            f"{expected.schema.names} got {actual.schema.names}"
        ]
    if expected.num_rows != actual.num_rows:
        return [
            f"row count mismatch: expected {expected.num_rows} "
            f"got {actual.num_rows}"
        ]
    if expected.num_rows == 0:
        return []

    ea = _canonical_order(expected)
    aa = _canonical_order(actual)
    row_mismatch: List[str] = []
    for name in expected.schema.names:
        e = expected.column(name)[ea]
        a = actual.column(name)[aa]
        mask = _cells_match(e, a, rtol, atol)
        if not mask.all():
            bad = int(np.argmin(mask))
            row_mismatch.append(
                f"column {name!r}: {int((~mask).sum())} cell(s) differ, "
                f"first at canonical row {bad}: "
                f"expected {e[bad]!r} got {a[bad]!r}"
            )
    if not row_mismatch:
        return problems

    # Fallback: near-tied canonical keys can legally interleave rows
    # differently across paths.  Compare each column independently
    # sorted; only a column whose *value multiset* differs diverges.
    for name in expected.schema.names:
        e = expected.column(name)
        a = actual.column(name)
        if e.dtype == object or a.dtype == object:
            es = sorted(str(v) for v in e.tolist())
            as_ = sorted(str(v) for v in a.tolist())
            if es != as_:
                problems.append(
                    f"column {name!r}: value multiset differs"
                )
            continue
        es = np.sort(np.asarray(e, dtype=np.float64))
        as_ = np.sort(np.asarray(a, dtype=np.float64))
        mask = np.isclose(es, as_, rtol=rtol, atol=atol, equal_nan=True)
        if not mask.all():
            bad = int(np.argmin(mask))
            problems.append(
                f"column {name!r}: sorted values differ at rank {bad}: "
                f"expected {es[bad]!r} got {as_[bad]!r}"
            )
    return problems


# ---------------------------------------------------------------------------
# Self test
# ---------------------------------------------------------------------------


def _t(**cols) -> Table:
    return Table.from_columns(
        {k: np.asarray(v) for k, v in cols.items()}
    )


def _self_test_cases():
    """(name, expected, actual, should_diverge) canned cases."""
    base = _t(g=np.array(["a", "b", "c"], dtype=object),
              v=[1.0, 2.0, 3.0])
    noisy = _t(g=np.array(["a", "b", "c"], dtype=object),
               v=[1.0 + 1e-12, 2.0, 3.0 - 1e-12])
    reordered = _t(g=np.array(["c", "a", "b"], dtype=object),
                   v=[3.0, 1.0, 2.0])
    wrong_value = _t(g=np.array(["a", "b", "c"], dtype=object),
                     v=[1.0, 2.1, 3.0])
    wrong_rows = _t(g=np.array(["a", "b"], dtype=object), v=[1.0, 2.0])
    wrong_schema = _t(g=np.array(["a", "b", "c"], dtype=object),
                      w=[1.0, 2.0, 3.0])
    nan_a = _t(v=[float("nan")])
    nan_b = _t(v=[float("nan")])
    nan_vs_num = _t(v=[0.0])
    return [
        ("identical", base, base, False),
        ("fp-noise", base, noisy, False),
        ("row-order", base, reordered, False),
        ("value-diff", base, wrong_value, True),
        ("row-count", base, wrong_rows, True),
        ("schema", base, wrong_schema, True),
        ("nan-nan", nan_a, nan_b, False),
        ("nan-vs-number", nan_a, nan_vs_num, True),
    ]


def self_test(rtol: float = 1e-6, atol: float = 1e-9,
              tracer=None) -> Optional[str]:
    """Validate the comparator against canned cases.

    Returns None when the comparator classifies every case correctly,
    else a description of the first misclassification.  A deliberately
    broken tolerance (``rtol=np.inf``) must therefore be *caught* here:
    the divergent cases stop diverging and the harness refuses to run.
    """
    for name, expected, actual, should_diverge in _self_test_cases():
        diverged = bool(compare_tables(expected, actual,
                                       rtol=rtol, atol=atol))
        if diverged != should_diverge:
            verdict = (
                f"comparator self-test failed on case {name!r}: "
                + ("reported a divergence on equal tables"
                   if diverged else "missed a real divergence")
            )
            if tracer is not None and tracer.metrics.enabled:
                tracer.metrics.counter("qa.selftest_failures").inc()
            return verdict
    return None


def assert_self_test(rtol: float = 1e-6, atol: float = 1e-9,
                     tracer=None) -> None:
    """Raise :class:`ComparatorBroken` if :func:`self_test` fails."""
    verdict = self_test(rtol=rtol, atol=atol, tracer=tracer)
    if verdict is not None:
        raise ComparatorBroken(verdict)
