"""Statistical calibration of the bootstrap confidence intervals.

The paper's central promise is not just "an estimate early" but "an
estimate *with error bars that mean what they say*": a 95% confidence
interval reported at batch ``i`` should cover the ground truth ``Q(D)``
in ~95% of runs.  This module measures that empirically: it replays a
query across many RNG seeds (each seed draws a fresh mini-batch
partitioning and fresh bootstrap weights), records whether the interval
at a fixed mid-run batch covers the exact batch answer, and tests the
hit count against an exact binomial acceptance band around the nominal
confidence.

The band is the central acceptance region of ``Binomial(runs, nominal)``
at significance ``alpha``: coverage inside the band is consistent with
nominal; outside it, the estimator is mis-calibrated (too-narrow
intervals under-cover; too-wide ones over-cover and waste refinement
time) and the calibration run *fails* — this is what the CI job asserts.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..config import GolaConfig
from ..core.session import GolaSession
from ..obs import Tracer
from ..storage.table import Table


# ---------------------------------------------------------------------------
# Exact binomial acceptance band
# ---------------------------------------------------------------------------


def _binom_logpmf(n: int, p: float) -> List[float]:
    """log pmf of Binomial(n, p) for k = 0..n (lgamma; no scipy)."""
    logp = math.log(p)
    logq = math.log1p(-p)
    lg = math.lgamma
    return [
        lg(n + 1) - lg(k + 1) - lg(n - k + 1) + k * logp + (n - k) * logq
        for k in range(n + 1)
    ]


def binomial_band(n: int, p: float, alpha: float = 1e-3
                  ) -> Tuple[int, int]:
    """Central acceptance region ``[lo, hi]`` for ``X ~ Binomial(n, p)``.

    ``lo`` is the smallest hit count with lower tail mass > alpha/2;
    ``hi`` the largest with upper tail mass > alpha/2.  A hit count
    outside ``[lo, hi]`` rejects "true coverage == p" at level alpha.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    pmf = [math.exp(lp) for lp in _binom_logpmf(n, p)]
    half = alpha / 2.0
    lower = 0.0
    lo = 0
    for k in range(n + 1):
        lower += pmf[k]
        if lower > half:
            lo = k
            break
    upper = 0.0
    hi = n
    for k in range(n, -1, -1):
        upper += pmf[k]
        if upper > half:
            hi = k
            break
    return lo, hi


# ---------------------------------------------------------------------------
# Calibration workloads
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CalibrationQuery:
    """One workload query to calibrate against.

    The classic entries are scalar (1x1) queries over a single streamed
    table.  Two extensions cover the deep query surface:

    * ``bundle`` — a generator returning several named tables at once
      (``{name: (table, streamed)}``), for multi-fact and dimension-join
      queries; when set, ``table``/``generator`` are ignored.
    * ``target`` — ``(value_column, key_column, key_value)`` selecting
      one cell of a multi-row result (e.g. the last day of a rolling
      window); coverage is then measured on that cell's per-row interval
      instead of the scalar ``snapshot.interval``.
    """

    name: str
    sql: str
    table: str
    generator: Callable[[int, int], Table]  # (rows, seed) -> Table
    bundle: Optional[
        Callable[[int, int], Dict[str, Tuple[Table, bool]]]
    ] = None
    target: Optional[Tuple[str, str, float]] = None


def _workloads() -> Dict[str, CalibrationQuery]:
    from ..workloads import (
        SBI_QUERY,
        generate_conviva,
        generate_sessions,
        generate_tpch,
    )
    from ..workloads.conviva import C3_QUERY
    from ..workloads.taxi import NUM_DAYS, QUERIES as TAXI, generate_taxi
    from ..workloads.tpch import Q17_QUERY, Q20_QUERY

    def sessions(rows, seed):
        return generate_sessions(rows, seed=seed)

    def conviva(rows, seed):
        return generate_conviva(rows, seed=seed)

    def tpch(rows, seed):
        return generate_tpch(rows, seed=seed)

    def taxi(rows, seed):
        tables = generate_taxi(rows, seed=seed)
        return {
            "trips": (tables["trips"], True),
            "surcharges": (tables["surcharges"], True),
            "zones": (tables["zones"], False),
            "vendors": (tables["vendors"], False),
        }

    def _taxi_query(name, sql, target=None):
        return CalibrationQuery(name, sql, "trips", lambda r, s: None,
                                bundle=taxi, target=target)

    return {
        "sbi": CalibrationQuery("sbi", SBI_QUERY, "sessions", sessions),
        "c3": CalibrationQuery("c3", C3_QUERY, "conviva", conviva),
        "q17": CalibrationQuery("q17", Q17_QUERY, "tpch", tpch),
        "q20": CalibrationQuery("q20", Q20_QUERY, "tpch", tpch),
        # Deep query-surface calibration (taxi workload): a rolling
        # window cell, a filtered COUNT DISTINCT, and a p95 over a
        # dimension join.  The window target is the cumulative sum at
        # the final day — the cell with the most accumulated variance.
        "t_roll": _taxi_query(
            "t_roll", TAXI["T1"],
            target=("cum_trips", "day", float(NUM_DAYS - 1)),
        ),
        "t_dist": _taxi_query("t_dist", TAXI["T4"]),
        "t_p95": _taxi_query("t_p95", TAXI["T6"]),
    }


def calibration_queries() -> Dict[str, CalibrationQuery]:
    """All calibration workload queries by short name.

    ``sbi``/``c3``/``q17``/``q20`` are the paper's scalar workloads;
    ``t_roll``/``t_dist``/``t_p95`` cover the deep query surface
    (window, DISTINCT, quantile-over-join) on the taxi dataset.
    """
    return _workloads()


# ---------------------------------------------------------------------------
# The calibration measurement
# ---------------------------------------------------------------------------


@dataclass
class CalibrationResult:
    """Empirical coverage of one query's intervals at one batch index."""

    name: str
    sql: str
    runs: int
    hits: int
    nominal: float
    batch_index: int
    num_batches: int
    band: Tuple[int, int]
    truth: float
    elapsed_s: float = 0.0
    mean_width: float = 0.0

    @property
    def coverage(self) -> float:
        return self.hits / self.runs

    @property
    def ok(self) -> bool:
        lo, hi = self.band
        return lo <= self.hits <= hi

    def to_dict(self) -> dict:
        return {
            "query": self.name,
            "sql": self.sql.strip(),
            "runs": self.runs,
            "hits": self.hits,
            "coverage": round(self.coverage, 6),
            "nominal": self.nominal,
            "band": {"lo": self.band[0], "hi": self.band[1],
                     "lo_rate": round(self.band[0] / self.runs, 6),
                     "hi_rate": round(self.band[1] / self.runs, 6)},
            "batch_index": self.batch_index,
            "num_batches": self.num_batches,
            "truth": self.truth,
            "mean_interval_width": round(self.mean_width, 9),
            "ok": self.ok,
            "elapsed_s": round(self.elapsed_s, 3),
        }


@dataclass
class CalibrationConfig:
    """Knobs for one calibration sweep."""

    runs: int = 100
    rows: int = 4000
    num_batches: int = 6
    bootstrap_trials: int = 60
    fraction: float = 0.5
    confidence: float = 0.95
    alpha: float = 1e-3
    base_seed: int = 1000
    data_seed: int = 7


def _cell(table: Table, value_column: str, key_column: str,
          key_value: float) -> Tuple[Optional[int], Optional[float]]:
    """Locate ``value_column`` at the row where ``key_column == key``.

    Returns ``(row_index, value)``; ``(None, None)`` if the key is
    absent (possible in an early online snapshot before every group has
    been observed — counted as a coverage miss, since the interval for
    an unseen cell cannot cover the truth).
    """
    import numpy as np

    keys = np.asarray(table.column(key_column))
    matches = np.nonzero(keys == key_value)[0]
    if len(matches) == 0:
        return None, None
    idx = int(matches[0])
    return idx, float(np.asarray(table.column(value_column))[idx])


def calibrate_query(query: CalibrationQuery,
                    config: Optional[CalibrationConfig] = None,
                    tracer: Optional[Tracer] = None) -> CalibrationResult:
    """Measure one query's empirical CI coverage across seeds.

    Each run re-partitions the same data with a fresh master seed, runs
    online to the target batch, and records whether that snapshot's
    interval covers the exact answer.  The data itself is fixed (truth
    must be a constant for coverage to be meaningful).
    """
    cal = config or CalibrationConfig()
    tracer = tracer if tracer is not None else Tracer()
    if query.bundle is not None:
        bundle = query.bundle(cal.rows, cal.data_seed)
    else:
        bundle = {query.table: (query.generator(cal.rows, cal.data_seed),
                                True)}

    def _register(session: GolaSession) -> None:
        for name, (tbl, streamed) in bundle.items():
            session.register_table(name, tbl, streamed=streamed)

    target_batch = max(1, min(cal.num_batches,
                              round(cal.fraction * cal.num_batches)))
    band = binomial_band(cal.runs, cal.confidence, cal.alpha)

    base = GolaConfig(
        num_batches=cal.num_batches,
        bootstrap_trials=cal.bootstrap_trials,
        confidence=cal.confidence,
        seed=cal.base_seed,
    )
    truth_session = GolaSession(base)
    _register(truth_session)
    exact = truth_session.execute_batch(query.sql)
    if query.target is not None:
        value_col, key_col, key_value = query.target
        _, truth_val = _cell(exact, value_col, key_col, key_value)
        if truth_val is None:
            raise ValueError(
                f"calibration target {key_col}=={key_value!r} absent "
                f"from the exact result of {query.name!r}"
            )
        truth = truth_val
    else:
        truth = float(exact.column(exact.schema.names[0])[0])

    hits = 0
    width_sum = 0.0
    started = time.perf_counter()
    with tracer.span("qa.calibrate", query=query.name, runs=cal.runs):
        for r in range(cal.runs):
            run_config = base.with_options(seed=cal.base_seed + r)
            session = GolaSession(run_config)
            _register(session)
            online = session.sql(query.sql)
            snapshot = None
            for snap in online.run_online():
                snapshot = snap
                if snap.batch_index >= target_batch:
                    online.stop()
            if snapshot is None:
                raise RuntimeError("online run produced no snapshots")
            if query.target is not None:
                value_col, key_col, key_value = query.target
                idx, _ = _cell(snapshot.table, value_col, key_col,
                               key_value)
                if idx is None:
                    continue  # unseen cell: a miss with zero width
                errs = snapshot.errors[value_col]
                lo = float(errs.lows[idx])
                hi = float(errs.highs[idx])
                width_sum += hi - lo
                if lo <= truth <= hi:
                    hits += 1
            else:
                interval = snapshot.interval
                width_sum += interval.width
                if interval.contains(truth):
                    hits += 1
            if tracer.metrics.enabled:
                tracer.metrics.counter("qa.calibration_runs").inc()
    result = CalibrationResult(
        name=query.name, sql=query.sql, runs=cal.runs, hits=hits,
        nominal=cal.confidence, batch_index=target_batch,
        num_batches=cal.num_batches, band=band, truth=truth,
        elapsed_s=time.perf_counter() - started,
        mean_width=width_sum / cal.runs,
    )
    if tracer.metrics.enabled and not result.ok:
        tracer.metrics.counter("qa.calibration_failures").inc()
    return result


@dataclass
class CalibrationReport:
    """All queries' calibration results plus the overall verdict."""

    results: List[CalibrationResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "results": [r.to_dict() for r in self.results],
        }


def calibrate(names: Optional[List[str]] = None,
              config: Optional[CalibrationConfig] = None,
              tracer: Optional[Tracer] = None) -> CalibrationReport:
    """Calibrate the named workload queries (all of them by default)."""
    workloads = calibration_queries()
    if names is None:
        names = list(workloads)
    report = CalibrationReport()
    for name in names:
        key = name.lower()
        if key not in workloads:
            raise ValueError(
                f"unknown calibration query {name!r}; "
                f"known: {', '.join(sorted(workloads))}"
            )
        report.results.append(
            calibrate_query(workloads[key], config=config, tracer=tracer)
        )
    return report
