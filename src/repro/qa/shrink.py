"""Failing-query minimization and one-file reproducer artifacts.

When the differential runner finds a divergence, the raw query is
usually noisy — several predicates, a join, extra aggregates, thousands
of rows — most of which has nothing to do with the bug.  The
:class:`Shrinker` minimizes the failing :class:`~repro.qa.runner.
FuzzCase` greedily:

1. try each structural simplification of the query (drop one predicate,
   the HAVING, the ORDER BY, the join, one group-by column, one
   aggregate — see :func:`repro.qa.generator.shrink_candidates`), keep
   the first variant that *still diverges*, repeat to a fixpoint;
2. then shrink the data: halve each table's row count while the
   divergence persists (re-materializing from the spec each time).

The result is saved as a single JSON artifact containing the full
:class:`FuzzCase` (table specs + query spec + config), the rendered SQL,
and the divergence messages observed — everything needed to replay the
failure in a fresh process with ``python -m repro fuzz --replay <file>``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Tuple

from dataclasses import replace

from .generator import shrink_candidates
from .runner import CaseReport, DifferentialRunner, FuzzCase

ARTIFACT_KIND = "repro-qa-reproducer"
ARTIFACT_VERSION = 1

_MIN_ROWS = 64


class Shrinker:
    """Greedy structural + data minimizer for divergent fuzz cases."""

    def __init__(self, runner: DifferentialRunner,
                 max_attempts: int = 200):
        self.runner = runner
        self.max_attempts = max_attempts

    def _still_diverges(self, case: FuzzCase) -> Optional[CaseReport]:
        report = self.runner.run_case(case)
        return report if report.diverged else None

    def shrink(self, case: FuzzCase,
               report: Optional[CaseReport] = None
               ) -> Tuple[FuzzCase, CaseReport]:
        """Return the minimal still-diverging case and its report."""
        if report is None:
            report = self.runner.run_case(case)
        if not report.diverged:
            raise ValueError("case does not diverge; nothing to shrink")
        attempts = 0
        metrics = self.runner.tracer.metrics

        # Phase 1: structural fixpoint over the query spec.
        progress = True
        while progress and attempts < self.max_attempts:
            progress = False
            for candidate_query in shrink_candidates(case.query):
                attempts += 1
                candidate = replace(case, query=candidate_query)
                smaller = self._still_diverges(candidate)
                if smaller is not None:
                    case, report = candidate, smaller
                    progress = True
                    break
                if attempts >= self.max_attempts:
                    break

        # Phase 2: shrink each table's data while the failure persists.
        progress = True
        while progress and attempts < self.max_attempts:
            progress = False
            for i, spec in enumerate(case.tables):
                if spec.rows // 2 < _MIN_ROWS:
                    continue
                shrunk = list(case.tables)
                shrunk[i] = spec.with_rows(spec.rows // 2)
                attempts += 1
                candidate = replace(case, tables=tuple(shrunk))
                smaller = self._still_diverges(candidate)
                if smaller is not None:
                    case, report = candidate, smaller
                    progress = True
                if attempts >= self.max_attempts:
                    break

        if metrics.enabled:
            metrics.counter("qa.shrink_attempts").inc(attempts)
        return case, report


# ---------------------------------------------------------------------------
# Reproducer artifacts
# ---------------------------------------------------------------------------


def artifact_dict(case: FuzzCase, report: CaseReport) -> dict:
    """The JSON body of a one-file reproducer."""
    return {
        "kind": ARTIFACT_KIND,
        "version": ARTIFACT_VERSION,
        "how_to_replay": "python -m repro fuzz --replay <this file>",
        "sql": case.sql,
        "divergences": list(report.divergences),
        "outcomes": {
            name: o.to_dict() for name, o in report.outcomes.items()
        },
        "case": case.to_dict(),
    }


def save_artifact(case: FuzzCase, report: CaseReport, path) -> Path:
    """Write the reproducer artifact; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(artifact_dict(case, report), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    return path


def load_artifact(path) -> FuzzCase:
    """Load a reproducer artifact back into a runnable case."""
    body = json.loads(Path(path).read_text(encoding="utf-8"))
    if body.get("kind") != ARTIFACT_KIND:
        raise ValueError(f"{path} is not a {ARTIFACT_KIND} artifact")
    return FuzzCase.from_dict(body["case"])


def replay_artifact(path, runner: Optional[DifferentialRunner] = None
                    ) -> CaseReport:
    """Re-run a saved reproducer; the report shows whether it still fails."""
    case = load_artifact(path)
    if runner is None:
        runner = DifferentialRunner()
    return runner.run_case(case)
