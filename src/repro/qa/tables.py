"""Seeded random table specs for the QA harness (``repro.qa``).

A :class:`TableSpec` is a tiny, JSON-serializable recipe — name, row
count, seed and a list of typed column specs — from which
:func:`generate_table` deterministically materializes a
:class:`~repro.storage.table.Table`.  Because a spec (not the data) is
what the fuzzer records in failure artifacts, a one-file reproducer can
rebuild the exact tables a divergence was found on, and the shrinker can
minimize a failure by shrinking the *spec* (fewer rows, fewer columns)
and re-materializing.

Column kinds:

``key``
    int64 foreign-key-like values in ``[0, card)``; usable for GROUP
    BY, correlated subqueries and joins against a dimension's ``id``.
``id``
    int64 primary key ``0..rows-1`` (dimension tables; unique).
``int``
    small non-negative int64 measures.
``float``
    positive exponential float64 measures (the paper's play/buffer
    times are exponential).
``tail``
    heavy-tailed positive float64 (lognormal) — exercises estimator
    behaviour under skew.
``category``
    low-cardinality strings with zipf-ish popularity skew.
``bool``
    booleans.
``nullish``
    float64 measures with a heavy NaN fraction (the engine's stand-in
    for NULLs) — exercises NaN propagation through aggregates and
    NaN-dropping comparison predicates identically across paths.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..storage.table import Table

COLUMN_KINDS = ("key", "id", "int", "float", "tail", "category", "bool",
                "nullish")

#: Kinds that yield numeric measure columns (aggregate arguments).
NUMERIC_KINDS = ("int", "float", "tail", "nullish")

#: Kinds that make sensible GROUP BY / correlation keys.
GROUPABLE_KINDS = ("key", "category", "bool")


@dataclass(frozen=True)
class ColumnSpec:
    """One column's recipe: a name, a kind and shape parameters."""

    name: str
    kind: str
    card: int = 8       # key/category cardinality
    scale: float = 1.0  # numeric scale multiplier

    def __post_init__(self) -> None:
        if self.kind not in COLUMN_KINDS:
            raise ValueError(
                f"unknown column kind {self.kind!r}; one of {COLUMN_KINDS}"
            )
        if self.card < 1:
            raise ValueError("card must be >= 1")
        if self.scale <= 0:
            raise ValueError("scale must be > 0")

    def to_dict(self) -> dict:
        return {"name": self.name, "kind": self.kind,
                "card": self.card, "scale": self.scale}

    @classmethod
    def from_dict(cls, d: dict) -> "ColumnSpec":
        return cls(name=d["name"], kind=d["kind"],
                   card=int(d.get("card", 8)),
                   scale=float(d.get("scale", 1.0)))


@dataclass(frozen=True)
class TableSpec:
    """A deterministic table recipe; equal specs generate equal tables."""

    name: str
    rows: int
    seed: int
    columns: Tuple[ColumnSpec, ...] = field(default_factory=tuple)
    streamed: bool = True

    def __post_init__(self) -> None:
        if self.rows < 1:
            raise ValueError("rows must be >= 1")
        if not self.columns:
            raise ValueError("a table needs at least one column")

    def with_rows(self, rows: int) -> "TableSpec":
        return TableSpec(self.name, rows, self.seed, self.columns,
                         self.streamed)

    def to_dict(self) -> dict:
        return {
            "name": self.name, "rows": self.rows, "seed": self.seed,
            "streamed": self.streamed,
            "columns": [c.to_dict() for c in self.columns],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TableSpec":
        return cls(
            name=d["name"], rows=int(d["rows"]), seed=int(d["seed"]),
            streamed=bool(d.get("streamed", True)),
            columns=tuple(ColumnSpec.from_dict(c) for c in d["columns"]),
        )


def _category_values(name: str, card: int) -> np.ndarray:
    return np.array([f"{name}_{i}" for i in range(card)], dtype=object)


def generate_table(spec: TableSpec) -> Table:
    """Materialize a spec into a Table (bit-reproducible per spec)."""
    rng = np.random.default_rng(spec.seed)
    n = spec.rows
    columns: Dict[str, np.ndarray] = {}
    for col in spec.columns:
        # One child stream per column: adding/removing a column does not
        # reshuffle the others, which keeps shrinks "local".  The stream
        # seed must survive process boundaries (artifacts replay in a
        # fresh interpreter), so no builtin hash() here.
        digest = hashlib.blake2s(
            f"{spec.seed}/{col.name}".encode("utf-8"), digest_size=8
        ).digest()
        crng = np.random.default_rng(int.from_bytes(digest, "little"))
        if col.kind == "key":
            columns[col.name] = crng.integers(0, col.card, n,
                                              dtype=np.int64)
        elif col.kind == "id":
            columns[col.name] = np.arange(n, dtype=np.int64)
        elif col.kind == "int":
            columns[col.name] = crng.integers(
                0, max(2, int(50 * col.scale)), n, dtype=np.int64
            )
        elif col.kind == "float":
            columns[col.name] = crng.exponential(30.0 * col.scale, n)
        elif col.kind == "tail":
            columns[col.name] = crng.lognormal(
                mean=np.log(20.0 * col.scale), sigma=1.5, size=n
            )
        elif col.kind == "bool":
            columns[col.name] = crng.random(n) < 0.5
        elif col.kind == "nullish":
            values = crng.exponential(30.0 * col.scale, n)
            values[crng.random(n) < 0.35] = np.nan
            columns[col.name] = values
        else:  # category
            values = _category_values(col.name, col.card)
            weights = 1.0 / np.arange(1, col.card + 1)
            weights /= weights.sum()
            columns[col.name] = values[
                crng.choice(col.card, n, p=weights)
            ]
    del rng
    return Table.from_columns(columns)


# ---------------------------------------------------------------------------
# Random spec construction (the fuzzer's input universe)
# ---------------------------------------------------------------------------


def random_fact_spec(rng: np.random.Generator, rows: int,
                     name: str = "fact", seed: int = 0,
                     grammar: str = "default") -> TableSpec:
    """A random streamed fact table: keys, measures and dimensions.

    The ``deep`` grammar always includes a NaN-heavy ``nullish`` measure
    (the NULL-edge bias) alongside the usual float/tail measures.
    """
    cols: List[ColumnSpec] = [
        ColumnSpec("k1", "key", card=int(rng.integers(6, 24))),
    ]
    if rng.random() < 0.5:
        cols.append(ColumnSpec("k2", "key",
                               card=int(rng.integers(4, 12))))
    n_floats = int(rng.integers(2, 5))
    for i in range(n_floats):
        kind = "tail" if rng.random() < 0.25 else "float"
        cols.append(ColumnSpec(f"x{i + 1}", kind,
                               scale=float(rng.uniform(0.5, 3.0))))
    if rng.random() < 0.6:
        cols.append(ColumnSpec("m1", "int",
                               scale=float(rng.uniform(0.5, 2.0))))
    if grammar == "deep" or rng.random() < 0.15:
        cols.append(ColumnSpec("n1", "nullish",
                               scale=float(rng.uniform(0.5, 2.0))))
    n_cats = int(rng.integers(1, 3))
    for i in range(n_cats):
        cols.append(ColumnSpec(f"c{i + 1}", "category",
                               card=int(rng.integers(3, 9))))
    if rng.random() < 0.5:
        cols.append(ColumnSpec("flag", "bool"))
    return TableSpec(name=name, rows=rows, seed=seed,
                     columns=tuple(cols), streamed=True)


_MIN_FACT2_ROWS = 64


def random_fact2_spec(rng: np.random.Generator, fact: TableSpec,
                      name: str = "fact2", seed: int = 2) -> TableSpec:
    """A second streamed fact sharing the primary fact's first key.

    Multi-fact queries correlate the two facts through this shared key
    column (same name, same cardinality), so generated subqueries like
    ``(SELECT AVG(y1) FROM fact2 t WHERE t.k1 = fact.k1)`` always
    resolve and always have matching key domains.
    """
    key = next(c for c in fact.columns if c.kind == "key")
    cols = [
        ColumnSpec(key.name, "key", card=key.card),
        ColumnSpec("y1", "float", scale=float(rng.uniform(0.5, 2.0))),
    ]
    if rng.random() < 0.5:
        cols.append(ColumnSpec("y2", "tail",
                               scale=float(rng.uniform(0.5, 2.0))))
    rows = max(_MIN_FACT2_ROWS, fact.rows // 2)
    return TableSpec(name=name, rows=rows, seed=seed,
                     columns=tuple(cols), streamed=True)


def random_dim_spec(rng: np.random.Generator, fact: TableSpec,
                    name: str = "dim", seed: int = 1) -> TableSpec:
    """A dimension table joinable on the fact's first key column."""
    key = next(c for c in fact.columns if c.kind == "key")
    cols = [
        ColumnSpec(f"{name}_id", "id"),
        ColumnSpec(f"{name}_cat", "category",
                   card=int(rng.integers(2, 6))),
        ColumnSpec(f"{name}_weight", "float",
                   scale=float(rng.uniform(0.5, 2.0))),
    ]
    return TableSpec(name=name, rows=key.card, seed=seed,
                     columns=tuple(cols), streamed=False)
