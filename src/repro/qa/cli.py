"""Implementations of ``python -m repro fuzz`` / ``calibrate``.

Kept out of ``repro.__main__`` so the argparse wiring there stays thin
and the sweeps are callable programmatically (the CI jobs and the
integration tests drive these functions directly).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import List, Optional

import numpy as np

from ..config import QaConfig
from ..obs import MetricsRegistry, Tracer
from .calibrate import CalibrationConfig, calibrate
from .compare import self_test
from .generator import QueryGenerator
from .runner import DifferentialRunner, FuzzCase
from .shrink import Shrinker, replay_artifact, save_artifact
from .tables import (
    generate_table,
    random_dim_spec,
    random_fact2_spec,
    random_fact_spec,
)


def _print(msg: str) -> None:
    print(msg, flush=True)


def _make_tracer() -> Tracer:
    return Tracer(metrics=MetricsRegistry(enabled=True))


def _qa_counters(tracer: Tracer) -> dict:
    counters = tracer.metrics.snapshot().counters
    return {k: v for k, v in sorted(counters.items())
            if k.startswith("qa.")}


def run_fuzz(qa: QaConfig, out: Optional[str] = None,
             inject_bug: Optional[str] = None,
             replay: Optional[str] = None) -> int:
    """One differential fuzz sweep; returns a process exit code.

    Order of operations: comparator self-test first (a broken comparator
    must refuse to certify anything), then either an artifact replay or
    a fresh seeded sweep.  Exit code 0 means every generated query agreed
    across all paths (agreed rejections included); 1 means at least one
    divergence (reproducer artifacts are written), 2 means the harness
    itself is unhealthy.
    """
    tracer = _make_tracer()

    verdict = self_test(rtol=qa.rtol, atol=qa.atol, tracer=tracer)
    if verdict is not None:
        _print(f"FATAL: {verdict}")
        _print("the comparator cannot be trusted; aborting the sweep")
        return 2
    _print("comparator self-test: ok "
           f"(rtol={qa.rtol:g}, atol={qa.atol:g})")

    runner = DifferentialRunner(
        rtol=qa.rtol, atol=qa.atol, workers=qa.workers,
        include_serve=qa.include_serve,
        include_colstore=qa.include_colstore, tracer=tracer,
    )

    if replay is not None:
        report = replay_artifact(replay, runner)
        _print(f"replayed {replay}:")
        _print(f"  sql: {report.case.sql!r}")
        for problem in report.divergences:
            _print(f"  divergence: {problem}")
        if report.diverged:
            _print("replay REPRODUCED the divergence")
            return 1
        _print("replay did NOT reproduce (fixed, or environment-"
               "dependent)")
        return 0

    rng = np.random.default_rng(qa.seed)
    fact = random_fact_spec(rng, rows=qa.rows, seed=qa.seed,
                            grammar=qa.grammar)
    dim = random_dim_spec(rng, fact, seed=qa.seed + 1)
    fact_table = generate_table(fact)
    dim_table = generate_table(dim)
    specs = (fact, dim)
    fact2_pair = None
    if qa.grammar == "deep":
        fact2 = random_fact2_spec(rng, fact, seed=qa.seed + 2)
        fact2_pair = (fact2, generate_table(fact2))
        specs = (fact, fact2, dim)
    generator = QueryGenerator(
        fact, fact_table, dims={dim.name: (dim, dim_table)},
        seed=qa.seed, fact2=fact2_pair, grammar=qa.grammar,
    )
    paths = "batch/cdm/serial/parallel" + (
        "/serve" if qa.include_serve else ""
    ) + ("/colstore" if qa.include_colstore else "")
    _print(f"fuzzing {qa.queries} queries (seed={qa.seed}, "
           f"rows={qa.rows}, grammar={qa.grammar}, paths={paths})"
           + (f", injected bug in path {inject_bug!r}" if inject_bug
              else ""))

    started = time.perf_counter()
    reports = []
    divergent = []
    with tracer.span("qa.fuzz", seed=qa.seed, queries=qa.queries):
        for i in range(qa.queries):
            case = FuzzCase(
                tables=specs, query=generator.generate(),
                num_batches=qa.num_batches,
                bootstrap_trials=qa.bootstrap_trials,
                seed=qa.seed + i, inject_bug=inject_bug,
            )
            report = runner.run_case(case)
            reports.append(report)
            if report.diverged:
                divergent.append(report)
                _print(f"  query {i}: DIVERGED "
                       f"({len(report.divergences)} problem(s))")
            elif (i + 1) % 10 == 0:
                _print(f"  {i + 1}/{qa.queries} queries checked")

    artifacts: List[str] = []
    if divergent and qa.shrink:
        shrinker = Shrinker(runner)
        for j, report in enumerate(divergent):
            minimal, min_report = shrinker.shrink(report.case, report)
            path = save_artifact(
                minimal, min_report,
                Path(qa.artifact_dir) / f"divergence-{qa.seed}-{j}.json",
            )
            artifacts.append(str(path))
            _print(f"  reproducer written: {path}")

    elapsed = time.perf_counter() - started
    rejected = sum(1 for r in reports if r.agreed_rejection)
    summary = {
        "seed": qa.seed,
        "grammar": qa.grammar,
        "queries": len(reports),
        "ok": len(reports) - len(divergent) - rejected,
        "agreed_rejections": rejected,
        "divergences": len(divergent),
        "paths": paths.split("/"),
        "elapsed_s": round(elapsed, 3),
        "rtol": qa.rtol,
        "atol": qa.atol,
        "injected_bug": inject_bug,
        "artifacts": artifacts,
        "counters": _qa_counters(tracer),
        "reports": [
            r.to_dict(include_case=r.diverged) for r in reports
        ],
    }
    if out:
        Path(out).write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        _print(f"report written to {out}")
    _print(
        f"fuzz: {summary['ok']} agreed, {rejected} agreed-rejected, "
        f"{len(divergent)} diverged in {elapsed:.1f}s"
    )
    return 1 if divergent else 0


def run_calibrate(qa: QaConfig, queries: Optional[List[str]] = None,
                  runs: Optional[int] = None,
                  rows: Optional[int] = None,
                  num_batches: int = 6,
                  trials: int = 60,
                  out: Optional[str] = None) -> int:
    """One CI-coverage calibration sweep; returns a process exit code."""
    tracer = _make_tracer()
    cal = CalibrationConfig(
        runs=runs if runs is not None else qa.calibration_runs,
        rows=rows if rows is not None else qa.rows,
        num_batches=num_batches,
        bootstrap_trials=trials,
        fraction=qa.calibration_fraction,
        alpha=qa.calibration_alpha,
        base_seed=qa.seed + 1000,
    )
    _print(
        f"calibrating bootstrap CI coverage: {cal.runs} runs/query, "
        f"rows={cal.rows}, snapshot at batch "
        f"{max(1, round(cal.fraction * cal.num_batches))}"
        f"/{cal.num_batches}, alpha={cal.alpha:g}"
    )
    report = calibrate(queries, config=cal, tracer=tracer)
    for result in report.results:
        lo, hi = result.band
        state = "ok" if result.ok else "OUT OF BAND"
        _print(
            f"  {result.name:<4} coverage {result.hits}/{result.runs} "
            f"= {result.coverage:.1%} (nominal {result.nominal:.0%}, "
            f"band [{lo}, {hi}] = "
            f"[{lo / result.runs:.1%}, {hi / result.runs:.1%}]) "
            f"[{state}] in {result.elapsed_s:.1f}s"
        )
    if out:
        body = report.to_dict()
        body["counters"] = _qa_counters(tracer)
        Path(out).write_text(
            json.dumps(body, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        _print(f"report written to {out}")
    if not report.ok:
        _print("calibration FAILED: empirical coverage left the "
               "binomial tolerance band", )
        return 1
    _print("calibration ok: all queries inside the tolerance band")
    return 0


def main_fuzz(args) -> int:
    """argparse adapter for ``python -m repro fuzz``."""
    qa = QaConfig.parse(args.qa) if args.qa else QaConfig()
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.queries is not None:
        overrides["queries"] = args.queries
    if args.rows is not None:
        overrides["rows"] = args.rows
    if args.serve:
        overrides["include_serve"] = True
    if getattr(args, "colstore", False):
        overrides["include_colstore"] = True
    if args.no_shrink:
        overrides["shrink"] = False
    if args.artifact_dir is not None:
        overrides["artifact_dir"] = args.artifact_dir
    if getattr(args, "grammar", None):
        overrides["grammar"] = args.grammar
    if overrides:
        import dataclasses

        qa = dataclasses.replace(qa, **overrides)
    try:
        return run_fuzz(qa, out=args.out, inject_bug=args.inject_bug,
                        replay=args.replay)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


def main_calibrate(args) -> int:
    """argparse adapter for ``python -m repro calibrate``."""
    qa = QaConfig.parse(args.qa) if args.qa else QaConfig()
    if args.seed is not None:
        import dataclasses

        qa = dataclasses.replace(qa, seed=args.seed)
    if args.alpha is not None:
        import dataclasses

        qa = dataclasses.replace(qa, calibration_alpha=args.alpha)
    queries = None
    if args.queries:
        queries = [q.strip() for q in args.queries.split(",") if q.strip()]
    try:
        return run_calibrate(
            qa, queries=queries, runs=args.runs, rows=args.rows,
            num_batches=args.batches, trials=args.trials, out=args.out,
        )
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
