"""repro.qa — differential query fuzzer and statistical calibration.

The correctness backbone of the reproduction: a standing adversarial
process instead of per-test assertions.

* :mod:`repro.qa.tables` — seeded random table specs (JSON-round-trip,
  shrinkable) materialized deterministically into engine tables.
* :mod:`repro.qa.generator` — seeded random-but-valid SQL over any
  catalog schema, biased toward nested-aggregate predicates.
* :mod:`repro.qa.compare` — float-tolerant structural table comparison
  with a self-test that catches comparator bugs.
* :mod:`repro.qa.runner` — the differential runner: exact batch vs CDM
  vs serial G-OLA vs worker-parallel G-OLA (vs the serve scheduler).
* :mod:`repro.qa.shrink` — failing-query minimization and one-file
  reproducer artifacts (``python -m repro fuzz --replay``).
* :mod:`repro.qa.calibrate` — empirical bootstrap-CI coverage versus an
  exact binomial acceptance band around nominal confidence.

CLI: ``python -m repro fuzz`` and ``python -m repro calibrate``.
"""

from .calibrate import (
    CalibrationConfig,
    CalibrationReport,
    CalibrationResult,
    binomial_band,
    calibrate,
    calibration_queries,
)
from .compare import ComparatorBroken, assert_self_test, compare_tables, \
    self_test
from .generator import AggItem, Predicate, QueryGenerator, QuerySpec, \
    WindowItem, shrink_candidates
from .runner import CaseReport, DifferentialRunner, FuzzCase, PathOutcome
from .shrink import (
    Shrinker,
    artifact_dict,
    load_artifact,
    replay_artifact,
    save_artifact,
)
from .tables import ColumnSpec, TableSpec, generate_table, \
    random_dim_spec, random_fact2_spec, random_fact_spec

__all__ = [
    "AggItem",
    "CalibrationConfig",
    "CalibrationReport",
    "CalibrationResult",
    "CaseReport",
    "ColumnSpec",
    "ComparatorBroken",
    "DifferentialRunner",
    "FuzzCase",
    "PathOutcome",
    "Predicate",
    "QueryGenerator",
    "QuerySpec",
    "Shrinker",
    "TableSpec",
    "WindowItem",
    "artifact_dict",
    "assert_self_test",
    "binomial_band",
    "calibrate",
    "calibration_queries",
    "compare_tables",
    "generate_table",
    "load_artifact",
    "random_dim_spec",
    "random_fact2_spec",
    "random_fact_spec",
    "replay_artifact",
    "save_artifact",
    "self_test",
    "shrink_candidates",
]
