"""Seeded random SQL generation from a catalog schema (``repro.qa``).

:class:`QueryGenerator` derives random-but-valid aggregate SQL from
table specs plus lightweight column statistics of the materialized
tables (quantiles, so filter thresholds land inside the data instead of
selecting everything or nothing).  Generated queries stay inside the
dialect the online engine supports — one streamed FROM relation,
equi-joins to dimension tables only, GROUP BY plain columns, ORDER BY
output names — and deliberately over-sample the constructs G-OLA exists
for: nested-aggregate predicates (uncorrelated scalar, equality-
correlated scalar, and IN-subquery membership), which drive the
uncertain-set machinery.

A query is represented as a structural :class:`QuerySpec` (lists of
predicate/aggregate/group-by parts, each rendered SQL plus a kind tag),
not as a string: the shrinker minimizes failures by dropping parts and
re-rendering, and failure artifacts serialize the spec as JSON.

The ``deep`` grammar profile adds weighted productions for the deep-OLA
query surface: window functions over the grouped output (cumulative and
``ROWS n PRECEDING`` frames), DISTINCT aggregates, quantile aggregates,
multi-fact subqueries against a second streamed fact table, and two
edge biases — NaN-heavy ``nullish`` measures and near-empty-group
filters at extreme data quantiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..storage.table import Table
from .tables import GROUPABLE_KINDS, NUMERIC_KINDS, TableSpec

AGG_FUNCS = ("SUM", "AVG", "MIN", "MAX", "COUNT")

#: Aggregate functions that accept DISTINCT in the supported dialect.
DISTINCT_FUNCS = ("COUNT", "SUM", "AVG")

#: Grammar profiles the generator understands.
GRAMMARS = ("default", "deep")

#: Quantiles used for filter thresholds (kept off the extremes so
#: predicates select a meaningful, non-degenerate fraction of rows).
_THRESHOLD_QS = (0.2, 0.35, 0.5, 0.65, 0.8)

#: Extreme quantiles for the empty-group edge bias: a ``> q0.98``
#: filter leaves most groups with a handful of rows and some with none.
_EXTREME_QS = (0.02, 0.98)

#: Reservoir capacity of QuantileState: quantile productions are only
#: offered when the fact fits the reservoir, so every execution path
#: sees the identical (complete) reservoir regardless of batching.
_QUANTILE_ROW_LIMIT = 4096


@dataclass(frozen=True)
class Predicate:
    """One WHERE conjunct: rendered SQL plus its structural kind."""

    sql: str
    kind: str  # compare | between | in_list | bool | scalar_sub |
    #            keyed_sub | in_sub

    def to_dict(self) -> dict:
        return {"sql": self.sql, "kind": self.kind}

    @classmethod
    def from_dict(cls, d: dict) -> "Predicate":
        return cls(sql=d["sql"], kind=d["kind"])


@dataclass(frozen=True)
class AggItem:
    """One aggregate select item (``func(expr) AS alias``).

    ``distinct`` renders ``func(DISTINCT expr)``; ``param`` is the
    fraction argument of QUANTILE (``QUANTILE(expr, param)``).
    """

    func: str
    expr: str  # "*" for COUNT(*)
    alias: str
    distinct: bool = False
    param: Optional[float] = None

    def render(self) -> str:
        inner = f"DISTINCT {self.expr}" if self.distinct else self.expr
        if self.param is not None:
            inner = f"{inner}, {self.param:g}"
        return f"{self.func}({inner}) AS {self.alias}"

    def to_dict(self) -> dict:
        out = {"func": self.func, "expr": self.expr, "alias": self.alias}
        if self.distinct:
            out["distinct"] = True
        if self.param is not None:
            out["param"] = self.param
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "AggItem":
        return cls(func=d["func"], expr=d["expr"], alias=d["alias"],
                   distinct=bool(d.get("distinct", False)),
                   param=d.get("param"))


@dataclass(frozen=True)
class WindowItem:
    """One window select item over the grouped output.

    Renders ``func(arg) OVER (ORDER BY order_col [ROWS n PRECEDING])``;
    ``arg`` names a sibling output column (an aggregate alias) and is
    None for the arg-less COUNT(*) frame-size window.  ``order_col``
    must be a projected group-by column — the binder enforces both.
    """

    func: str  # SUM | AVG | COUNT
    arg: Optional[str]
    order_col: str
    alias: str
    preceding: Optional[int] = None  # None = cumulative frame

    def render(self) -> str:
        inner = self.arg if self.arg is not None else "*"
        frame = (f" ROWS {self.preceding} PRECEDING"
                 if self.preceding is not None else "")
        return (f"{self.func}({inner}) OVER "
                f"(ORDER BY {self.order_col}{frame}) AS {self.alias}")

    def to_dict(self) -> dict:
        return {"func": self.func, "arg": self.arg,
                "order_col": self.order_col, "alias": self.alias,
                "preceding": self.preceding}

    @classmethod
    def from_dict(cls, d: dict) -> "WindowItem":
        return cls(func=d["func"], arg=d.get("arg"),
                   order_col=d["order_col"], alias=d["alias"],
                   preceding=d.get("preceding"))


@dataclass(frozen=True)
class QuerySpec:
    """A structurally-shrinkable aggregate query over one fact table."""

    table: str
    aggregates: Tuple[AggItem, ...]
    predicates: Tuple[Predicate, ...] = ()
    group_by: Tuple[str, ...] = ()
    join: Optional[Tuple[str, str, str, str]] = None  # (dim, left, right, how)
    having: Optional[str] = None
    order_by: Optional[str] = None  # output column name (aliases ok)
    order_desc: bool = False
    windows: Tuple[WindowItem, ...] = ()

    def render(self) -> str:
        """The SQL text for this spec."""
        select = list(self.group_by) + [a.render() for a in self.aggregates]
        select += [w.render() for w in self.windows]
        parts = [f"SELECT {', '.join(select)}", f"FROM {self.table}"]
        if self.join is not None:
            dim, left, right, how = self.join
            parts.append(f"{how} JOIN {dim} ON {left} = {right}")
        if self.predicates:
            parts.append(
                "WHERE " + " AND ".join(p.sql for p in self.predicates)
            )
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(self.group_by))
        if self.having is not None:
            parts.append(f"HAVING {self.having}")
        if self.order_by is not None:
            direction = " DESC" if self.order_desc else ""
            parts.append(f"ORDER BY {self.order_by}{direction}")
        return "\n".join(parts)

    @property
    def uses_subquery(self) -> bool:
        return self.having_uses_subquery or any(
            p.kind in ("scalar_sub", "keyed_sub", "in_sub")
            for p in self.predicates
        )

    @property
    def having_uses_subquery(self) -> bool:
        return self.having is not None and "SELECT" in self.having

    def to_dict(self) -> dict:
        return {
            "table": self.table,
            "aggregates": [a.to_dict() for a in self.aggregates],
            "predicates": [p.to_dict() for p in self.predicates],
            "group_by": list(self.group_by),
            "join": list(self.join) if self.join else None,
            "having": self.having,
            "order_by": self.order_by,
            "order_desc": self.order_desc,
            "windows": [w.to_dict() for w in self.windows],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "QuerySpec":
        return cls(
            table=d["table"],
            aggregates=tuple(AggItem.from_dict(a) for a in d["aggregates"]),
            predicates=tuple(
                Predicate.from_dict(p) for p in d.get("predicates", [])
            ),
            group_by=tuple(d.get("group_by", ())),
            join=tuple(d["join"]) if d.get("join") else None,
            having=d.get("having"),
            order_by=d.get("order_by"),
            order_desc=bool(d.get("order_desc", False)),
            windows=tuple(
                WindowItem.from_dict(w) for w in d.get("windows", [])
            ),
        )


@dataclass
class _ColumnStats:
    """Quantiles of one numeric column of a materialized table."""

    quantiles: Dict[float, float] = field(default_factory=dict)

    def threshold(self, rng: np.random.Generator) -> float:
        q = _THRESHOLD_QS[int(rng.integers(len(_THRESHOLD_QS)))]
        return self.quantiles[q]

    def extreme(self, rng: np.random.Generator) -> Tuple[str, float]:
        """An (op, value) pair selecting a tiny fraction of the rows."""
        if rng.random() < 0.5:
            return "<", self.quantiles[_EXTREME_QS[0]]
        return ">", self.quantiles[_EXTREME_QS[1]]


def _column_stats(table: Table) -> Dict[str, _ColumnStats]:
    stats: Dict[str, _ColumnStats] = {}
    all_qs = _THRESHOLD_QS + _EXTREME_QS
    for col in table.schema:
        if not col.ctype.is_numeric:
            continue
        values = np.asarray(table.column(col.name), dtype=np.float64)
        if not np.isfinite(values).any():
            continue
        # nanquantile: nullish columns get thresholds from their finite
        # mass (a NaN threshold would make every predicate empty).
        qs = np.nanquantile(values, all_qs)
        stats[col.name] = _ColumnStats(
            {q: float(v) for q, v in zip(all_qs, qs)}
        )
    return stats


def _fmt(value: float) -> str:
    """Render a threshold constant with limited, stable precision."""
    return f"{value:.6g}"


class QueryGenerator:
    """Derives seeded random aggregate SQL from table specs + data.

    Args:
        fact: Spec of the streamed fact table queries scan.
        fact_table: Its materialized data (for threshold statistics).
        dims: Dimension specs (streamed=False) available for joins,
            keyed by name, with their materialized tables.
        seed: Generator seed; the i-th query for a given (specs, seed)
            pair is deterministic.
        fact2: Optional second *streamed* fact (spec, table) sharing the
            primary fact's first key column; enables the multi-fact
            subquery productions of the deep grammar.
        grammar: "default" for the classic nested-aggregate grammar,
            "deep" to also produce windows, DISTINCT/quantile
            aggregates, multi-fact subqueries and edge biases.
    """

    def __init__(self, fact: TableSpec, fact_table: Table,
                 dims: Optional[Dict[str, Tuple[TableSpec, Table]]] = None,
                 seed: int = 0,
                 fact2: Optional[Tuple[TableSpec, Table]] = None,
                 grammar: str = "default"):
        if grammar not in GRAMMARS:
            raise ValueError(
                f"unknown grammar {grammar!r}; one of {GRAMMARS}"
            )
        self.fact = fact
        self.dims = dims or {}
        self.fact2 = fact2
        self.grammar = grammar
        self.rng = np.random.default_rng(seed)
        self.stats = _column_stats(fact_table)
        self._numeric = [c.name for c in fact.columns
                         if c.kind in NUMERIC_KINDS]
        self._groupable = [c.name for c in fact.columns
                           if c.kind in GROUPABLE_KINDS]
        self._keys = [c for c in fact.columns if c.kind == "key"]
        self._categories = {
            c.name: c.card for c in fact.columns if c.kind == "category"
        }
        self._bools = [c.name for c in fact.columns if c.kind == "bool"]
        self._distinctable = [c.name for c in fact.columns
                              if c.kind in ("key", "int")]
        self._fact2_numeric = (
            [c.name for c in fact2[0].columns if c.kind in NUMERIC_KINDS]
            if fact2 is not None else []
        )
        if not self._numeric:
            raise ValueError("fact table needs at least one numeric column")

    # -- pieces ----------------------------------------------------------

    def _choice(self, seq: Sequence):
        return seq[int(self.rng.integers(len(seq)))]

    def _measure_expr(self) -> str:
        """A numeric expression over fact measures."""
        rng = self.rng
        col = self._choice(self._numeric)
        roll = rng.random()
        if roll < 0.55 or len(self._numeric) < 2:
            return col
        if roll < 0.75:
            other = self._choice(self._numeric)
            op = self._choice(["+", "*"])
            return f"{col} {op} {other}"
        return f"{col} * {_fmt(float(rng.uniform(0.25, 4.0)))}"

    def _aggregate(self, index: int) -> AggItem:
        if self.grammar == "deep":
            roll = self.rng.random()
            if roll < 0.20 and self._distinctable:
                func = self._choice(DISTINCT_FUNCS)
                col = self._choice(self._distinctable)
                return AggItem(func, col, f"agg_{index}", distinct=True)
            if (roll < 0.35
                    and self.fact.rows <= _QUANTILE_ROW_LIMIT):
                q = float(self._choice([0.25, 0.5, 0.75, 0.9, 0.95]))
                col = self._choice(self._numeric)
                return AggItem("QUANTILE", col, f"agg_{index}", param=q)
        func = self._choice(AGG_FUNCS)
        if func == "COUNT":
            return AggItem("COUNT", "*", f"agg_{index}")
        return AggItem(func, self._measure_expr(), f"agg_{index}")

    def _compare_predicate(self) -> Predicate:
        col = self._choice(list(self.stats))
        op = self._choice(["<", "<=", ">", ">="])
        value = self.stats[col].threshold(self.rng)
        return Predicate(f"{col} {op} {_fmt(value)}", "compare")

    def _between_predicate(self) -> Predicate:
        col = self._choice(list(self.stats))
        lo = self.stats[col].quantiles[0.2]
        hi = self.stats[col].quantiles[
            self._choice([0.5, 0.65, 0.8])
        ]
        return Predicate(
            f"{col} BETWEEN {_fmt(lo)} AND {_fmt(hi)}", "between"
        )

    def _in_list_predicate(self) -> Predicate:
        name = self._choice(list(self._categories))
        card = self._categories[name]
        count = int(self.rng.integers(1, max(2, card - 1)))
        chosen = self.rng.choice(card, size=count, replace=False)
        values = ", ".join(f"'{name}_{i}'" for i in sorted(chosen))
        return Predicate(f"{name} IN ({values})", "in_list")

    def _bool_predicate(self) -> Predicate:
        col = self._choice(self._bools)
        value = "TRUE" if self.rng.random() < 0.5 else "FALSE"
        return Predicate(f"{col} = {value}", "bool")

    def _scalar_sub_predicate(self) -> Predicate:
        """``col op (SELECT f * AGG(col2) FROM fact)`` — uncorrelated."""
        col = self._choice(list(self.stats))
        inner = self._choice(self._numeric)
        func = self._choice(["AVG", "AVG", "AVG", "MIN", "MAX"])
        f = float(self.rng.uniform(0.6, 1.4))
        op = self._choice(["<", ">"])
        return Predicate(
            f"{col} {op} (SELECT {_fmt(f)} * {func}({inner}) "
            f"FROM {self.fact.name})",
            "scalar_sub",
        )

    def _keyed_sub_predicate(self) -> Predicate:
        """Equality-correlated scalar subquery (per-key inner aggregate)."""
        key = self._choice(self._keys).name
        col = self._choice(list(self.stats))
        inner = self._choice(self._numeric)
        f = float(self.rng.uniform(0.6, 1.4))
        op = self._choice(["<", ">"])
        fact = self.fact.name
        return Predicate(
            f"{col} {op} (SELECT {_fmt(f)} * AVG({inner}) FROM {fact} t "
            f"WHERE t.{key} = {fact}.{key})",
            "keyed_sub",
        )

    def _in_sub_predicate(self) -> Predicate:
        """``key IN (SELECT key FROM fact GROUP BY key HAVING ...)``."""
        key = self._choice(self._keys).name
        inner = self._choice(list(self.stats))
        func = self._choice(["AVG", "SUM"])
        value = self.stats[inner].threshold(self.rng)
        if func == "SUM":
            # Per-group sums exceed global row quantiles; scale up by the
            # expected group size so the membership set stays non-trivial.
            key_card = next(c.card for c in self.fact.columns
                            if c.name == key)
            value *= max(1.0, self.fact.rows / max(1, key_card))
        op = self._choice(["<", ">"])
        fact = self.fact.name
        return Predicate(
            f"{key} IN (SELECT {key} FROM {fact} GROUP BY {key} "
            f"HAVING {func}({inner}) {op} {_fmt(value)})",
            "in_sub",
        )

    def _fact2_scalar_sub_predicate(self) -> Predicate:
        """Uncorrelated scalar aggregate over the *second* streamed fact."""
        col = self._choice(list(self.stats))
        inner = self._choice(self._fact2_numeric)
        f = float(self.rng.uniform(0.6, 1.4))
        op = self._choice(["<", ">"])
        return Predicate(
            f"{col} {op} (SELECT {_fmt(f)} * AVG({inner}) "
            f"FROM {self.fact2[0].name})",
            "fact2_scalar_sub",
        )

    def _fact2_keyed_sub_predicate(self) -> Predicate:
        """Per-key aggregate over the second fact, correlated through
        the shared key column (correlated resampling across tables)."""
        key = self._keys[0].name
        col = self._choice(list(self.stats))
        inner = self._choice(self._fact2_numeric)
        f = float(self.rng.uniform(0.6, 1.4))
        op = self._choice(["<", ">"])
        fact2 = self.fact2[0].name
        return Predicate(
            f"{col} {op} (SELECT {_fmt(f)} * AVG({inner}) FROM {fact2} s "
            f"WHERE s.{key} = {self.fact.name}.{key})",
            "fact2_keyed_sub",
        )

    def _empty_group_predicate(self) -> Predicate:
        """Extreme-quantile filter: most groups shrink to a few rows,
        some to zero — the empty-group edge bias."""
        col = self._choice(list(self.stats))
        op, value = self.stats[col].extreme(self.rng)
        return Predicate(f"{col} {op} {_fmt(value)}", "empty_group")

    def _predicate(self, allow_subqueries: bool = True) -> Predicate:
        menu = [self._compare_predicate, self._between_predicate]
        if self._categories:
            menu.append(self._in_list_predicate)
        if self._bools:
            menu.append(self._bool_predicate)
        if allow_subqueries:
            # Over-sample the nested-aggregate shapes; they are the
            # uncertain-set machinery this harness exists to hunt in.
            menu += [self._scalar_sub_predicate] * 3
            if self._keys:
                menu += [self._keyed_sub_predicate] * 2
                menu += [self._in_sub_predicate] * 2
            if self.grammar == "deep" and self._fact2_numeric:
                menu += [self._fact2_scalar_sub_predicate] * 2
                if self._keys:
                    menu += [self._fact2_keyed_sub_predicate] * 2
        return self._choice(menu)()

    def _having(self, aggregates: Tuple[AggItem, ...]) -> Optional[str]:
        candidates = [a for a in aggregates if a.func in ("SUM", "AVG")]
        if not candidates:
            return None
        agg = self._choice(candidates)
        base = agg.expr.split(" ")[0]
        stats = self.stats.get(base)
        if stats is None:
            return None
        op = self._choice(["<", ">"])
        if self.rng.random() < 0.5:
            # Nested-aggregate HAVING (the Q11 shape): compare the group
            # aggregate against a fraction of the global aggregate.
            f = (float(self.rng.uniform(0.005, 0.1)) if agg.func == "SUM"
                 else float(self.rng.uniform(0.6, 1.4)))
            return (
                f"{agg.func}({agg.expr}) {op} "
                f"(SELECT {_fmt(f)} * {agg.func}({agg.expr}) "
                f"FROM {self.fact.name})"
            )
        value = stats.threshold(self.rng)
        if agg.func == "SUM":
            groups = max(1, len(self._group_cards()))
            value *= max(1.0, self.fact.rows / max(1, groups))
        return f"{agg.func}({agg.expr}) {op} {_fmt(value)}"

    def _group_cards(self) -> List[int]:
        return [c.card for c in self.fact.columns
                if c.kind in ("key", "category")]

    # -- whole queries ---------------------------------------------------

    def generate(self) -> QuerySpec:
        """One random valid aggregate query spec."""
        rng = self.rng

        n_aggs = int(rng.integers(1, 4))
        aggregates = tuple(self._aggregate(i) for i in range(n_aggs))

        join = None
        join_group: List[str] = []
        if self.dims and rng.random() < 0.35:
            dim_name = self._choice(sorted(self.dims))
            dim_spec, _ = self.dims[dim_name]
            key = self._keys[0].name if self._keys else None
            dim_id = next(c.name for c in dim_spec.columns
                          if c.kind == "id")
            if key is not None:
                how = "INNER" if rng.random() < 0.7 else "LEFT"
                join = (dim_name, f"{self.fact.name}.{key}",
                        f"{dim_name}.{dim_id}", how)
                dim_cat = next((c.name for c in dim_spec.columns
                                if c.kind == "category"), None)
                if dim_cat is not None and rng.random() < 0.5:
                    join_group.append(dim_cat)

        group_by: Tuple[str, ...] = ()
        if rng.random() < 0.45 and (self._groupable or join_group):
            n_keys = int(rng.integers(1, 3))
            pool = list(dict.fromkeys(self._groupable + join_group))
            rng.shuffle(pool)
            group_by = tuple(pool[:n_keys])
        elif join_group and rng.random() < 0.5:
            group_by = tuple(join_group)

        n_preds = int(rng.integers(0, 4))
        predicates = tuple(self._predicate() for _ in range(n_preds))
        if not any(p.kind.endswith("_sub") or p.kind == "in_sub"
                   for p in predicates) and rng.random() < 0.8:
            # Bias: most fuzz queries must exercise nested aggregates.
            predicates = predicates + (self._predicate_subquery_only(),)
        if (self.grammar == "deep" and group_by
                and rng.random() < 0.25):
            predicates = predicates + (self._empty_group_predicate(),)

        having = None
        if group_by and rng.random() < 0.4:
            having = self._having(aggregates)

        windows: Tuple[WindowItem, ...] = ()
        if self.grammar == "deep":
            windows = self._windows(group_by, aggregates)

        order_by = None
        order_desc = False
        if group_by and rng.random() < 0.4:
            order_by = self._choice(
                list(group_by) + [a.alias for a in aggregates]
            )
            order_desc = bool(rng.random() < 0.5)

        return QuerySpec(
            table=self.fact.name, aggregates=aggregates,
            predicates=predicates, group_by=group_by, join=join,
            having=having, order_by=order_by, order_desc=order_desc,
            windows=windows,
        )

    def _windows(self, group_by: Tuple[str, ...],
                 aggregates: Tuple[AggItem, ...]
                 ) -> Tuple[WindowItem, ...]:
        """0-2 window items when the grouped output supports them.

        Windows need a GROUP BY and order deterministically over an
        int64 key column (the binder accepts any projected group key;
        int keys keep the generated total order meaningful).
        """
        key_cols = [c.name for c in self._keys if c.name in group_by]
        if not key_cols or self.rng.random() >= 0.5:
            return ()
        order_col = self._choice(key_cols)
        items = []
        for i in range(int(self.rng.integers(1, 3))):
            preceding = (int(self.rng.integers(1, 6))
                         if self.rng.random() < 0.5 else None)
            if self.rng.random() < 0.25:
                items.append(WindowItem("COUNT", None, order_col,
                                        f"win_{i}", preceding))
                continue
            func = self._choice(["SUM", "AVG"])
            arg = self._choice([a.alias for a in aggregates])
            items.append(WindowItem(func, arg, order_col,
                                    f"win_{i}", preceding))
        return tuple(items)

    def _predicate_subquery_only(self) -> Predicate:
        makers = [self._scalar_sub_predicate]
        if self._keys:
            makers += [self._keyed_sub_predicate, self._in_sub_predicate]
        return self._choice(makers)()


def shrink_candidates(spec: QuerySpec):
    """Yield structurally smaller variants of ``spec``, simplest first.

    Used by the shrinker: each candidate removes exactly one part
    (window, predicate, HAVING, ORDER BY, join, group-by column,
    aggregate) so a failing query minimizes to the smallest spec that
    still diverges.  Removing a part that other parts depend on (an
    aggregate a window reads, a group column a window orders by) also
    removes the dependents, so every candidate renders valid SQL.
    """
    for i in range(len(spec.windows)):
        yield replace(
            spec, windows=spec.windows[:i] + spec.windows[i + 1:]
        )
    for i, agg in enumerate(spec.aggregates):
        # Simplify DISTINCT/QUANTILE aggregates in place before trying
        # to remove whole select items.
        if agg.distinct:
            plain = (AggItem("COUNT", "*", agg.alias)
                     if agg.func == "COUNT"
                     else replace(agg, distinct=False))
            yield replace(
                spec,
                aggregates=(spec.aggregates[:i] + (plain,)
                            + spec.aggregates[i + 1:]),
            )
        elif agg.param is not None:
            yield replace(
                spec,
                aggregates=(spec.aggregates[:i]
                            + (AggItem("AVG", agg.expr, agg.alias),)
                            + spec.aggregates[i + 1:]),
            )
    for i in range(len(spec.predicates)):
        yield replace(
            spec,
            predicates=spec.predicates[:i] + spec.predicates[i + 1:],
        )
    if spec.having is not None:
        yield replace(spec, having=None)
    if spec.order_by is not None:
        yield replace(spec, order_by=None, order_desc=False)
    if spec.join is not None and not _references_join(spec):
        yield replace(spec, join=None)
    for i in range(len(spec.group_by)):
        dropped = spec.group_by[i]
        smaller = replace(
            spec, group_by=spec.group_by[:i] + spec.group_by[i + 1:]
        )
        if spec.order_by == dropped:
            smaller = replace(smaller, order_by=None, order_desc=False)
        if not smaller.group_by and smaller.having is not None:
            smaller = replace(smaller, having=None)
        kept_windows = tuple(
            w for w in smaller.windows
            if w.order_col != dropped and smaller.group_by
        )
        if kept_windows != smaller.windows:
            smaller = replace(smaller, windows=kept_windows)
        yield smaller
    if len(spec.aggregates) > 1:
        for i in range(len(spec.aggregates)):
            dropped = spec.aggregates[i]
            smaller = replace(
                spec,
                aggregates=spec.aggregates[:i] + spec.aggregates[i + 1:],
            )
            if spec.order_by == dropped.alias:
                smaller = replace(smaller, order_by=None, order_desc=False)
            kept_windows = tuple(
                w for w in smaller.windows if w.arg != dropped.alias
            )
            if kept_windows != smaller.windows:
                smaller = replace(smaller, windows=kept_windows)
            yield smaller


def _references_join(spec: QuerySpec) -> bool:
    """Whether dropping the join would orphan a dim-column reference."""
    if spec.join is None:
        return False
    dim = spec.join[0]
    mentions = list(spec.group_by)
    mentions += [p.sql for p in spec.predicates]
    mentions += [a.expr for a in spec.aggregates]
    return any(f"{dim}_" in m for m in mentions)
