"""Differential execution of one query across every engine path.

:class:`DifferentialRunner` executes a query through the four (optionally
five) execution paths that must agree —

* ``batch`` — the exact batch engine (ground truth),
* ``cdm`` — classical delta maintenance's final prefix answer,
* ``serial`` — G-OLA online, final-batch snapshot, serial execution,
* ``parallel`` — G-OLA online under a worker pool (thread backend),
* ``serve`` — the concurrent scheduler's finished-run snapshot
  (optional; one shared scheduler is reused across queries),

* ``colstore`` — G-OLA online streaming a converted on-disk colstore
  dataset, zone-map pruning on (optional); beyond the final-table
  compare, its whole snapshot stream must be *bit-identical* to the
  in-memory serial stream,

compares every path's final table against ``batch`` with the
float-tolerant structural comparator, and produces one JSON-ready report
per query.  A query that every path *rejects with the same error class*
(the generator walks right up to the dialect boundary on purpose) counts
as an agreed rejection, not a divergence; a query that one path rejects
and another answers is a divergence.

``inject_bug`` deliberately corrupts one named path's result before
comparison.  It exists so the harness can test *itself*: CI runs a short
sweep with an injected bug and fails if the harness reports nothing, and
the shrinker's tests use it as a deterministic divergence source.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..baselines.cdm import ClassicalDeltaMaintenance
from ..config import GolaConfig, ParallelConfig
from ..core.session import GolaSession
from ..obs import Tracer
from ..storage.table import Table
from .compare import compare_tables
from .generator import QuerySpec
from .tables import TableSpec, generate_table

PATHS = ("batch", "cdm", "serial", "parallel", "serve", "colstore")


@dataclass
class FuzzCase:
    """Everything needed to reproduce one differential run."""

    tables: Tuple[TableSpec, ...]
    query: QuerySpec
    num_batches: int = 4
    bootstrap_trials: int = 16
    seed: int = 0
    inject_bug: Optional[str] = None

    @property
    def sql(self) -> str:
        return self.query.render()

    def to_dict(self) -> dict:
        return {
            "tables": [t.to_dict() for t in self.tables],
            "query": self.query.to_dict(),
            "num_batches": self.num_batches,
            "bootstrap_trials": self.bootstrap_trials,
            "seed": self.seed,
            "inject_bug": self.inject_bug,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FuzzCase":
        return cls(
            tables=tuple(TableSpec.from_dict(t) for t in d["tables"]),
            query=QuerySpec.from_dict(d["query"]),
            num_batches=int(d.get("num_batches", 4)),
            bootstrap_trials=int(d.get("bootstrap_trials", 16)),
            seed=int(d.get("seed", 0)),
            inject_bug=d.get("inject_bug"),
        )


@dataclass
class PathOutcome:
    """One path's result: a table, or the error that rejected the query."""

    path: str
    status: str  # "ok" | "error"
    table: Optional[Table] = None
    error: Optional[str] = None
    error_class: Optional[str] = None
    elapsed_s: float = 0.0

    def to_dict(self) -> dict:
        out = {"path": self.path, "status": self.status,
               "elapsed_s": round(self.elapsed_s, 6)}
        if self.status == "ok" and self.table is not None:
            out["rows"] = self.table.num_rows
            out["columns"] = self.table.schema.names
        else:
            out["error"] = self.error
            out["error_class"] = self.error_class
        return out


@dataclass
class CaseReport:
    """The differential verdict for one query."""

    case: FuzzCase
    outcomes: Dict[str, PathOutcome] = field(default_factory=dict)
    divergences: List[str] = field(default_factory=list)
    agreed_rejection: Optional[str] = None

    @property
    def diverged(self) -> bool:
        return bool(self.divergences)

    def to_dict(self, include_case: bool = True) -> dict:
        out = {
            "sql": self.case.sql,
            "diverged": self.diverged,
            "divergences": list(self.divergences),
            "agreed_rejection": self.agreed_rejection,
            "outcomes": {
                name: o.to_dict() for name, o in self.outcomes.items()
            },
        }
        if include_case:
            out["case"] = self.case.to_dict()
        return out


def _corrupt(table: Table) -> Table:
    """Deliberately perturb a result (the harness's own fault injection).

    Scales the first float column by 0.1%, far outside comparator
    tolerance; falls back to doubling an int column or dropping a row so
    *every* result shape can be corrupted detectably.
    """
    columns = {n: table.column(n) for n in table.schema.names}
    for name, values in columns.items():
        if np.issubdtype(values.dtype, np.floating):
            scaled = values.copy()
            finite = np.isfinite(scaled)
            if finite.any():
                scaled[finite] = scaled[finite] * 1.001 + 1e-6
                columns[name] = scaled
                return Table.from_columns(columns)
    for name, values in columns.items():
        if np.issubdtype(values.dtype, np.integer):
            columns[name] = values * 2 + 1
            return Table.from_columns(columns)
    if table.num_rows > 0:
        return Table.from_columns(
            {n: v[:-1] for n, v in columns.items()}
        )
    return Table.from_columns(
        {n: np.concatenate([v, v[:1]]) if len(v) else v
         for n, v in columns.items()}
    )


class DifferentialRunner:
    """Runs queries through every execution path and compares results."""

    def __init__(self, rtol: float = 1e-6, atol: float = 1e-9,
                 workers: int = 2, include_serve: bool = False,
                 include_colstore: bool = False,
                 tracer: Optional[Tracer] = None):
        self.rtol = rtol
        self.atol = atol
        self.workers = workers
        self.include_serve = include_serve
        self.include_colstore = include_colstore
        self.tracer = tracer if tracer is not None else Tracer()
        self._table_cache: Dict[TableSpec, Table] = {}
        # Converted-dataset cache for the colstore path: one temp dir
        # per (table, partitioning) combination, kept for the runner's
        # lifetime so repeated cases don't re-encode.
        self._dataset_cache: Dict[tuple, "Path"] = {}
        self._dataset_tmp = None

    # -- materialization -------------------------------------------------

    def _tables_for(self, case: FuzzCase) -> Dict[str, Table]:
        out = {}
        for spec in case.tables:
            table = self._table_cache.get(spec)
            if table is None:
                table = generate_table(spec)
                self._table_cache[spec] = table
            out[spec.name] = table
        return out

    def _session_for(self, case: FuzzCase) -> GolaSession:
        config = GolaConfig(
            num_batches=case.num_batches,
            bootstrap_trials=case.bootstrap_trials,
            seed=case.seed,
        )
        session = GolaSession(config)
        tables = self._tables_for(case)
        for spec in case.tables:
            session.register_table(spec.name, tables[spec.name],
                                   streamed=spec.streamed)
        return session

    # -- paths -----------------------------------------------------------

    def _run_path(self, name: str, fn) -> PathOutcome:
        started = time.perf_counter()
        try:
            table = fn()
        except Exception as exc:  # any rejection/crash is data here
            return PathOutcome(
                path=name, status="error", error=str(exc)[:500],
                error_class=type(exc).__name__,
                elapsed_s=time.perf_counter() - started,
            )
        return PathOutcome(
            path=name, status="ok", table=table,
            elapsed_s=time.perf_counter() - started,
        )

    def _batch(self, session: GolaSession, sql: str) -> Table:
        return session.execute_batch(sql)

    def _cdm(self, session: GolaSession, sql: str) -> Table:
        query = session.sql(sql)
        cdm = ClassicalDeltaMaintenance(
            query.query, session._tables(), session.config,
            udafs=session.udafs,
        )
        last = None
        for snap in cdm.run():
            last = snap
        if last is None:
            raise RuntimeError("CDM produced no snapshots")
        return last.table

    def _serial(self, session: GolaSession, sql: str) -> Table:
        return session.sql(sql).run_to_completion().table

    def _parallel(self, session: GolaSession, sql: str) -> Table:
        config = session.config.with_options(
            parallel=ParallelConfig(workers=self.workers,
                                    backend="thread")
        )
        return session.sql(sql).run_to_completion(config).table

    def _colstore(self, session: GolaSession, sql: str) -> Table:
        """Serial stream over converted on-disk colstore datasets.

        Runs the query twice in the given session — once over the
        in-memory tables, once with every streamed table replaced by
        its converted dataset (mmap decode, zone-map pruning on) — and
        requires the two snapshot *streams* to be bit-identical, not
        merely tolerance-close: conversion, memory-mapped decoding and
        chunk pruning are storage concerns that must not perturb a
        single user-visible byte.  The final table then also enters
        the ordinary cross-path comparison.
        """
        import tempfile

        from ..faults.chaos import snapshot_fingerprint
        from ..storage.colstore import convert_table

        config = session.config
        mem_fp = snapshot_fingerprint(session.sql(sql).run_online())

        if self._dataset_tmp is None:
            self._dataset_tmp = tempfile.TemporaryDirectory(
                prefix="repro-qa-colstore-"
            )
        for name in list(session.catalog):
            if not session.catalog.is_streamed(name):
                continue
            table = session.catalog.get(name)
            key = (id(table), config.num_batches, config.seed,
                   config.shuffle)
            ds_path = self._dataset_cache.get(key)
            if ds_path is None:
                ds_path = (Path(self._dataset_tmp.name)
                           / f"ds-{len(self._dataset_cache):04d}")
                convert_table(
                    table, ds_path, num_batches=config.num_batches,
                    seed=config.seed, shuffle=config.shuffle,
                )
                self._dataset_cache[key] = ds_path
            session.register_colstore(name, ds_path, streamed=True,
                                      replace=True)

        snaps = []
        for snap in session.sql(sql).run_online():
            snaps.append(snap)
        col_fp = snapshot_fingerprint(snaps)
        if col_fp != mem_fp:
            raise RuntimeError(
                "colstore snapshot stream diverged from the in-memory "
                f"stream: {col_fp} != {mem_fp}"
            )
        if not snaps:
            raise RuntimeError("colstore run produced no snapshots")
        return snaps[-1].table

    def _serve(self, session: GolaSession, sql: str) -> Table:
        from ..serve import QueryScheduler

        scheduler = QueryScheduler(session)
        try:
            run = scheduler.submit(sql, config=session.config)
            scheduler.wait(run.id, timeout=120.0)
            if run.state != "done" or run.last_snapshot is None:
                raise RuntimeError(
                    f"serve run ended {run.state!r}: {run.error}"
                )
            return run.last_snapshot.table
        finally:
            scheduler.close()

    # -- the differential ------------------------------------------------

    def run_case(self, case: FuzzCase) -> CaseReport:
        """Execute one case through every path and compare."""
        sql = case.sql
        metrics = self.tracer.metrics
        report = CaseReport(case=case)
        paths = [
            ("batch", self._batch),
            ("cdm", self._cdm),
            ("serial", self._serial),
            ("parallel", self._parallel),
        ]
        if self.include_serve:
            paths.append(("serve", self._serve))
        if self.include_colstore:
            paths.append(("colstore", self._colstore))

        with self.tracer.span("qa.query", sql=sql.replace("\n", " ")):
            for name, fn in paths:
                # A fresh session per path: no shared state (retained
                # batches, block caches) can mask a path's own bug.
                session = self._session_for(case)
                outcome = self._run_path(
                    name, lambda fn=fn, s=session: fn(s, sql)
                )
                if (outcome.status == "ok" and case.inject_bug == name
                        and outcome.table is not None):
                    outcome.table = _corrupt(outcome.table)
                report.outcomes[name] = outcome

        self._judge(report)
        if metrics.enabled:
            metrics.counter("qa.queries").inc()
            if report.diverged:
                metrics.counter("qa.divergences").inc()
            if report.agreed_rejection:
                metrics.counter("qa.agreed_rejections").inc()
        if self.tracer.enabled and report.diverged:
            self.tracer.event("qa.divergence", sql=sql.replace("\n", " "),
                              problems=len(report.divergences))
        return report

    def _judge(self, report: CaseReport) -> None:
        """Fill ``divergences``/``agreed_rejection`` from the outcomes."""
        outcomes = report.outcomes
        baseline = outcomes["batch"]
        if baseline.status == "error":
            classes = {o.error_class for o in outcomes.values()}
            if classes == {baseline.error_class}:
                report.agreed_rejection = baseline.error_class
                return
            for name, o in outcomes.items():
                if name == "batch":
                    continue
                if o.status == "ok":
                    report.divergences.append(
                        f"{name}: produced a result but batch rejected "
                        f"with {baseline.error_class}"
                    )
                elif o.error_class != baseline.error_class:
                    report.divergences.append(
                        f"{name}: rejected with {o.error_class} but "
                        f"batch rejected with {baseline.error_class}"
                    )
            return
        for name, o in outcomes.items():
            if name == "batch":
                continue
            if o.status == "error":
                report.divergences.append(
                    f"{name}: raised {o.error_class} ({o.error}) but "
                    "batch produced a result"
                )
                continue
            problems = compare_tables(
                baseline.table, o.table, rtol=self.rtol, atol=self.atol
            )
            report.divergences.extend(
                f"{name} vs batch: {p}" for p in problems
            )
