"""Logical plans, binding and lineage-block analysis."""

from .binder import Binder, bind_statement
from .lineage_blocks import LineageBlock, broadcast_edges, lineage_blocks
from .rewrite import fold_constants, normalize_predicate, rewrite_query
from .logical import (
    Aggregate,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Query,
    Scan,
    Sort,
    SubquerySpec,
)

__all__ = [
    "Aggregate",
    "Binder",
    "Filter",
    "Join",
    "Limit",
    "LineageBlock",
    "LogicalPlan",
    "Project",
    "Query",
    "Scan",
    "Sort",
    "SubquerySpec",
    "bind_statement",
    "broadcast_edges",
    "fold_constants",
    "lineage_blocks",
    "normalize_predicate",
    "rewrite_query",
]
