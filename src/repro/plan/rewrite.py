"""Logical plan rewrites (a small optimizer pass).

Run after binding, before execution (both batch and online paths):

* **constant folding** — pure-literal subtrees collapse to literals, so
  e.g. ``0.2 * 5`` in a threshold costs nothing per batch;
* **predicate normalization** — `NOT` is pushed through comparisons and
  De-Morganed through AND/OR, double negations cancel; this maximizes
  the conjuncts the online engine can classify independently;
* **filter pushdown below joins** — WHERE conjuncts that reference only
  the streamed (left/probe) side move below the dimension join, so the
  online pipeline filters before the join gather.

All rewrites are semantics-preserving; tests check rewritten plans
against the originals on random data.
"""

from __future__ import annotations

from typing import List

from ..expr.expressions import (
    Between,
    BinaryOp,
    BooleanOp,
    CaseWhen,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    Literal,
    Negate,
    SubqueryRef,
    conjoin,
    conjuncts,
)
from ..plan.logical import (
    Aggregate,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Query,
    Scan,
    Sort,
    SubquerySpec,
    Window,
)

_NEGATED_COMPARISON = {
    "=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<",
}

_FOLDABLE_ARITH = {"+", "-", "*", "/", "%"}


def rewrite_query(query: Query) -> Query:
    """Apply every rewrite to the main plan and all subquery plans."""
    return Query(
        plan=_rewrite_plan(query.plan),
        subqueries={
            slot: SubquerySpec(
                slot=spec.slot,
                plan=_rewrite_plan(spec.plan),
                kind=spec.kind,
                value_column=spec.value_column,
                key_column=spec.key_column,
            )
            for slot, spec in query.subqueries.items()
        },
        streamed_table=query.streamed_table,
    )


# ----------------------------------------------------------------------
# Expression rewrites
# ----------------------------------------------------------------------

def fold_constants(expr: Expression) -> Expression:
    """Collapse literal-only subtrees into single literals."""
    if isinstance(expr, Literal) or isinstance(expr, ColumnRef) \
            or isinstance(expr, SubqueryRef):
        return expr
    if isinstance(expr, Negate):
        operand = fold_constants(expr.operand)
        if isinstance(operand, Literal) and isinstance(
            operand.value, (int, float)
        ) and not isinstance(operand.value, bool):
            return Literal(-operand.value)
        return Negate(operand)
    if isinstance(expr, BinaryOp):
        left = fold_constants(expr.left)
        right = fold_constants(expr.right)
        if (
            isinstance(left, Literal) and isinstance(right, Literal)
            and isinstance(left.value, (int, float))
            and isinstance(right.value, (int, float))
            and not isinstance(left.value, bool)
            and not isinstance(right.value, bool)
            and expr.op in _FOLDABLE_ARITH
        ):
            a, b = left.value, right.value
            if expr.op == "+":
                return Literal(a + b)
            if expr.op == "-":
                return Literal(a - b)
            if expr.op == "*":
                return Literal(a * b)
            if expr.op == "/":
                return Literal(a / b if b != 0 else 0.0)
            return Literal(a % b) if b != 0 else Literal(0.0)
        return BinaryOp(expr.op, left, right)
    if isinstance(expr, Comparison):
        return Comparison(expr.op, fold_constants(expr.left),
                          fold_constants(expr.right))
    if isinstance(expr, BooleanOp):
        return BooleanOp(expr.op,
                         [fold_constants(o) for o in expr.operands])
    if isinstance(expr, FunctionCall):
        return FunctionCall(expr.name,
                            [fold_constants(a) for a in expr.args])
    if isinstance(expr, Between):
        return Between(fold_constants(expr.value),
                       fold_constants(expr.low),
                       fold_constants(expr.high))
    if isinstance(expr, InList):
        return InList(fold_constants(expr.value), expr.options)
    if isinstance(expr, InSubquery):
        return InSubquery(fold_constants(expr.value), expr.slot,
                          expr.negated)
    if isinstance(expr, CaseWhen):
        whens = [(fold_constants(c), fold_constants(v))
                 for c, v in expr.whens]
        otherwise = fold_constants(expr.otherwise) \
            if expr.otherwise is not None else None
        return CaseWhen(whens, otherwise)
    return expr


def normalize_predicate(expr: Expression) -> Expression:
    """Push NOT inward (De Morgan + comparison negation); cancel pairs.

    Maximizes top-level AND conjuncts, which is what the online engine
    classifies independently.
    """
    if isinstance(expr, BooleanOp):
        if expr.op == "NOT":
            return _negate(normalize_predicate(expr.operands[0]))
        return BooleanOp(
            expr.op, [normalize_predicate(o) for o in expr.operands]
        )
    return expr


def _negate(expr: Expression) -> Expression:
    if isinstance(expr, BooleanOp):
        if expr.op == "NOT":
            return expr.operands[0]
        flipped = "OR" if expr.op == "AND" else "AND"
        return BooleanOp(flipped, [_negate(o) for o in expr.operands])
    if isinstance(expr, Comparison):
        return Comparison(_NEGATED_COMPARISON[expr.op], expr.left,
                          expr.right)
    if isinstance(expr, InSubquery):
        return InSubquery(expr.value, expr.slot, negated=not expr.negated)
    if isinstance(expr, Literal) and isinstance(expr.value, bool):
        return Literal(not expr.value)
    return BooleanOp("NOT", [expr])


def _rewrite_expr(expr: Expression) -> Expression:
    return normalize_predicate(fold_constants(expr))


# ----------------------------------------------------------------------
# Plan rewrites
# ----------------------------------------------------------------------

def _rewrite_plan(plan: LogicalPlan) -> LogicalPlan:
    if isinstance(plan, Scan):
        return plan
    if isinstance(plan, Filter):
        child = _rewrite_plan(plan.input)
        predicate = _rewrite_expr(plan.predicate)
        return _push_filter(child, conjuncts(predicate))
    if isinstance(plan, Project):
        return Project(
            _rewrite_plan(plan.input),
            [(_rewrite_expr(e), name) for e, name in plan.exprs],
        )
    if isinstance(plan, Join):
        return Join(_rewrite_plan(plan.left), _rewrite_plan(plan.right),
                    plan.keys, plan.how)
    if isinstance(plan, Aggregate):
        return Aggregate(
            _rewrite_plan(plan.input),
            [(_rewrite_expr(e), name) for e, name in plan.group_by],
            plan.aggregates,
            _rewrite_expr(plan.having) if plan.having is not None else None,
        )
    if isinstance(plan, Window):
        return Window(_rewrite_plan(plan.input), plan.calls,
                      plan.tiebreak, plan.output_order)
    if isinstance(plan, Sort):
        return Sort(_rewrite_plan(plan.input), plan.keys)
    if isinstance(plan, Limit):
        return Limit(_rewrite_plan(plan.input), plan.n)
    return plan


def _push_filter(child: LogicalPlan,
                 predicates: List[Expression]) -> LogicalPlan:
    """Place each conjunct as low in the tree as its columns allow.

    Only inner joins admit left-side pushdown (a left join's unmatched
    rows must be produced before filtering right-side columns, and
    pushing a left-side filter below would be fine — but keeping the
    rule minimal and obviously sound, we push below inner joins only).
    """
    if not predicates:
        return child
    if isinstance(child, Join) and child.how == "inner":
        left_columns = set(child.left.schema.names)
        pushable = [
            p for p in predicates if p.references() <= left_columns
        ]
        rest = [
            p for p in predicates if not p.references() <= left_columns
        ]
        if pushable:
            new_left = _push_filter(child.left, pushable)
            new_join = Join(new_left, child.right, child.keys, child.how)
            remaining = conjoin(rest)
            return Filter(new_join, remaining) if remaining is not None \
                else new_join
    combined = conjoin(predicates)
    return Filter(child, combined) if combined is not None else child
