"""Logical query plans.

A bound query is a tree of :class:`LogicalPlan` nodes over a single input
pipeline, plus a set of :class:`SubquerySpec` side plans — one per nested
aggregate subquery.  Subquery results are referenced from expressions via
``SubqueryRef``/``InSubquery`` placeholders carrying a *slot* id; this is
the plan-level representation of the paper's "uncertain values".

Keeping subqueries out-of-line (rather than as correlated plan subtrees)
is what lets the online compiler treat each one as a lineage block whose
aggregate output is broadcast to consumers (paper section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple


from ..engine.aggregates import AggregateCall
from ..errors import PlanError
from ..expr.expressions import ColumnRef, Expression
from ..storage.table import Column, ColumnType, Schema


class LogicalPlan:
    """Base class for plan nodes.  ``schema`` is fixed at bind time."""

    schema: Schema

    def children(self) -> Sequence["LogicalPlan"]:
        return ()

    def describe(self, indent: int = 0) -> str:
        """A multi-line textual rendering of the plan subtree."""
        pad = "  " * indent
        lines = [pad + self._label()]
        for child in self.children():
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        return type(self).__name__

    def subquery_slots(self) -> Set[int]:
        """All subquery slots referenced anywhere in this subtree."""
        out: Set[int] = set()
        for expr in self._expressions():
            out |= expr.subquery_slots()
        for child in self.children():
            out |= child.subquery_slots()
        return out

    def _expressions(self) -> Sequence[Expression]:
        return ()


class Scan(LogicalPlan):
    """Read a base table from the catalog."""

    def __init__(self, table_name: str, schema: Schema):
        self.table_name = table_name
        self.schema = schema

    def _label(self) -> str:
        return f"Scan({self.table_name})"


class Filter(LogicalPlan):
    """Keep rows satisfying ``predicate``.

    This is where G-OLA's uncertain/deterministic classification applies
    when ``predicate`` references subquery slots.
    """

    def __init__(self, input_plan: LogicalPlan, predicate: Expression):
        self.input = input_plan
        self.predicate = predicate
        self.schema = input_plan.schema

    def children(self):
        return (self.input,)

    def _expressions(self):
        return (self.predicate,)

    def _label(self) -> str:
        return f"Filter({self.predicate.sql()})"


class Project(LogicalPlan):
    """Compute named expressions over the input."""

    def __init__(self, input_plan: LogicalPlan,
                 exprs: Sequence[Tuple[Expression, str]]):
        self.input = input_plan
        self.exprs = list(exprs)
        self.schema = Schema(
            [Column(name, _expr_type(e, input_plan.schema))
             for e, name in self.exprs]
        )

    def children(self):
        return (self.input,)

    def _expressions(self):
        return tuple(e for e, _ in self.exprs)

    def _label(self) -> str:
        inner = ", ".join(f"{e.sql()} AS {n}" for e, n in self.exprs)
        return f"Project({inner})"


class Join(LogicalPlan):
    """Hash equi-join on one or more key pairs.

    In online execution the left side is the streamed pipeline and the
    right side must be a non-streamed dimension table (the paper's model:
    stream the fact table, read dimensions in entirety).
    """

    def __init__(self, left: LogicalPlan, right: LogicalPlan,
                 keys: Sequence[Tuple[str, str]], how: str = "inner"):
        if how not in ("inner", "left"):
            raise PlanError(f"unsupported join type {how!r}")
        if not keys:
            raise PlanError("join requires at least one key pair")
        self.left = left
        self.right = right
        self.keys = list(keys)
        self.how = how
        left_names = set(left.schema.names)
        cols = list(left.schema.columns)
        right_keys = {r for _, r in self.keys}
        for col in right.schema:
            if col.name in right_keys:
                continue
            if col.name in left_names:
                raise PlanError(
                    f"join would duplicate column {col.name!r}; rename first"
                )
            cols.append(col)
        self.schema = Schema(cols)

    def children(self):
        return (self.left, self.right)

    def _label(self) -> str:
        pairs = ", ".join(f"{l}={r}" for l, r in self.keys)
        return f"Join[{self.how}]({pairs})"


class Aggregate(LogicalPlan):
    """Grouped (or global) aggregation with an optional HAVING filter.

    Output columns are the group-by expressions (under their names)
    followed by one column per aggregate alias.  ``having`` may reference
    those output columns and subquery slots — an uncertain HAVING is how
    TPC-H Q11-style queries become non-monotonic.
    """

    def __init__(self, input_plan: LogicalPlan,
                 group_by: Sequence[Tuple[Expression, str]],
                 aggregates: Sequence[AggregateCall],
                 having: Optional[Expression] = None):
        if not aggregates:
            raise PlanError("Aggregate requires at least one aggregate call")
        self.input = input_plan
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)
        self.having = having
        cols = [Column(name, _expr_type(e, input_plan.schema))
                for e, name in self.group_by]
        cols.extend(Column(a.alias, ColumnType.FLOAT64) for a in self.aggregates)
        self.schema = Schema(cols)

    def children(self):
        return (self.input,)

    def _expressions(self):
        out = [e for e, _ in self.group_by]
        out.extend(a.arg for a in self.aggregates if a.arg is not None)
        if self.having is not None:
            out.append(self.having)
        return tuple(out)

    @property
    def is_global(self) -> bool:
        return not self.group_by

    def _label(self) -> str:
        aggs = ", ".join(a.sql() for a in self.aggregates)
        if self.group_by:
            keys = ", ".join(n for _, n in self.group_by)
            label = f"Aggregate(group by {keys}: {aggs})"
        else:
            label = f"Aggregate(global: {aggs})"
        if self.having is not None:
            label += f" HAVING {self.having.sql()}"
        return label


@dataclass(frozen=True)
class WindowCall:
    """One window function: ``func(arg) OVER (ORDER BY col [frame])``.

    ``arg`` names an input (projected) column, or None for ``COUNT(*)``
    frame counts.  ``preceding`` is the frame extent in rows before the
    current row; None means a cumulative (unbounded preceding) frame.
    """

    func: str
    arg: Optional[str]
    order_column: str
    preceding: Optional[int]
    alias: str

    def sql(self) -> str:
        inner = self.arg if self.arg is not None else "*"
        frame = (
            f" ROWS {self.preceding} PRECEDING"
            if self.preceding is not None else ""
        )
        return (
            f"{self.func.upper()}({inner}) OVER "
            f"(ORDER BY {self.order_column}{frame}) AS {self.alias}"
        )


class Window(LogicalPlan):
    """Window functions over the projected aggregate output.

    Evaluated per output row under a deterministic total order — the
    window's ORDER BY column first, then ``tiebreak`` (the projected
    group-key columns, which are unique per row) — so rolling frames are
    identical however the input rows were physically ordered.

    ``output_order`` is the final SELECT-order column list: projected
    columns interleaved with window aliases.
    """

    def __init__(self, input_plan: LogicalPlan,
                 calls: Sequence[WindowCall],
                 tiebreak: Sequence[str],
                 output_order: Sequence[str]):
        if not calls:
            raise PlanError("Window requires at least one window call")
        self.input = input_plan
        self.calls = list(calls)
        self.tiebreak = list(tiebreak)
        self.output_order = list(output_order)
        by_alias = {c.alias for c in self.calls}
        cols = []
        for name in self.output_order:
            if name in by_alias:
                cols.append(Column(name, ColumnType.FLOAT64))
            else:
                cols.append(input_plan.schema.field(name))
        for call in self.calls:
            if call.arg is not None:
                input_plan.schema.field(call.arg)
            input_plan.schema.field(call.order_column)
        self.schema = Schema(cols)

    def children(self):
        return (self.input,)

    def _label(self) -> str:
        return "Window(" + ", ".join(c.sql() for c in self.calls) + ")"


class Sort(LogicalPlan):
    """ORDER BY on output columns."""

    def __init__(self, input_plan: LogicalPlan,
                 keys: Sequence[Tuple[str, bool]]):
        self.input = input_plan
        self.keys = list(keys)
        for name, _ in self.keys:
            input_plan.schema.field(name)
        self.schema = input_plan.schema

    def children(self):
        return (self.input,)

    def _label(self) -> str:
        inner = ", ".join(
            f"{n} {'DESC' if d else 'ASC'}" for n, d in self.keys
        )
        return f"Sort({inner})"


class Limit(LogicalPlan):
    """Keep the first ``n`` rows."""

    def __init__(self, input_plan: LogicalPlan, n: int):
        if n < 0:
            raise PlanError("LIMIT must be non-negative")
        self.input = input_plan
        self.n = n
        self.schema = input_plan.schema

    def children(self):
        return (self.input,)

    def _label(self) -> str:
        return f"Limit({self.n})"


@dataclass
class SubquerySpec:
    """An out-of-line nested aggregate subquery.

    Attributes:
        slot: The id referenced by ``SubqueryRef``/``InSubquery`` nodes.
        plan: The subquery's own plan (it may reference further slots —
            arbitrary nesting).
        kind: ``"scalar"`` (uncorrelated, one value), ``"keyed"``
            (equality-correlated: the plan groups by the correlation key and
            consumers look their key up), or ``"set"`` (IN-subquery: the
            plan's first output column is the membership key).
        value_column: Output column holding the scalar value ("scalar"/
            "keyed") or the membership key ("set").
        key_column: For "keyed": the plan output column holding the
            correlation key.
    """

    slot: int
    plan: LogicalPlan
    kind: str
    value_column: str
    key_column: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("scalar", "keyed", "set"):
            raise PlanError(f"unknown subquery kind {self.kind!r}")
        if self.kind == "keyed" and self.key_column is None:
            raise PlanError("keyed subquery requires key_column")


@dataclass
class Query:
    """A fully bound query: the main plan plus its subquery side plans."""

    plan: LogicalPlan
    subqueries: Dict[int, SubquerySpec] = field(default_factory=dict)
    streamed_table: Optional[str] = None

    def describe(self) -> str:
        lines = [self.plan.describe()]
        for slot in sorted(self.subqueries):
            spec = self.subqueries[slot]
            lines.append(f"subquery #{slot} [{spec.kind}]:")
            lines.append(spec.plan.describe(indent=1))
        return "\n".join(lines)

    def subquery_order(self) -> List[int]:
        """Slots in dependency (topological) order, innermost first."""
        order: List[int] = []
        seen: Set[int] = set()

        def visit(slot: int, stack: Tuple[int, ...] = ()) -> None:
            if slot in seen:
                return
            if slot in stack:
                raise PlanError(f"cyclic subquery dependency at slot {slot}")
            for dep in sorted(self.subqueries[slot].plan.subquery_slots()):
                visit(dep, stack + (slot,))
            seen.add(slot)
            order.append(slot)

        for slot in sorted(self.subqueries):
            visit(slot)
        return order


def _expr_type(expr: Expression, input_schema: Schema) -> ColumnType:
    """Best-effort output type inference for a projection expression."""
    if isinstance(expr, ColumnRef) and expr.name in input_schema:
        return input_schema.type_of(expr.name)
    from ..expr.expressions import Comparison, BooleanOp, Between, InList, InSubquery, Literal

    if isinstance(expr, (Comparison, BooleanOp, Between, InList, InSubquery)):
        return ColumnType.BOOL
    if isinstance(expr, Literal):
        if isinstance(expr.value, bool):
            return ColumnType.BOOL
        if isinstance(expr.value, int):
            return ColumnType.INT64
        if isinstance(expr.value, str):
            return ColumnType.STRING
        return ColumnType.FLOAT64
    return ColumnType.FLOAT64
