"""Lineage-block partitioning of a query plan.

Paper section 3.3: a *lineage block* is a maximal SPJA subtree of the
query plan — any combination of select/project/join operators capped by
one aggregation.  Lineage is propagated *within* a block so cached
uncertain tuples can be lazily re-evaluated; only the (small) aggregate
results are broadcast *between* blocks, bounding the lineage cost.

Because the binder lifts every nested aggregate subquery out of line
(each one is an SPJA chain capped by its Aggregate), the lineage blocks of
a bound :class:`~repro.plan.logical.Query` are exactly: one block per
subquery slot, plus one block for the main plan.  This module formalizes
that correspondence, computes the broadcast edges between blocks, and
verifies the maximality invariant (no block nests another aggregation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

from ..errors import PlanError
from .logical import Aggregate, LogicalPlan, Query


@dataclass(frozen=True)
class LineageBlock:
    """One maximal SPJA subtree of the meta plan.

    Attributes:
        block_id: ``"main"`` or ``"sub#<slot>"``.
        plan: The block's plan subtree.
        produces: The subquery slot this block's aggregate feeds, or None
            for the main block (whose output goes to the user).
        consumes: Slots whose aggregate values are broadcast into this
            block (i.e. the uncertain values appearing in its predicates).
    """

    block_id: str
    plan: LogicalPlan
    produces: Optional[int]
    consumes: FrozenSet[int]


def _count_aggregates(plan: LogicalPlan) -> int:
    count = 1 if isinstance(plan, Aggregate) else 0
    for child in plan.children():
        count += _count_aggregates(child)
    return count


def lineage_blocks(query: Query) -> List[LineageBlock]:
    """Partition ``query`` into lineage blocks, innermost first.

    The returned order is a topological order of the broadcast DAG:
    every block appears after all blocks it consumes from.
    """
    blocks: List[LineageBlock] = []
    for slot in query.subquery_order():
        spec = query.subqueries[slot]
        if _count_aggregates(spec.plan) > 1:
            raise PlanError(
                f"subquery slot {slot} is not a single SPJA block"
            )
        blocks.append(
            LineageBlock(
                block_id=f"sub#{slot}",
                plan=spec.plan,
                produces=slot,
                consumes=frozenset(spec.plan.subquery_slots()),
            )
        )
    if _count_aggregates(query.plan) > 1:
        raise PlanError("main plan is not a single SPJA block")
    blocks.append(
        LineageBlock(
            block_id="main",
            plan=query.plan,
            produces=None,
            consumes=frozenset(query.plan.subquery_slots()),
        )
    )
    return blocks


def broadcast_edges(blocks: List[LineageBlock]) -> Dict[str, FrozenSet[str]]:
    """Map each block id to the ids of blocks it receives broadcasts from."""
    producer = {
        b.produces: b.block_id for b in blocks if b.produces is not None
    }
    return {
        b.block_id: frozenset(producer[s] for s in b.consumes)
        for b in blocks
    }
