"""Binding: SQL AST -> logical plan.

The binder resolves identifiers against the catalog, converts SQL
expressions into executable expression trees, and — the G-OLA-specific
part — *lifts nested aggregate subqueries out of line*:

* an uncorrelated scalar subquery becomes a ``scalar`` SubquerySpec and a
  ``SubqueryRef(slot)`` placeholder at its use site;
* a scalar subquery correlated via an equality (``inner.key = outer.key``)
  becomes a ``keyed`` spec — the inner plan is rewritten to GROUP BY the
  correlation key, and the placeholder carries the outer key expression;
* an ``IN (SELECT ...)`` subquery becomes a ``set`` spec and an
  ``InSubquery`` placeholder.

Nesting is arbitrary: subqueries are bound recursively with a shared slot
counter, so a subquery's own subqueries land in the same query-level map
(the delta-maintenance controller later processes slots in dependency
order).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.aggregates import AggregateCall, UDAFRegistry, is_aggregate_name
from ..errors import BindError, UnsupportedQueryError
from ..expr.expressions import (
    Between,
    BinaryOp,
    BooleanOp,
    CaseWhen,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    Literal,
    Negate,
    SubqueryRef,
    conjoin,
)
from ..sql import ast_nodes as ast
from ..storage.catalog import Catalog
from ..storage.table import Schema
from .logical import (
    Aggregate,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Query,
    Scan,
    Sort,
    SubquerySpec,
    Window,
    WindowCall,
)

#: Window functions with an online-safe rolling implementation.
WINDOW_FUNCS = ("sum", "avg", "mean", "count")


class Scope:
    """Name-resolution scope: an ordered list of (binding, schema) pairs.

    Column names stay flat in plans (the engine rejects duplicate names at
    join time), so resolution returns plain column names.
    """

    def __init__(self, entries: Sequence[Tuple[str, Schema]]):
        self.entries = list(entries)

    def add(self, binding: str, schema: Schema) -> None:
        self.entries.append((binding.lower(), schema))

    def try_resolve(self, ident: ast.Ident) -> Optional[str]:
        name = ident.name
        qualifier = ident.qualifier
        if qualifier is not None:
            for binding, schema in self.entries:
                if binding == qualifier.lower():
                    for col in schema.names:
                        if col.lower() == name.lower():
                            return col
                    return None
            return None
        for _, schema in self.entries:
            for col in schema.names:
                if col.lower() == name.lower():
                    return col
        return None

    def resolve(self, ident: ast.Ident) -> str:
        col = self.try_resolve(ident)
        if col is None:
            known = sorted({c for _, s in self.entries for c in s.names})
            raise BindError(
                f"cannot resolve column {'.'.join(ident.parts)!r}; "
                f"in scope: {known}"
            )
        return col


class Binder:
    """Stateful binder for one top-level statement."""

    def __init__(self, catalog: Catalog, udafs: Optional[UDAFRegistry] = None):
        self.catalog = catalog
        self.udafs = udafs
        self._next_slot = 0
        self._subqueries: Dict[int, SubquerySpec] = {}
        self._streamed_table: Optional[str] = None

    def bind(self, stmt: ast.SelectStmt) -> Query:
        """Bind a parsed statement into a :class:`Query`."""
        plan = self._bind_select(stmt, outer_scope=None)
        return Query(
            plan=plan,
            subqueries=self._subqueries,
            streamed_table=self._streamed_table,
        )

    # ------------------------------------------------------------------
    # SELECT binding
    # ------------------------------------------------------------------

    def _bind_select(self, stmt: ast.SelectStmt,
                     outer_scope: Optional[Scope]) -> LogicalPlan:
        if stmt.distinct:
            raise UnsupportedQueryError("SELECT DISTINCT is not supported")
        self._check_window_placement(stmt)

        plan, scope = self._bind_from(stmt)

        where_expr, correlation = self._bind_where(
            stmt.where, scope, outer_scope
        )
        if correlation is not None and not self._is_aggregate_query(stmt):
            raise UnsupportedQueryError(
                "correlated subqueries must be aggregate queries"
            )
        if where_expr is not None:
            plan = Filter(plan, where_expr)

        if self._is_aggregate_query(stmt):
            plan = self._bind_aggregate(stmt, plan, scope, correlation)
        else:
            if stmt.having is not None:
                raise BindError("HAVING requires GROUP BY or aggregates")
            exprs = []
            for i, item in enumerate(stmt.items):
                bound = self._bind_expr(item.expr, scope, outer_scope=None)
                exprs.append((bound, self._item_name(item, scope, i)))
            plan = Project(plan, exprs)

        if stmt.order_by:
            keys = []
            for expr, desc in stmt.order_by:
                if not isinstance(expr, ast.Ident):
                    raise UnsupportedQueryError(
                        "ORDER BY supports output column names only"
                    )
                target = None
                for col in plan.schema.names:
                    if col.lower() == expr.name.lower():
                        target = col
                        break
                if target is None:
                    raise BindError(
                        f"ORDER BY column {expr.name!r} is not in the output"
                    )
                keys.append((target, desc))
            plan = Sort(plan, keys)

        if stmt.limit is not None:
            plan = Limit(plan, stmt.limit)
        return plan

    def _bind_from(self, stmt: ast.SelectStmt) -> Tuple[LogicalPlan, Scope]:
        base = stmt.from_table
        schema = self.catalog.schema(base.name)
        plan: LogicalPlan = Scan(base.name.lower(), schema)
        scope = Scope([(base.binding, schema)])
        if self._streamed_table is None and self.catalog.is_streamed(base.name):
            self._streamed_table = base.name.lower()

        for join in stmt.joins:
            right_schema = self.catalog.schema(join.table.name)
            if self.catalog.is_streamed(join.table.name):
                raise UnsupportedQueryError(
                    f"joined table {join.table.name!r} is marked streamed; "
                    "only the FROM relation may be streamed (mark dimension "
                    "tables with streamed=False)"
                )
            right_scope = Scope([(join.table.binding, right_schema)])
            pairs = []
            for conj in _sql_conjuncts(join.condition):
                if not (isinstance(conj, ast.Binary) and conj.op == "="
                        and isinstance(conj.left, ast.Ident)
                        and isinstance(conj.right, ast.Ident)):
                    raise UnsupportedQueryError(
                        "JOIN ... ON supports conjunctions of column "
                        "equalities only"
                    )
                left_col = scope.try_resolve(conj.left)
                right_col = right_scope.try_resolve(conj.right)
                if left_col is None or right_col is None:
                    left_col = scope.try_resolve(conj.right)
                    right_col = right_scope.try_resolve(conj.left)
                if left_col is None or right_col is None:
                    raise BindError(
                        "cannot resolve join condition "
                        f"{'.'.join(conj.left.parts)} = "
                        f"{'.'.join(conj.right.parts)}"
                    )
                pairs.append((left_col, right_col))
            plan = Join(plan, Scan(join.table.name.lower(), right_schema),
                        pairs, how=join.how)
            scope.add(join.table.binding, right_schema)
        # Unqualified resolution walks all entries; qualified resolution
        # uses the per-binding schemas added above.
        return plan, scope

    def _bind_where(self, where: Optional[ast.SqlExpr], scope: Scope,
                    outer_scope: Optional[Scope]):
        """Bind WHERE, extracting correlation equalities when in a subquery.

        Returns ``(bound_predicate_or_None, correlation_or_None)`` where
        correlation is ``(inner_column, outer_column)``.
        """
        if where is None:
            return None, None
        correlation = None
        kept: List[ast.SqlExpr] = []
        for conj in _sql_conjuncts(where):
            corr = self._match_correlation(conj, scope, outer_scope)
            if corr is not None:
                if correlation is not None:
                    raise UnsupportedQueryError(
                        "at most one correlation equality per subquery"
                    )
                correlation = corr
                continue
            kept.append(conj)
        bound = None
        if kept:
            bound_parts = [
                self._bind_expr(c, scope, outer_scope=None) for c in kept
            ]
            bound = conjoin(bound_parts)
        return bound, correlation

    def _match_correlation(self, conj: ast.SqlExpr, scope: Scope,
                           outer_scope: Optional[Scope]):
        """Detect ``inner.col = outer.col`` conjuncts (either orientation)."""
        if outer_scope is None:
            return None
        if not (isinstance(conj, ast.Binary) and conj.op == "="
                and isinstance(conj.left, ast.Ident)
                and isinstance(conj.right, ast.Ident)):
            return None

        def side(ident: ast.Ident):
            inner = scope.try_resolve(ident)
            outer = outer_scope.try_resolve(ident)
            return inner, outer

        l_inner, l_outer = side(conj.left)
        r_inner, r_outer = side(conj.right)
        # A correlation pairs a column resolvable ONLY inside with one
        # resolvable ONLY outside; ambiguous cases (same column name in
        # both relations, unqualified) resolve inner-first per SQL scoping.
        if l_inner is not None and r_inner is None and r_outer is not None:
            return (l_inner, r_outer)
        if r_inner is not None and l_inner is None and l_outer is not None:
            return (r_inner, l_outer)
        return None

    # ------------------------------------------------------------------
    # Aggregate binding
    # ------------------------------------------------------------------

    def _is_aggregate_query(self, stmt: ast.SelectStmt) -> bool:
        if stmt.group_by or stmt.having is not None:
            return True
        return any(
            self._contains_aggregate(item.expr) for item in stmt.items
        )

    def _contains_aggregate(self, expr: ast.SqlExpr) -> bool:
        if isinstance(expr, ast.Call) and is_aggregate_name(expr.name, self.udafs):
            return True
        for child in _sql_children(expr):
            if self._contains_aggregate(child):
                return True
        return False

    def _bind_aggregate(self, stmt: ast.SelectStmt, plan: LogicalPlan,
                        scope: Scope,
                        correlation: Optional[Tuple[str, str]]) -> LogicalPlan:
        group_by: List[Tuple[Expression, str]] = []
        group_names: Dict[ast.SqlExpr, str] = {}
        if correlation is not None:
            inner_col, _outer = correlation
            group_by.append((ColumnRef(inner_col), inner_col))
        for i, gexpr in enumerate(stmt.group_by):
            bound = self._bind_expr(gexpr, scope, outer_scope=None)
            if isinstance(gexpr, ast.Ident):
                name = scope.resolve(gexpr)
            else:
                name = f"key_{i}"
            group_by.append((bound, name))
            group_names[gexpr] = name

        agg_calls, agg_aliases = self._collect_aggregates(stmt, scope)
        if not agg_calls:
            raise BindError("GROUP BY query must compute at least one aggregate")

        post_scope = _PostAggregateContext(
            group_names=group_names,
            group_columns=[name for _, name in group_by],
            agg_aliases=agg_aliases,
            scope=scope,
        )

        having_expr = None
        if stmt.having is not None:
            having_expr = self._bind_post_aggregate(
                stmt.having, post_scope
            )

        plan = Aggregate(plan, group_by, agg_calls, having_expr)

        # Final projection over the aggregate output, in SELECT order.
        # Window items are carved out and evaluated above the projection.
        exprs: List[Tuple[Expression, str]] = []
        window_items: List[Tuple[str, ast.WindowExpr]] = []
        names_in_order: List[str] = []
        projected_groups: List[str] = []
        covered_groups = set()
        for i, item in enumerate(stmt.items):
            if isinstance(item.expr, ast.WindowExpr):
                alias = item.alias or f"win_{i}"
                window_items.append((alias, item.expr))
                names_in_order.append(alias)
                continue
            bound = self._bind_post_aggregate(item.expr, post_scope)
            name = self._item_name(item, scope, i)
            exprs.append((bound, name))
            names_in_order.append(name)
            if item.expr in group_names:
                projected_groups.append(name)
                covered_groups.add(item.expr)
        project = Project(plan, exprs)
        if not window_items:
            return project
        return self._bind_windows(
            stmt, project, window_items, names_in_order,
            projected_groups, covered_groups,
        )

    def _collect_aggregates(self, stmt: ast.SelectStmt, scope: Scope):
        """Find every aggregate call in SELECT items and HAVING.

        Duplicate calls (same function, argument, flags) share one alias so
        they share one state during execution.
        """
        agg_aliases: Dict[Tuple, str] = {}
        agg_calls: List[AggregateCall] = []

        def register(call: ast.Call, preferred: Optional[str]) -> str:
            key = _canonical_call(call)
            if key in agg_aliases:
                return agg_aliases[key]
            if call.distinct and call.name.lower() not in (
                "count", "sum", "avg", "mean"
            ):
                raise UnsupportedQueryError(
                    f"DISTINCT is not supported for {call.name.upper()}"
                )
            param = None
            if call.star:
                arg = None
            else:
                if not call.args:
                    raise BindError(f"{call.name} requires an argument")
                arg_ast = call.args[0]
                if call.name.lower() == "quantile":
                    if len(call.args) != 2 or not isinstance(
                        call.args[1], ast.NumberLit
                    ):
                        raise BindError(
                            "QUANTILE(expr, fraction) needs a literal fraction"
                        )
                    param = call.args[1].value
                if self._contains_aggregate(arg_ast):
                    raise BindError("aggregates cannot nest directly")
                arg = self._bind_expr(arg_ast, scope, outer_scope=None)
            alias = preferred or f"{call.name.lower()}_{len(agg_calls)}"
            if any(a.alias == alias for a in agg_calls):
                alias = f"{alias}_{len(agg_calls)}"
            agg_aliases[key] = alias
            agg_calls.append(
                AggregateCall(call.name, arg, alias, call.distinct, param)
            )
            return alias

        def collect(expr: ast.SqlExpr, preferred: Optional[str] = None):
            if isinstance(expr, ast.Call) and is_aggregate_name(
                expr.name, self.udafs
            ):
                register(expr, preferred)
                return
            for child in _sql_children(expr):
                collect(child)

        for item in stmt.items:
            preferred = item.alias if isinstance(item.expr, ast.Call) else None
            collect(item.expr, preferred)
        if stmt.having is not None:
            collect(stmt.having)
        return agg_calls, agg_aliases

    def _bind_post_aggregate(self, expr: ast.SqlExpr,
                             ctx: "_PostAggregateContext") -> Expression:
        """Bind an expression over an Aggregate node's output."""
        # A select item that is exactly a GROUP BY expression references
        # the corresponding key column (SQL's functional-dependency rule).
        for gexpr, name in ctx.group_names.items():
            if gexpr == expr:
                return ColumnRef(name)
        if isinstance(expr, ast.Call) and is_aggregate_name(
            expr.name, self.udafs
        ):
            key = _canonical_call(expr)
            if key not in ctx.agg_aliases:
                raise BindError(
                    f"aggregate {expr.name} not collected "
                    "(internal binder error)"
                )
            return ColumnRef(ctx.agg_aliases[key])
        if isinstance(expr, ast.Call):
            args = [self._bind_post_aggregate(a, ctx) for a in expr.args]
            return FunctionCall(expr.name, args)
        if isinstance(expr, ast.Ident):
            # Must be a group-by column.
            for gexpr, name in ctx.group_names.items():
                if gexpr == expr:
                    return ColumnRef(name)
            resolved = ctx.scope.try_resolve(expr)
            if resolved is not None and resolved in ctx.group_columns:
                return ColumnRef(resolved)
            raise BindError(
                f"column {'.'.join(expr.parts)!r} must appear in GROUP BY "
                "or inside an aggregate"
            )
        if isinstance(expr, ast.ScalarSelect):
            return self._bind_scalar_subquery(expr.select, ctx.scope)
        if isinstance(expr, ast.InSelectExpr):
            value = self._bind_post_aggregate(expr.value, ctx)
            return self._bind_in_subquery(expr, ctx.scope, value)
        return self._rebuild(expr, lambda e: self._bind_post_aggregate(e, ctx))

    # ------------------------------------------------------------------
    # Window functions
    # ------------------------------------------------------------------

    def _check_window_placement(self, stmt: ast.SelectStmt) -> None:
        """Windows are top-level SELECT items of a grouped query only."""
        has_window = any(
            isinstance(item.expr, ast.WindowExpr) for item in stmt.items
        )
        if has_window and not stmt.group_by:
            raise UnsupportedQueryError("window functions require GROUP BY")
        for item in stmt.items:
            if isinstance(item.expr, ast.WindowExpr):
                continue
            if _contains_window(item.expr):
                raise UnsupportedQueryError(
                    "window functions must be top-level SELECT items"
                )
        for clause, name in ((stmt.where, "WHERE"), (stmt.having, "HAVING")):
            if clause is not None and _contains_window(clause):
                raise UnsupportedQueryError(
                    f"window functions are not allowed in {name}"
                )

    def _bind_windows(self, stmt: ast.SelectStmt, project: Project,
                      window_items: Sequence[Tuple[str, ast.WindowExpr]],
                      names_in_order: Sequence[str],
                      projected_groups: Sequence[str],
                      covered_groups) -> LogicalPlan:
        # Rolling frames need a deterministic total order; the projected
        # group-key tuple is unique per row, so every GROUP BY expression
        # must survive into the SELECT list to serve as the tiebreak.
        if not all(g in covered_groups for g in stmt.group_by):
            raise UnsupportedQueryError(
                "window functions require every GROUP BY column in the "
                "SELECT list"
            )
        available = set(project.schema.names)
        calls: List[WindowCall] = []
        for alias, wexpr in window_items:
            call = wexpr.call
            func = call.name.lower()
            if func == "mean":
                func = "avg"
            if func not in ("sum", "avg", "count"):
                raise UnsupportedQueryError(
                    f"window function {call.name.upper()} is not supported "
                    "(SUM/AVG/COUNT only)"
                )
            if call.distinct:
                raise UnsupportedQueryError(
                    "DISTINCT window functions are not supported"
                )
            if call.star or func == "count":
                arg = None
            else:
                if len(call.args) != 1 or not isinstance(
                    call.args[0], ast.Ident
                ):
                    raise UnsupportedQueryError(
                        "window arguments must name an output column"
                    )
                arg = self._output_column(
                    call.args[0], project.schema.names
                )
            if not isinstance(wexpr.order, ast.Ident):
                raise UnsupportedQueryError(
                    "window ORDER BY supports output column names only"
                )
            order_col = self._output_column(
                wexpr.order, project.schema.names
            )
            if order_col not in projected_groups:
                raise UnsupportedQueryError(
                    "window ORDER BY must name a grouped output column"
                )
            if wexpr.preceding is not None and wexpr.preceding < 0:
                raise BindError("ROWS n PRECEDING requires n >= 0")
            if alias in available:
                raise BindError(f"duplicate output column {alias!r}")
            available.add(alias)
            calls.append(
                WindowCall(func, arg, order_col, wexpr.preceding, alias)
            )
        return Window(project, calls, projected_groups, names_in_order)

    def _output_column(self, ident: ast.Ident,
                       names: Sequence[str]) -> str:
        for name in names:
            if name.lower() == ident.name.lower():
                return name
        raise BindError(
            f"window column {ident.name!r} is not an output column; "
            f"have {list(names)}"
        )

    # ------------------------------------------------------------------
    # Expression binding (pre-aggregate scope)
    # ------------------------------------------------------------------

    def _bind_expr(self, expr: ast.SqlExpr, scope: Scope,
                   outer_scope: Optional[Scope]) -> Expression:
        if isinstance(expr, ast.Ident):
            return ColumnRef(scope.resolve(expr))
        if isinstance(expr, ast.Call):
            if is_aggregate_name(expr.name, self.udafs):
                raise BindError(
                    f"aggregate {expr.name}() is not allowed here; "
                    "use a subquery"
                )
            args = [self._bind_expr(a, scope, outer_scope) for a in expr.args]
            return FunctionCall(expr.name, args)
        if isinstance(expr, ast.ScalarSelect):
            return self._bind_scalar_subquery(expr.select, scope)
        if isinstance(expr, ast.InSelectExpr):
            value = self._bind_expr(expr.value, scope, outer_scope)
            return self._bind_in_subquery(expr, scope, value)
        return self._rebuild(
            expr, lambda e: self._bind_expr(e, scope, outer_scope)
        )

    def _rebuild(self, expr: ast.SqlExpr, bind) -> Expression:
        """Shared structural conversion for nodes without scope decisions."""
        if isinstance(expr, ast.NumberLit):
            return Literal(int(expr.value) if expr.is_integer else expr.value)
        if isinstance(expr, ast.StringLit):
            return Literal(expr.value)
        if isinstance(expr, ast.BoolLit):
            return Literal(expr.value)
        if isinstance(expr, ast.Unary):
            operand = bind(expr.operand)
            if expr.op == "-":
                return Negate(operand)
            return BooleanOp("NOT", [operand])
        if isinstance(expr, ast.Binary):
            if expr.op in ("and", "or"):
                return BooleanOp(expr.op.upper(),
                                 [bind(expr.left), bind(expr.right)])
            if expr.op in ("=", "!=", "<>", "<", "<=", ">", ">="):
                return Comparison(expr.op, bind(expr.left), bind(expr.right))
            return BinaryOp(expr.op, bind(expr.left), bind(expr.right))
        if isinstance(expr, ast.BetweenExpr):
            between = Between(bind(expr.value), bind(expr.low), bind(expr.high))
            return BooleanOp("NOT", [between]) if expr.negated else between
        if isinstance(expr, ast.InListExpr):
            options = []
            for option in expr.options:
                if isinstance(option, ast.NumberLit):
                    options.append(
                        int(option.value) if option.is_integer else option.value
                    )
                elif isinstance(option, ast.StringLit):
                    options.append(option.value)
                elif isinstance(option, ast.BoolLit):
                    options.append(option.value)
                else:
                    raise UnsupportedQueryError(
                        "IN lists support literal options only"
                    )
            in_list = InList(bind(expr.value), options)
            return BooleanOp("NOT", [in_list]) if expr.negated else in_list
        if isinstance(expr, ast.CaseExpr):
            whens = [(bind(c), bind(v)) for c, v in expr.whens]
            otherwise = (
                bind(expr.otherwise) if expr.otherwise is not None else None
            )
            return CaseWhen(whens, otherwise)
        raise BindError(f"cannot bind expression node {type(expr).__name__}")

    # ------------------------------------------------------------------
    # Subqueries
    # ------------------------------------------------------------------

    def _bind_scalar_subquery(self, stmt: ast.SelectStmt,
                              outer_scope: Scope) -> Expression:
        if len(stmt.items) != 1:
            raise UnsupportedQueryError(
                "scalar subqueries must select exactly one expression"
            )
        if stmt.group_by or stmt.having is not None:
            raise UnsupportedQueryError(
                "scalar subqueries cannot use GROUP BY/HAVING; correlate "
                "via an equality predicate instead"
            )
        if stmt.joins:
            raise UnsupportedQueryError("joins inside subqueries")
        item = stmt.items[0]
        if isinstance(item.expr, ast.WindowExpr) or _contains_window(item.expr):
            raise UnsupportedQueryError(
                "window functions are not supported in subqueries"
            )
        if not self._contains_aggregate(item.expr):
            raise UnsupportedQueryError(
                "scalar subqueries must compute an aggregate"
            )

        schema = self.catalog.schema(stmt.from_table.name)
        scope = Scope([(stmt.from_table.binding, schema)])
        plan: LogicalPlan = Scan(stmt.from_table.name.lower(), schema)
        where_expr, correlation = self._bind_where(
            stmt.where, scope, outer_scope
        )
        if where_expr is not None:
            plan = Filter(plan, where_expr)

        agg_calls, agg_aliases = self._collect_aggregates(
            ast.SelectStmt(items=(item,), from_table=stmt.from_table), scope
        )
        group_by: List[Tuple[Expression, str]] = []
        if correlation is not None:
            inner_key, _outer_col = correlation
            group_by.append((ColumnRef(inner_key), inner_key))
        agg_node = Aggregate(plan, group_by, agg_calls, having=None)

        post = _PostAggregateContext(
            group_names={}, group_columns=[n for _, n in group_by],
            agg_aliases=agg_aliases, scope=scope,
        )
        value_expr = self._bind_post_aggregate(item.expr, post)
        projections: List[Tuple[Expression, str]] = []
        if correlation is not None:
            inner_key = correlation[0]
            projections.append((ColumnRef(inner_key), inner_key))
        projections.append((value_expr, "value"))
        sub_plan = Project(agg_node, projections)

        slot = self._next_slot
        self._next_slot += 1
        if correlation is None:
            self._subqueries[slot] = SubquerySpec(
                slot=slot, plan=sub_plan, kind="scalar",
                value_column="value",
            )
            return SubqueryRef(slot)
        inner_key, outer_col = correlation
        self._subqueries[slot] = SubquerySpec(
            slot=slot, plan=sub_plan, kind="keyed",
            value_column="value", key_column=inner_key,
        )
        return SubqueryRef(slot, correlation=ColumnRef(outer_col))

    def _bind_in_subquery(self, expr: ast.InSelectExpr, outer_scope: Scope,
                          value: Expression) -> Expression:
        stmt = expr.select
        if len(stmt.items) != 1:
            raise UnsupportedQueryError(
                "IN subqueries must select exactly one column"
            )
        if stmt.joins:
            raise UnsupportedQueryError("joins inside subqueries")
        if any(isinstance(i.expr, ast.WindowExpr) or _contains_window(i.expr)
               for i in stmt.items):
            raise UnsupportedQueryError(
                "window functions are not supported in subqueries"
            )
        schema = self.catalog.schema(stmt.from_table.name)
        scope = Scope([(stmt.from_table.binding, schema)])
        plan: LogicalPlan = Scan(stmt.from_table.name.lower(), schema)
        where_expr, correlation = self._bind_where(
            stmt.where, scope, outer_scope
        )
        if correlation is not None:
            raise UnsupportedQueryError(
                "correlated IN subqueries are not supported"
            )
        if where_expr is not None:
            plan = Filter(plan, where_expr)

        if self._is_aggregate_query(stmt):
            plan = self._bind_aggregate(stmt, plan, scope, None)
            key_col = plan.schema.names[0]
        else:
            item = stmt.items[0]
            bound = self._bind_expr(item.expr, scope, outer_scope=None)
            key_col = self._item_name(item, scope, 0)
            plan = Project(plan, [(bound, key_col)])

        slot = self._next_slot
        self._next_slot += 1
        self._subqueries[slot] = SubquerySpec(
            slot=slot, plan=plan, kind="set", value_column=key_col,
        )
        return InSubquery(value, slot, negated=expr.negated)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _item_name(self, item: ast.SelectItem, scope: Scope, index: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ast.Ident):
            return scope.resolve(item.expr)
        if isinstance(item.expr, ast.Call):
            return f"{item.expr.name.lower()}_{index}"
        return f"col_{index}"


class _PostAggregateContext:
    """Bundles what post-aggregate expression binding needs."""

    def __init__(self, group_names, group_columns, agg_aliases, scope):
        self.group_names = group_names
        self.group_columns = group_columns
        self.agg_aliases = agg_aliases
        self.scope = scope


def _sql_conjuncts(expr: ast.SqlExpr) -> List[ast.SqlExpr]:
    if isinstance(expr, ast.Binary) and expr.op == "and":
        return _sql_conjuncts(expr.left) + _sql_conjuncts(expr.right)
    return [expr]


def _contains_window(expr: ast.SqlExpr) -> bool:
    if isinstance(expr, ast.WindowExpr):
        return True
    return any(_contains_window(child) for child in _sql_children(expr))


def _sql_children(expr: ast.SqlExpr) -> List[ast.SqlExpr]:
    if isinstance(expr, ast.WindowExpr):
        # The windowed call itself is NOT a child: its aggregate-named
        # function must not be collected as a regular aggregate.
        return [*expr.call.args, expr.order]
    if isinstance(expr, ast.Call):
        return list(expr.args)
    if isinstance(expr, ast.Unary):
        return [expr.operand]
    if isinstance(expr, ast.Binary):
        return [expr.left, expr.right]
    if isinstance(expr, ast.BetweenExpr):
        return [expr.value, expr.low, expr.high]
    if isinstance(expr, ast.InListExpr):
        return [expr.value, *expr.options]
    if isinstance(expr, ast.InSelectExpr):
        return [expr.value]  # the nested select is bound separately
    if isinstance(expr, ast.CaseExpr):
        out = []
        for cond, value in expr.whens:
            out.extend((cond, value))
        if expr.otherwise is not None:
            out.append(expr.otherwise)
        return out
    return []


def _canonical_call(call: ast.Call) -> Tuple:
    """A hashable identity for an aggregate call so duplicates share state."""
    return (call.name.lower(), call.args, call.distinct, call.star)


def bind_statement(stmt: ast.SelectStmt, catalog: Catalog,
                   udafs: Optional[UDAFRegistry] = None) -> Query:
    """Convenience wrapper: bind one statement with a fresh binder."""
    return Binder(catalog, udafs).bind(stmt)
