"""Deterministic RNG plumbing.

Every stochastic component (shuffling, Poisson bootstrap weights, quantile
reservoirs) derives its generator from the master seed through a stable
string label, so a run is bit-for-bit reproducible from its
:class:`~repro.config.GolaConfig` alone and components cannot perturb each
other's streams.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(master_seed: int, label: str) -> int:
    """A child seed from ``master_seed`` and a stable component label."""
    digest = hashlib.sha256(f"{master_seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def derive_rng(master_seed: int, label: str) -> np.random.Generator:
    """A fresh numpy Generator for the given component label."""
    return np.random.default_rng(derive_seed(master_seed, label))
