"""Error estimation: bootstrap, closed forms, intervals, variation ranges."""

from .bootstrap import (
    PoissonWeightSource,
    multinomial_bootstrap,
    poissonized_bootstrap,
)
from .closed_form import (
    count_interval,
    mean_interval,
    normal_quantile,
    sum_interval,
    z_value,
)
from .intervals import (
    ConfidenceInterval,
    basic_interval,
    basic_intervals,
    percentile_interval,
    percentile_intervals,
    relative_stdev,
    relative_stdevs,
)
from .random_source import derive_rng, derive_seed
from .variation import (
    VariationRange,
    range_from_replicas,
    ranges_from_replica_matrix,
)

__all__ = [
    "ConfidenceInterval",
    "PoissonWeightSource",
    "VariationRange",
    "basic_interval",
    "basic_intervals",
    "count_interval",
    "derive_rng",
    "derive_seed",
    "mean_interval",
    "multinomial_bootstrap",
    "normal_quantile",
    "percentile_interval",
    "percentile_intervals",
    "poissonized_bootstrap",
    "range_from_replicas",
    "ranges_from_replica_matrix",
    "relative_stdev",
    "relative_stdevs",
    "sum_interval",
    "z_value",
]
