"""Confidence intervals and error summaries from bootstrap replicas.

G-OLA reports, with every refined answer, a bootstrap confidence interval
against the ground truth and a relative standard deviation (the error
metric of the paper's Figure 3(a)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided interval at the given confidence level."""

    low: float
    high: float
    confidence: float

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        pct = 100.0 * self.confidence
        return f"[{self.low:.6g}, {self.high:.6g}] @{pct:.0f}%"


def percentile_interval(replicas: np.ndarray,
                        confidence: float = 0.95) -> ConfidenceInterval:
    """The bootstrap percentile interval over a 1-D replica vector."""
    replicas = np.asarray(replicas, dtype=np.float64)
    alpha = (1.0 - confidence) / 2.0
    # NaN replicas (groups with no estimate yet) legally yield NaN
    # bounds; silence numpy's interpolation warning for that case.
    with np.errstate(invalid="ignore"):
        low, high = np.percentile(
            replicas, [100 * alpha, 100 * (1 - alpha)]
        )
    return ConfidenceInterval(float(low), float(high), confidence)


def percentile_intervals(replica_matrix: np.ndarray,
                         confidence: float = 0.95
                         ) -> Tuple[np.ndarray, np.ndarray]:
    """Row-wise percentile bounds for a ``(G, B)`` replica matrix."""
    matrix = np.asarray(replica_matrix, dtype=np.float64)
    alpha = (1.0 - confidence) / 2.0
    with np.errstate(invalid="ignore"):
        low = np.percentile(matrix, 100 * alpha, axis=1)
        high = np.percentile(matrix, 100 * (1 - alpha), axis=1)
    return low, high


def basic_interval(estimate: float, replicas: np.ndarray,
                   confidence: float = 0.95) -> ConfidenceInterval:
    """The basic (reverse-percentile) bootstrap interval.

    ``[2*est - q_hi, 2*est - q_lo]`` reflects the replica quantiles
    around the point estimate.  For symmetric, unbiased replica
    distributions this coincides with the percentile interval; when the
    resampling itself biases the replicas (nested-aggregate queries whose
    uncertain predicate threshold is recomputed per replica, amplifying
    selection bias), the reflection puts the interval on the side of the
    estimate where the truth actually lies.  The ``repro.qa`` calibration
    harness measures the difference directly: percentile intervals
    under-cover TPC-H Q17 badly; basic intervals stay inside the binomial
    acceptance band.
    """
    replicas = np.asarray(replicas, dtype=np.float64)
    alpha = (1.0 - confidence) / 2.0
    q_lo, q_hi = np.percentile(replicas, [100 * alpha, 100 * (1 - alpha)])
    return ConfidenceInterval(
        float(2.0 * estimate - q_hi), float(2.0 * estimate - q_lo),
        confidence,
    )


def basic_intervals(estimates: np.ndarray, replica_matrix: np.ndarray,
                    confidence: float = 0.95
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Row-wise basic bootstrap bounds for a ``(G, B)`` replica matrix."""
    estimates = np.asarray(estimates, dtype=np.float64)
    q_lo, q_hi = percentile_intervals(replica_matrix, confidence)
    return 2.0 * estimates - q_hi, 2.0 * estimates - q_lo


def relative_stdev(estimate: float, replicas: np.ndarray) -> float:
    """Bootstrap standard deviation relative to the estimate's magnitude.

    Returns ``inf`` when the estimate is zero but replicas vary, and 0.0
    when both are degenerate.
    """
    sd = float(np.std(np.asarray(replicas, dtype=np.float64)))
    denom = abs(float(estimate))
    if denom == 0.0:
        return 0.0 if sd == 0.0 else float("inf")
    return sd / denom


def relative_stdevs(estimates: np.ndarray,
                    replica_matrix: np.ndarray) -> np.ndarray:
    """Row-wise relative standard deviations for grouped results."""
    estimates = np.asarray(estimates, dtype=np.float64)
    with np.errstate(invalid="ignore"):
        sd = np.std(np.asarray(replica_matrix, dtype=np.float64), axis=1)
    out = np.full(len(estimates), np.inf)
    nonzero = estimates != 0
    out[nonzero] = sd[nonzero] / np.abs(estimates[nonzero])
    out[(~nonzero) & (sd == 0.0)] = 0.0
    return out
