"""Closed-form (CLT) error estimators for simple aggregates.

The paper contrasts bootstrap against Central-Limit-Theorem estimators:
closed forms only exist for simple SPJA aggregates, which is exactly why
pre-G-OLA systems struggled to predict sample sizes for nested queries.
These are used by the classical-OLA baseline and by tests that check the
bootstrap against known ground truth.
"""

from __future__ import annotations

import math

import numpy as np

from .intervals import ConfidenceInterval

# Normal quantiles for common confidence levels; scipy-free inverse CDF
# below handles the rest.
_Z_TABLE = {0.90: 1.6448536269514722, 0.95: 1.959963984540054,
            0.99: 2.5758293035489004}


def normal_quantile(p: float) -> float:
    """Acklam's rational approximation to the standard normal inverse CDF.

    Max absolute error ~1.15e-9 — more than enough for error bars.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p > p_high:
        q = math.sqrt(-2 * math.log(1 - p))
        return -((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                  + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q
                             + 1))
    q = p - 0.5
    r = q * q
    return ((((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
             + a[5]) * q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1))


def z_value(confidence: float) -> float:
    """Two-sided normal critical value for a confidence level."""
    if confidence in _Z_TABLE:
        return _Z_TABLE[confidence]
    return normal_quantile(0.5 + confidence / 2.0)


def mean_interval(sample: np.ndarray,
                  confidence: float = 0.95) -> ConfidenceInterval:
    """CLT interval for a population mean from a uniform sample."""
    sample = np.asarray(sample, dtype=np.float64)
    n = len(sample)
    if n < 2:
        value = float(sample[0]) if n else float("nan")
        return ConfidenceInterval(value, value, confidence)
    est = float(sample.mean())
    se = float(sample.std(ddof=1)) / math.sqrt(n)
    z = z_value(confidence)
    return ConfidenceInterval(est - z * se, est + z * se, confidence)


def sum_interval(sample: np.ndarray, population_size: int,
                 confidence: float = 0.95) -> ConfidenceInterval:
    """CLT interval for a population sum (sample scaled by ``N/n``)."""
    sample = np.asarray(sample, dtype=np.float64)
    n = len(sample)
    if n < 2:
        est = float(sample.sum()) * (population_size / max(n, 1))
        return ConfidenceInterval(est, est, confidence)
    scale = population_size / n
    est = float(sample.sum()) * scale
    se = population_size * float(sample.std(ddof=1)) / math.sqrt(n)
    z = z_value(confidence)
    return ConfidenceInterval(est - z * se, est + z * se, confidence)


def count_interval(sample_mask: np.ndarray, population_size: int,
                   confidence: float = 0.95) -> ConfidenceInterval:
    """CLT interval for a population count of a boolean predicate."""
    mask = np.asarray(sample_mask, dtype=np.float64)
    return sum_interval(mask, population_size, confidence)
