"""Variation ranges for uncertain values (paper section 3.2).

The variation range ``R(u)`` of an uncertain value ``u`` is the set of all
values ``u`` may take during online execution.  It cannot be known until
the query finishes, so G-OLA approximates it from the bootstrap outputs
``û`` of the running estimate::

    R(u) = [min(û) − ε, max(û) + ε]

with a user-controlled slack ``ε``; setting ``ε`` to the standard
deviation of ``û`` balances the recomputation probability against the
size of the uncertain sets.  Deterministic values have the degenerate
range ``{d}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class VariationRange:
    """A closed interval ``[low, high]`` of possible values."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(f"inverted range [{self.low}, {self.high}]")

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def contains_all(self, values: np.ndarray) -> bool:
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return True
        return bool(
            (values.min() >= self.low) and (values.max() <= self.high)
        )

    def overlaps(self, other: "VariationRange") -> bool:
        """Whether ``R(x) ∩ R(y) ≠ ∅`` — the uncertainty test."""
        return self.low <= other.high and other.low <= self.high

    def intersect(self, other: "VariationRange") -> "VariationRange":
        """The intersection (used to tighten consumer guards)."""
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        if low > high:
            # Disjoint guards mean an (already detected) failure; collapse
            # to a point so containment checks keep failing loudly.
            low = high = (low + high) / 2.0
        return VariationRange(low, high)

    @property
    def width(self) -> float:
        return self.high - self.low

    @staticmethod
    def degenerate(value: float) -> "VariationRange":
        """The range of a deterministic value: itself."""
        return VariationRange(value, value)


def range_from_replicas(estimate: float, replicas: np.ndarray,
                        epsilon_multiplier: float = 1.0) -> VariationRange:
    """Approximate ``R(u)`` from the running estimate and its replicas."""
    replicas = np.asarray(replicas, dtype=np.float64)
    if replicas.size == 0:
        return VariationRange.degenerate(estimate)
    eps = epsilon_multiplier * float(np.std(replicas))
    low = min(float(np.min(replicas)), estimate) - eps
    high = max(float(np.max(replicas)), estimate) + eps
    return VariationRange(low, high)


def ranges_from_replica_matrix(
    estimates: np.ndarray,
    replica_matrix: np.ndarray,
    epsilon_multiplier: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized per-group ranges for keyed uncertain values.

    Returns ``(lows, highs)`` arrays of shape ``(G,)``.
    """
    estimates = np.asarray(estimates, dtype=np.float64)
    matrix = np.asarray(replica_matrix, dtype=np.float64)
    eps = epsilon_multiplier * matrix.std(axis=1)
    lows = np.minimum(matrix.min(axis=1), estimates) - eps
    highs = np.maximum(matrix.max(axis=1), estimates) + eps
    return lows, highs
