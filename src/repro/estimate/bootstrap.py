"""Bootstrap error estimation.

Two flavours:

* **Poissonized bootstrap** (the default, inherited from BlinkDB): each of
  the ``B`` trials assigns every incoming tuple an i.i.d. Poisson(1)
  weight.  Because Poisson weights are assigned *once at arrival* and
  folded into per-trial mergeable aggregate states, maintaining all ``B``
  replicas across mini-batches costs ``O(B · |ΔD|)`` vectorized work per
  batch — no data is ever revisited.  The weights for a batch are drawn
  once and shared by every lineage block, so each trial ``j`` sees one
  consistent simulated database ``D_{i,j}`` across nested subqueries.

* **Multinomial (classical) bootstrap** for validation: explicit
  resampling of a concrete sample, used by tests to check the poissonized
  estimates and by the closed-form comparisons.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..obs import NULL_TRACER, Tracer
from .random_source import derive_rng


class PoissonWeightSource:
    """Draws per-batch ``(n, B)`` Poisson(1) weight matrices.

    One source per query run; batches are drawn sequentially so the
    stream is reproducible from the master seed.  Weight drawing is the
    per-batch fixed cost of bootstrap error estimation, so the source
    records a ``phase:weights`` span per draw when tracing is enabled —
    the trial-state update cost downstream is proportional to the same
    ``rows × trials`` volume.
    """

    def __init__(self, trials: int, master_seed: int,
                 label: str = "bootstrap",
                 tracer: Optional[Tracer] = None):
        if trials < 1:
            raise ValueError("trials must be >= 1")
        self.trials = trials
        self._rng = derive_rng(master_seed, label)
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def weights_for(self, num_rows: int) -> np.ndarray:
        """An ``(num_rows, trials)`` float64 Poisson(1) weight matrix."""
        with self.tracer.span("phase:weights", rows_in=num_rows,
                              trials=self.trials):
            out = self._rng.poisson(
                1.0, size=(num_rows, self.trials)
            ).astype(np.float64)
        if self.tracer.metrics.enabled:
            self.tracer.metrics.counter(
                "bootstrap.weights_drawn"
            ).inc(num_rows * self.trials)
        return out

    def state_dict(self) -> dict:
        """The generator's resumable state (run checkpointing)."""
        return self._rng.bit_generator.state

    def restore_state(self, state: dict) -> None:
        """Restore a state captured by :meth:`state_dict`."""
        self._rng.bit_generator.state = state


def multinomial_bootstrap(
    values: np.ndarray,
    statistic: Callable[[np.ndarray], float],
    trials: int,
    seed: int = 0,
) -> np.ndarray:
    """Classical bootstrap replicas of ``statistic`` over ``values``.

    Each trial resamples ``len(values)`` entries i.i.d. with replacement
    and evaluates the statistic — the textbook Monte-Carlo procedure of
    paper section 2.2.  Quadratic-ish in practice; for validation only.
    """
    values = np.asarray(values)
    rng = np.random.default_rng(seed)
    n = len(values)
    out = np.empty(trials, dtype=np.float64)
    for t in range(trials):
        sample = values[rng.integers(0, n, size=n)]
        out[t] = statistic(sample)
    return out


def poissonized_bootstrap(
    values: np.ndarray,
    weighted_statistic: Callable[[np.ndarray, np.ndarray], float],
    trials: int,
    seed: int = 0,
) -> np.ndarray:
    """Poissonized bootstrap replicas over a concrete value vector.

    ``weighted_statistic(values, weights)`` receives one Poisson(1)
    weight per value.  This is the one-shot analogue of what the online
    engine maintains incrementally; tests use it to validate that both
    paths agree in distribution.
    """
    values = np.asarray(values)
    rng = np.random.default_rng(seed)
    out = np.empty(trials, dtype=np.float64)
    for t in range(trials):
        weights = rng.poisson(1.0, size=len(values)).astype(np.float64)
        out[t] = weighted_statistic(values, weights)
    return out
