"""Bootstrap error estimation.

Two flavours:

* **Poissonized bootstrap** (the default, inherited from BlinkDB): each of
  the ``B`` trials assigns every incoming tuple an i.i.d. Poisson(1)
  weight.  Because Poisson weights are assigned *once at arrival* and
  folded into per-trial mergeable aggregate states, maintaining all ``B``
  replicas across mini-batches costs ``O(B · |ΔD|)`` vectorized work per
  batch — no data is ever revisited.  The weights for a batch are drawn
  once and shared by every lineage block, so each trial ``j`` sees one
  consistent simulated database ``D_{i,j}`` across nested subqueries.

* **Multinomial (classical) bootstrap** for validation: explicit
  resampling of a concrete sample, used by tests to check the poissonized
  estimates and by the closed-form comparisons.

Weight streams are derived **per (batch, trial)** from the master seed:
trial ``t`` of batch ``i`` always draws the same column no matter how
the trial axis is sharded across workers, which is what makes parallel
bootstrap maintenance (``repro.parallel``) bit-identical to serial
execution for any worker count.  It also makes the stream *stateless*:
any batch/trial rectangle can be (re)generated on any process from the
``(master_seed, label)`` pair alone.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

import numpy as np

from ..errors import CheckpointError
from ..obs import NULL_TRACER, Tracer
from .random_source import derive_rng


def _poisson1_tables():
    """Inverse-CDF tables for Poisson(1) weight draws.

    The CDF saturates to 1.0 (within float64) at k = 18, truncating a
    tail of mass ~1e-18 — unobservable at any realistic draw volume.
    The 4096-bucket quantization maps a uniform draw straight to its
    weight for every bucket that lies inside one CDF step; only the
    handful of buckets straddling a step (7 of 4096) fall back to a
    binary search, so the transform costs ~one table lookup per row.
    """
    pmf, term = [], float(np.exp(-1.0))
    for k in range(40):
        pmf.append(term)
        term /= (k + 1)
    cdf = np.cumsum(pmf)
    cdf = cdf[: int(np.searchsorted(cdf, 1.0 - 1e-18)) + 1]
    buckets = 4096
    grid = np.arange(buckets, dtype=np.float64) / buckets
    k_low = np.searchsorted(cdf, grid, side="right")
    k_high = np.searchsorted(
        cdf, (np.arange(buckets) + 1.0) / buckets - 1e-18, side="right"
    )
    return cdf, k_low.astype(np.float64), k_low != k_high, buckets


_P1_CDF, _P1_BUCKET_K, _P1_AMBIGUOUS, _P1_BUCKETS = _poisson1_tables()


def poisson_trial_column(master_seed: int, label: str, batch_index: int,
                         trial: int, num_rows: int) -> np.ndarray:
    """The ``(num_rows,)`` Poisson(1) weight column of one trial.

    Pure function of ``(master_seed, label, batch_index, trial)`` — the
    unit of work a bootstrap shard regenerates locally instead of having
    the dense matrix shipped to it.  The draw is one uniform per row
    pushed through the exact Poisson(1) inverse CDF (bucket-table fast
    path, ~3x faster than ``Generator.poisson``).
    """
    rng = derive_rng(master_seed, f"{label}:b{batch_index}:t{trial}")
    u = rng.random(num_rows)
    idx = (u * _P1_BUCKETS).astype(np.int64)
    out = _P1_BUCKET_K[idx]
    ambiguous = _P1_AMBIGUOUS[idx]
    if ambiguous.any():
        sub = np.nonzero(ambiguous)[0]
        out[sub] = np.searchsorted(_P1_CDF, u[sub], side="right")
    return out


class BatchWeights:
    """Lazy handle on one batch's ``(num_rows, trials)`` weight matrix.

    The dense matrix is only materialized on first :meth:`dense` /
    :meth:`rows` access (and then cached); :meth:`shard` generates just
    the trial columns ``[lo, hi)`` — column-identical to the dense
    matrix — so trial-sharded workers never touch the full ``(n, B)``
    rectangle.  The handle itself holds only primitives, so it is cheap
    to pickle into retained-batch lists and run checkpoints.
    """

    def __init__(self, trials: int, master_seed: int, label: str,
                 batch_index: int, num_rows: int):
        self.trials = trials
        self.master_seed = master_seed
        self.label = label
        self.batch_index = batch_index
        self.num_rows = num_rows
        self._dense: Optional[np.ndarray] = None
        self._lock = threading.Lock()

    def spec(self) -> dict:
        """Picklable recipe for regenerating shards on a worker."""
        return {
            "trials": self.trials,
            "master_seed": self.master_seed,
            "label": self.label,
            "batch_index": self.batch_index,
            "num_rows": self.num_rows,
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "BatchWeights":
        return cls(**spec)

    def _fill(self, out: np.ndarray, lo: int, hi: int) -> np.ndarray:
        for j, trial in enumerate(range(lo, hi)):
            out[:, j] = poisson_trial_column(
                self.master_seed, self.label, self.batch_index, trial,
                self.num_rows,
            )
        return out

    def dense(self) -> np.ndarray:
        """The full ``(num_rows, trials)`` matrix (materialized once).

        Column-major (Fortran) order: the matrix is generated and
        consumed one trial column at a time, so contiguous columns keep
        both the fill and the per-column fold kernels sequential in
        memory.
        """
        if self._dense is None:
            with self._lock:
                if self._dense is None:
                    self._dense = self._fill(
                        np.empty((self.num_rows, self.trials), order="F"),
                        0, self.trials,
                    )
        return self._dense

    def release(self) -> None:
        """Drop the cached dense matrix.

        Retained-batch lists hold weight handles for the lifetime of a
        run; without this, every processed batch pins its ``(n, B)``
        rectangle and the weights dwarf the data under memory budgets.
        Safe at any time: the per-(batch, trial) streams are stateless,
        so a later :meth:`dense`/:meth:`shard` call (a guard rebuild
        replaying retained batches) regenerates bit-identical columns,
        and arrays already handed out stay alive with their holders.
        """
        with self._lock:
            self._dense = None

    def rows(self, row_idx: Optional[np.ndarray]) -> np.ndarray:
        """Dense weight rows for ``row_idx`` (all rows when None)."""
        dense = self.dense()
        return dense if row_idx is None else dense[row_idx]

    def shard(self, lo: int, hi: int,
              row_idx: Optional[np.ndarray] = None) -> np.ndarray:
        """Columns ``[lo, hi)`` only — the worker-side generation path."""
        if self._dense is not None:  # already paid for; reuse
            block = self._dense[:, lo:hi]
        else:
            block = self._fill(
                np.empty((self.num_rows, hi - lo), order="F"), lo, hi
            )
        return block if row_idx is None else block[row_idx]

    def __getstate__(self):
        # Drop the materialized matrix and the (unpicklable) lock: the
        # handle regenerates identical weights wherever it lands.
        return self.spec()

    def __setstate__(self, state):
        self.__init__(**state)


class DenseBatchWeights:
    """Adapter giving a concrete ``(n, B)`` matrix the handle interface.

    Used where weights already exist as an array (direct
    :meth:`~repro.core.delta.BlockRuntime.process_batch` callers, rebuild
    paths over concatenated retained batches).  ``spec()`` returns None:
    shards must be sliced from the dense matrix, not regenerated.
    """

    def __init__(self, weights: np.ndarray):
        self._weights = np.asarray(weights, dtype=np.float64)
        self.trials = self._weights.shape[1]
        self.num_rows = self._weights.shape[0]

    def spec(self) -> Optional[dict]:
        return None

    def dense(self) -> np.ndarray:
        return self._weights

    def rows(self, row_idx: Optional[np.ndarray]) -> np.ndarray:
        return self._weights if row_idx is None else self._weights[row_idx]

    def shard(self, lo: int, hi: int,
              row_idx: Optional[np.ndarray] = None) -> np.ndarray:
        block = self._weights[:, lo:hi]
        return block if row_idx is None else block[row_idx]

    def release(self) -> None:
        """No-op: a concrete matrix cannot be regenerated from a spec."""


def as_batch_weights(weights):
    """Normalize an ``(n, B)`` array or handle to the handle interface."""
    if hasattr(weights, "shard") and hasattr(weights, "rows"):
        return weights
    return DenseBatchWeights(weights)


class PoissonWeightSource:
    """Draws per-batch ``(n, B)`` Poisson(1) weight matrices.

    One source per query run.  Each batch/trial cell comes from its own
    derived RNG stream (see module docstring), so the source is
    reproducible from the master seed, resumable without carrying
    generator state, and shardable along the trial axis with bit-identical
    results.  Weight drawing is the per-batch fixed cost of bootstrap
    error estimation, so dense draws record a ``phase:weights`` span when
    tracing is enabled — the trial-state update cost downstream is
    proportional to the same ``rows × trials`` volume.
    """

    def __init__(self, trials: int, master_seed: int,
                 label: str = "bootstrap",
                 tracer: Optional[Tracer] = None):
        if trials < 1:
            raise ValueError("trials must be >= 1")
        self.trials = trials
        self.master_seed = master_seed
        self.label = label
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Next batch index for callers drawing sequentially.
        self._next_batch = 0

    def batch_weights(self, num_rows: int,
                      batch_index: Optional[int] = None) -> BatchWeights:
        """A lazy handle on one batch's weight matrix.

        ``batch_index`` defaults to (and always advances) the internal
        sequential counter, so plain per-batch iteration needs no
        bookkeeping.
        """
        if batch_index is None:
            batch_index = self._next_batch
        self._next_batch = batch_index + 1
        # Logical draws, counted at handle creation so the metric is
        # identical whether the matrix materializes densely, in shards,
        # or not at all.
        if self.tracer.metrics.enabled:
            self.tracer.metrics.counter(
                "bootstrap.weights_drawn"
            ).inc(num_rows * self.trials)
        return BatchWeights(
            self.trials, self.master_seed, self.label, batch_index,
            num_rows,
        )

    def weights_for(self, num_rows: int,
                    batch_index: Optional[int] = None) -> np.ndarray:
        """An ``(num_rows, trials)`` float64 Poisson(1) weight matrix."""
        handle = self.batch_weights(num_rows, batch_index)
        with self.tracer.span("phase:weights", rows_in=num_rows,
                              trials=self.trials):
            return handle.dense()

    def state_dict(self) -> dict:
        """The source's resumable state (run checkpointing).

        The per-(batch, trial) streams are stateless; only the sequential
        batch cursor needs to survive a resume.
        """
        return {"scheme": "poisson-per-trial", "next_batch": self._next_batch}

    def restore_state(self, state: dict) -> None:
        """Restore a state captured by :meth:`state_dict`."""
        if "next_batch" not in state:
            raise CheckpointError(
                "incompatible bootstrap weight-stream state (checkpoint "
                "from an older sequential-stream build)"
            )
        self._next_batch = int(state["next_batch"])


def multinomial_bootstrap(
    values: np.ndarray,
    statistic: Callable[[np.ndarray], float],
    trials: int,
    seed: int = 0,
) -> np.ndarray:
    """Classical bootstrap replicas of ``statistic`` over ``values``.

    Each trial resamples ``len(values)`` entries i.i.d. with replacement
    and evaluates the statistic — the textbook Monte-Carlo procedure of
    paper section 2.2.  Quadratic-ish in practice; for validation only.
    """
    values = np.asarray(values)
    rng = np.random.default_rng(seed)
    n = len(values)
    out = np.empty(trials, dtype=np.float64)
    for t in range(trials):
        sample = values[rng.integers(0, n, size=n)]
        out[t] = statistic(sample)
    return out


def poissonized_bootstrap(
    values: np.ndarray,
    weighted_statistic: Callable[[np.ndarray, np.ndarray], float],
    trials: int,
    seed: int = 0,
) -> np.ndarray:
    """Poissonized bootstrap replicas over a concrete value vector.

    ``weighted_statistic(values, weights)`` receives one Poisson(1)
    weight per value.  This is the one-shot analogue of what the online
    engine maintains incrementally; tests use it to validate that both
    paths agree in distribution.
    """
    values = np.asarray(values)
    rng = np.random.default_rng(seed)
    out = np.empty(trials, dtype=np.float64)
    for t in range(trials):
        weights = rng.poisson(1.0, size=len(values)).astype(np.float64)
        out[t] = weighted_statistic(values, weights)
    return out
