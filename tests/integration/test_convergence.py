"""Statistical integration tests: convergence, coverage, unbiasedness.

These validate the paper's section 2.2 semantics: ``Q(D_i, k/i)`` is an
unbiased estimator of ``Q(D)`` whose error shrinks as batches accumulate,
and the bootstrap confidence intervals cover the truth at roughly the
nominal rate.
"""

import numpy as np
import pytest

from repro import GolaConfig, GolaSession
from repro.workloads import SBI_QUERY, generate_sessions


def run_series(seed, num_batches=8, trials=40, n=8000):
    session = GolaSession(
        GolaConfig(num_batches=num_batches, bootstrap_trials=trials,
                   seed=seed)
    )
    session.register_table("sessions", generate_sessions(n, seed=123))
    query = session.sql(SBI_QUERY)
    snapshots = list(query.run_online())
    exact = session.execute_batch(query)
    truth = float(exact.column(exact.schema.names[0])[0])
    return snapshots, truth


class TestConvergence:
    def test_error_shrinks_with_batches(self):
        snapshots, truth = run_series(seed=1)
        errors = [abs(s.estimate - truth) for s in snapshots]
        # Compare average error over first vs last third.
        third = len(errors) // 3
        assert np.mean(errors[-third:]) <= np.mean(errors[:third]) + 1e-12

    def test_relative_stdev_decreases(self):
        snapshots, _ = run_series(seed=2)
        rsd = [s.relative_stdev for s in snapshots]
        assert rsd[-1] < rsd[0]

    def test_interval_width_decreases(self):
        snapshots, _ = run_series(seed=3)
        widths = [s.interval.width for s in snapshots]
        assert widths[-1] < widths[0]

    def test_final_equals_truth(self):
        snapshots, truth = run_series(seed=4)
        assert snapshots[-1].estimate == pytest.approx(truth, rel=1e-9)

    def test_estimator_unbiased_across_partitionings(self):
        """First-batch estimates across seeds center on the truth."""
        estimates = []
        truth = None
        for seed in range(12):
            snapshots, truth = run_series(
                seed=seed, num_batches=4, trials=16, n=4000
            )
            estimates.append(snapshots[0].estimate)
        spread = np.std(estimates)
        assert abs(np.mean(estimates) - truth) < 1.2 * spread / np.sqrt(12) * 3

    def test_coverage_near_nominal(self):
        """~95% CIs across seeds and batches cover the truth >= ~85%."""
        hits = total = 0
        for seed in range(8):
            snapshots, truth = run_series(
                seed=seed, num_batches=5, trials=40, n=4000
            )
            for snapshot in snapshots[:-1]:  # final is exact by design
                total += 1
                if snapshot.interval.contains(truth):
                    hits += 1
        assert hits / total >= 0.80

    def test_error_scales_roughly_with_sqrt(self):
        """Bootstrap stdev shrinks like ~1/sqrt(i) in batch index."""
        snapshots, truth = run_series(seed=6, num_batches=16, trials=40)
        rsd = np.array([s.relative_stdev for s in snapshots])
        # rsd_1 / rsd_16 should be near sqrt(16) = 4; allow wide slack.
        ratio = rsd[0] / rsd[-2]
        assert 1.5 < ratio < 10.0
