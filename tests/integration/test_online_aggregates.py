"""Online execution across the whole aggregate family.

The paper lists COUNT, SUM, AVG, STDEV and QUANTILES as supported
standard aggregates; every one must refine online and land exactly on
the batch answer (QUANTILE lands within its reservoir tolerance).
"""

import numpy as np
import pytest

from repro import GolaConfig, GolaSession, Table


@pytest.fixture(scope="module")
def session():
    rng = np.random.default_rng(12)
    n = 6000
    s = GolaSession(GolaConfig(num_batches=5, bootstrap_trials=24, seed=4))
    s.register_table("t", Table.from_columns({
        "g": rng.integers(0, 8, n).astype(np.int64),
        "x": rng.normal(50.0, 12.0, n),
        "y": rng.exponential(4.0, n),
    }))
    return s


def final_and_exact(session, sql):
    query = session.sql(sql)
    last = query.run_to_completion()
    exact = session.execute_batch(query)
    return last, exact


class TestOnlineAggregates:
    @pytest.mark.parametrize("agg", [
        "COUNT(*)", "SUM(x)", "AVG(x)", "MIN(x)", "MAX(x)", "STDEV(x)",
        "VAR(x)",
    ])
    def test_global_exactness(self, session, agg):
        last, exact = final_and_exact(
            session, f"SELECT {agg} AS v FROM t WHERE y < 6"
        )
        assert last.estimate == pytest.approx(
            float(exact.column("v")[0]), rel=1e-9
        )

    @pytest.mark.parametrize("agg", ["SUM(x)", "AVG(x)", "STDEV(x)"])
    def test_grouped_exactness(self, session, agg):
        last, exact = final_and_exact(
            session, f"SELECT g, {agg} AS v FROM t GROUP BY g ORDER BY g"
        )
        np.testing.assert_allclose(
            last.table.column("v").astype(float),
            exact.column("v").astype(float), rtol=1e-9,
        )

    def test_quantile_online(self, session):
        last, exact = final_and_exact(
            session, "SELECT QUANTILE(x, 0.5) AS med FROM t"
        )
        # Reservoir-approximate on both paths; same ballpark as numpy.
        table = session.catalog.get("t")
        assert last.estimate == pytest.approx(
            float(np.median(table["x"])), abs=1.5
        )

    def test_nested_with_stdev(self, session):
        last, exact = final_and_exact(
            session,
            "SELECT STDEV(x) AS v FROM t WHERE y > "
            "(SELECT AVG(y) FROM t)",
        )
        assert last.estimate == pytest.approx(
            float(exact.column("v")[0]), rel=1e-9
        )

    def test_multiple_aggregates_one_query(self, session):
        last, exact = final_and_exact(
            session,
            "SELECT COUNT(*) AS n, SUM(x) AS s, AVG(x) AS m, "
            "MIN(x) AS lo, MAX(x) AS hi FROM t WHERE y < "
            "(SELECT 2.0 * AVG(y) FROM t)",
        )
        for col in ("n", "s", "m", "lo", "hi"):
            assert float(last.table.column(col)[0]) == pytest.approx(
                float(exact.column(col)[0]), rel=1e-9
            )

    def test_expression_over_aggregates(self, session):
        last, exact = final_and_exact(
            session,
            "SELECT SUM(x) / COUNT(*) AS ratio FROM t WHERE y > "
            "(SELECT AVG(y) FROM t)",
        )
        assert last.estimate == pytest.approx(
            float(exact.column("ratio")[0]), rel=1e-9
        )
        # The derived column still carries error bars (replica algebra).
        assert "ratio" in last.errors

    def test_intermediate_snapshots_have_error_bars(self, session):
        query = session.sql(
            "SELECT AVG(x) AS v FROM t WHERE y > (SELECT AVG(y) FROM t)"
        )
        for snap in query.run_online():
            assert snap.interval.width >= 0.0
            if not snap.is_final:
                assert snap.interval.width > 0.0
            break


class TestEmptyBatchRegressions:
    """Pinned reproducers found by ``repro fuzz --grammar deep``.

    Both bugs shared a root: code that assumed at least one surviving
    row per batch.  A predicate that filters a whole mini-batch to zero
    rows must still flow through joins (schema effects) and produce a
    zero-row grouped result, identically on every execution path.
    """

    def _session(self):
        rng = np.random.default_rng(3)
        n = 1200
        s = GolaSession(GolaConfig(num_batches=4, bootstrap_trials=8,
                                   seed=11))
        s.register_table("fact", Table.from_columns({
            "k": rng.integers(0, 6, n).astype(np.int64),
            "x": rng.normal(0.0, 1.0, n),
        }))
        s.register_table("dim", Table.from_columns({
            "dim_id": np.arange(6, dtype=np.int64),
            "cat": np.array(list("abcabc"), dtype=object),
        }), streamed=False)
        return s

    def test_join_survives_batch_filtered_to_empty(self):
        # The online delta path used to skip join steps once a filter
        # emptied the batch, losing the dimension columns the group-by
        # references (SchemaError: unknown column 'cat').
        s = self._session()
        sql = ("SELECT cat, SUM(x) AS v FROM fact "
               "INNER JOIN dim ON fact.k = dim.dim_id "
               "WHERE x > 1e9 GROUP BY cat")
        last = s.sql(sql).run_to_completion()
        exact = s.execute_batch(sql)
        assert last.table.num_rows == exact.num_rows == 0

    def test_grouped_distinct_over_empty_input_is_empty(self):
        # DistinctState/QuantileState emitted one phantom row for a
        # zero-group grouped input, making the output table ragged.
        s = self._session()
        sql = ("SELECT k, COUNT(DISTINCT x) AS v FROM fact "
               "WHERE x > 1e9 GROUP BY k")
        last = s.sql(sql).run_to_completion()
        exact = s.execute_batch(sql)
        assert last.table.num_rows == exact.num_rows == 0
