"""Colstore acceptance: converted datasets are invisible in the answers.

For every paper query the snapshot stream from a converted on-disk
dataset must be **bit-identical** to the in-memory path — with pruning
on and off, serially and on a 4-worker pool.  Pruning-on equality is
the load-bearing check: zone maps may only skip work, never change a
mask, a weight draw or an estimate.
"""

import dataclasses

import numpy as np
import pytest

from repro import GolaConfig, GolaSession, StorageConfig
from repro.config import ParallelConfig
from repro.faults.chaos import snapshot_fingerprint
from repro.storage.colstore import convert_table, open_dataset
from repro import workloads

ROWS = 6000
BATCHES = 5
SEED = 2015

QUERY_CASES = {
    "sbi": ("sessions", workloads.generate_sessions,
            workloads.SBI_QUERY),
    "c3": ("conviva", workloads.generate_conviva,
           workloads.CONVIVA_QUERIES["C3"]),
    "q17": ("tpch", workloads.generate_tpch,
            workloads.TPCH_QUERIES["Q17"]),
    "q20": ("tpch", workloads.generate_tpch,
            workloads.TPCH_QUERIES["Q20"]),
}


@pytest.fixture(scope="module")
def datasets(tmp_path_factory):
    """One converted dataset per workload table, shared by all cases."""
    root = tmp_path_factory.mktemp("colstore-identity")
    out = {}
    for table_name, generate, _ in QUERY_CASES.values():
        if table_name in out:
            continue
        table = generate(ROWS, seed=SEED)
        path = root / table_name
        convert_table(table, path, num_batches=BATCHES, seed=SEED,
                      shuffle=True)
        out[table_name] = (table, path)
    return out


def _config(prune: bool, workers: int) -> GolaConfig:
    parallel = (ParallelConfig(workers=workers, backend="thread",
                               min_shard_rows=64)
                if workers > 1 else ParallelConfig())
    return GolaConfig(
        num_batches=BATCHES, seed=SEED, bootstrap_trials=24,
        parallel=parallel, storage=StorageConfig(prune=prune),
    )


def _stream_fp(config, table_name, source, sql, colstore: bool):
    session = GolaSession(config)
    if colstore:
        session.register_colstore(table_name, source)
    else:
        session.register_table(table_name, source)
    return snapshot_fingerprint(session.sql(sql).run_online())


@pytest.mark.parametrize("name", sorted(QUERY_CASES))
@pytest.mark.parametrize("prune", [True, False],
                         ids=["prune", "noprune"])
@pytest.mark.parametrize("workers", [1, 4], ids=["serial", "pool4"])
def test_snapshot_stream_bit_identity(datasets, name, prune, workers):
    table_name, _, sql = QUERY_CASES[name]
    table, path = datasets[table_name]
    config = _config(prune, workers)
    mem_fp = _stream_fp(config, table_name, table, sql, colstore=False)
    cs_fp = _stream_fp(config, table_name, path, sql, colstore=True)
    assert cs_fp == mem_fp, (
        f"{name}: colstore stream diverged from in-memory "
        f"(prune={prune}, workers={workers})"
    )


def test_mmap_and_eager_reads_agree(datasets):
    table_name, _, sql = QUERY_CASES["sbi"]
    _, path = datasets[table_name]
    config = _config(True, 1)
    fp_mmap = _stream_fp(config, table_name, path, sql, colstore=True)
    eager = dataclasses.replace(
        config, storage=StorageConfig(prune=True, mmap=False)
    )
    fp_eager = _stream_fp(eager, table_name, path, sql, colstore=True)
    assert fp_mmap == fp_eager


def test_batch_engine_matches_source_table(datasets):
    """to_table() inverts the stored permutation: batch results match."""
    table_name, _, sql = QUERY_CASES["c3"]
    table, path = datasets[table_name]
    config = _config(True, 1)

    mem = GolaSession(config)
    mem.register_table(table_name, table)
    expected = mem.execute_batch(sql)

    cs = GolaSession(config)
    cs.register_colstore(table_name, path)
    got = cs.execute_batch(sql)
    assert got.schema.names == expected.schema.names
    for col in expected.schema.names:
        a, b = expected.column(col), got.column(col)
        if a.dtype == object:
            assert a.tolist() == b.tolist()
        else:
            np.testing.assert_array_equal(a, b)


def test_mismatched_config_falls_back_to_repartition(datasets):
    """A dataset stored under other knobs still answers correctly."""
    table_name, _, sql = QUERY_CASES["sbi"]
    table, path = datasets[table_name]
    config = dataclasses.replace(_config(True, 1), num_batches=4)
    mem_fp = _stream_fp(config, table_name, table, sql, colstore=False)
    cs_fp = _stream_fp(config, table_name, path, sql, colstore=True)
    assert cs_fp == mem_fp
