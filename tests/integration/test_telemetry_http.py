"""Live telemetry over HTTP: /metrics, convergence streams, drain.

End-to-end acceptance for the serve-layer observability: the
Prometheus exposition must parse strictly and reconcile with the
scheduler's own accounting, per-query telemetry streams must agree
with the query's snapshot stream, telemetry must not perturb results,
and shutdown must be graceful (503 while draining, exit 0 on SIGTERM).
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro import GolaConfig, GolaSession, ServeConfig
from repro.serve import GolaServer, QueryScheduler, parse_prometheus
from repro.serve.loadgen import LoadGenerator, LoadSpec
from repro.workloads import SBI_QUERY, generate_sessions

pytestmark = pytest.mark.smoke

CONFIG = GolaConfig(num_batches=5, bootstrap_trials=20, seed=9)


def make_server(config=CONFIG, serve=None):
    session = GolaSession(config)
    session.register_table("sessions", generate_sessions(3_000, seed=42))
    scheduler = QueryScheduler(session, serve=serve)
    return GolaServer(scheduler, host="127.0.0.1", port=0)


def get_json(url, timeout=30.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def post_json(url, body, timeout=30.0):
    request = urllib.request.Request(
        url, method="POST", data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def stream_ndjson(url, timeout=60.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return [json.loads(line) for line in resp if line.strip()]


@pytest.fixture
def server():
    srv = make_server().start()
    yield srv
    srv.shutdown()


class TestMetricsExposition:
    def test_metrics_is_valid_prometheus(self, server):
        _, submitted = post_json(server.url + "/query",
                                 {"sql": SBI_QUERY})
        server.scheduler.wait(submitted["id"], timeout=60.0)
        with urllib.request.urlopen(
            server.url + "/metrics", timeout=30.0
        ) as resp:
            assert resp.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            text = resp.read().decode("utf-8")
        # The strict parser raises on any malformed line.
        families = parse_prometheus(text)
        snapshots = families["repro_serve_snapshots_total"]
        assert snapshots.type == "counter"
        assert snapshots.samples[0][2] == CONFIG.num_batches

        hist = families["repro_serve_first_answer_seconds"]
        assert hist.type == "histogram"
        buckets = [s for s in hist.samples if s[0].endswith("_bucket")]
        counts = [value for _, _, value in buckets]
        assert counts == sorted(counts)  # cumulative => monotone
        assert buckets[-1][1]["le"] == "+Inf"
        count = [s for s in hist.samples if s[0].endswith("_count")][0][2]
        assert buckets[-1][2] == count == 1
        assert hist.histogram_quantile(0.99) > 0

        window = families["repro_window_first_answer_seconds"]
        labels = {tuple(sorted(s[1].items())) for s in window.samples}
        assert any(("window", "10s") in pair for pair in labels)

    def test_metrics_reconcile_with_scheduler(self, server):
        for _ in range(2):
            _, submitted = post_json(server.url + "/query",
                                     {"sql": SBI_QUERY})
        server.scheduler.wait(timeout=60.0)
        _, listing = get_json(server.url + "/queries")
        per_query = sum(q["snapshots"] for q in listing["queries"])
        with urllib.request.urlopen(
            server.url + "/metrics", timeout=30.0
        ) as resp:
            families = parse_prometheus(resp.read().decode("utf-8"))
        total = families["repro_serve_snapshots_total"].samples[0][2]
        assert total == per_query == 2 * CONFIG.num_batches
        first_answers = families["repro_serve_first_answer_seconds"]
        count = [s for s in first_answers.samples
                 if s[0].endswith("_count")][0][2]
        assert count == len(listing["queries"])


class TestConvergenceStream:
    def test_stream_reconciles_with_snapshots(self, server):
        _, submitted = post_json(server.url + "/query",
                                 {"sql": SBI_QUERY})
        qid = submitted["id"]
        telemetry = stream_ndjson(
            f"{server.url}/queries/{qid}/telemetry"
        )
        snapshots = stream_ndjson(server.url + submitted["snapshots_url"])

        conv = [r for r in telemetry if r["type"] == "convergence"]
        summary = telemetry[-1]
        assert summary["type"] == "summary"
        snap_records = [r for r in snapshots if r["type"] == "snapshot"]
        assert len(conv) == len(snap_records) == CONFIG.num_batches
        assert summary["snapshots"] == CONFIG.num_batches
        assert summary["state"] == "done"

        # Record-by-record agreement with the snapshot stream.
        for tele, snap in zip(conv, snap_records):
            assert tele["batch"] == snap["batch"]
            assert tele["estimate"] == pytest.approx(snap["estimate"])
            assert tele["ci_width"] == pytest.approx(
                snap["hi"] - snap["lo"]
            )
        final = snap_records[-1]
        expected_rel = (final["hi"] - final["lo"]) / (
            2.0 * abs(final["estimate"])
        )
        assert summary["final_rel_width"] == pytest.approx(expected_rel)
        # Derived time-to-±ε values are consistent with the stream.
        for eps_text, seconds in summary["time_to"].items():
            eps = float(eps_text)
            reaching = [r for r in conv if r["rel_width"] is not None
                        and r["rel_width"] <= eps]
            assert reaching
            assert seconds == pytest.approx(reaching[0]["t_s"])

        # The alias route serves the same replayable stream.
        aliased = stream_ndjson(f"{server.url}/query/{qid}/telemetry")
        assert aliased == telemetry

    def test_unknown_query_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            stream_ndjson(server.url + "/queries/nope/telemetry")
        assert err.value.code == 404

    def test_telemetry_disabled_is_404(self):
        srv = make_server(serve=ServeConfig(telemetry=False)).start()
        try:
            _, submitted = post_json(srv.url + "/query",
                                     {"sql": SBI_QUERY})
            with pytest.raises(urllib.error.HTTPError) as err:
                stream_ndjson(
                    f"{srv.url}/queries/{submitted['id']}/telemetry"
                )
            assert err.value.code == 404
        finally:
            srv.shutdown()


class TestTelemetryNeutrality:
    def test_results_bit_identical_with_and_without(self):
        """Telemetry observes; it must never change what is computed."""
        finals = {}
        for enabled in (True, False):
            session = GolaSession(CONFIG)
            session.register_table(
                "sessions", generate_sessions(3_000, seed=42)
            )
            scheduler = QueryScheduler(
                session, serve=ServeConfig(telemetry=enabled)
            )
            try:
                run = scheduler.submit(SBI_QUERY)
                assert scheduler.wait(run.id, timeout=60.0)
                finals[enabled] = [
                    (snap.table.column(c).tobytes(), c)
                    for snap in run.snapshots
                    for c in snap.table.schema.names
                ]
            finally:
                scheduler.close()
        assert finals[True] == finals[False]


class TestGracefulShutdown:
    def test_healthz_rich_body(self, server):
        code, health = get_json(server.url + "/healthz")
        assert code == 200
        assert health["ok"] is True
        assert health["state"] == "serving"
        assert health["uptime_s"] >= 0
        stats = health["scheduler"]
        assert stats["draining"] is False
        assert {"queries", "running", "queued", "completed"} <= set(stats)

    def test_draining_rejects_new_queries_with_503(self, server):
        _, submitted = post_json(server.url + "/query",
                                 {"sql": SBI_QUERY})
        server.scheduler.begin_drain()
        code, health = get_json(server.url + "/healthz")
        assert health["state"] == "draining"
        with pytest.raises(urllib.error.HTTPError) as err:
            post_json(server.url + "/query", {"sql": SBI_QUERY})
        assert err.value.code == 503
        # In-flight work still completes and streams to the end.
        records = stream_ndjson(server.url + submitted["snapshots_url"])
        assert records[-1]["type"] == "end"
        assert records[-1]["state"] == "done"
        assert server.scheduler.drain(timeout_s=30.0)

    def test_sigterm_exits_zero(self, tmp_path):
        """``repro serve`` drains and exits 0 on SIGTERM."""
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env["PYTHONUNBUFFERED"] = "1"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--rows", "2000", "--batches", "3"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=env, text=True,
        )
        try:
            deadline = time.monotonic() + 60.0
            for line in proc.stdout:
                if "serving on" in line:
                    break
                assert time.monotonic() < deadline, "server never came up"
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30.0) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)


class TestLoadGeneratorHTTP:
    def test_tiny_seeded_run(self, server):
        spec = LoadSpec(
            rate_qps=50.0, clients=2, queries=4, seed=3,
            num_batches=3, target_rel_width=0.5,
            mix=(
                ("sbi", SBI_QUERY, 1.0),
                ("avg_play", "SELECT AVG(play_time) FROM sessions", 1.0),
            ),
        )
        report = LoadGenerator(spec).run(server.url)
        assert report["submitted"] == 4
        assert report["completed"] == 4
        assert report["errors"] == 0
        assert report["throughput_qps"] > 0
        assert report["first_answer_s"]["n"] == 4
        assert report["reached_target"] >= 1
        assert report["spec"]["seed"] == 3
        names = set(report["per_query"])
        assert names <= {"sbi", "avg_play"}
