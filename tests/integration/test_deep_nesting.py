"""Arbitrary nesting depth — the headline generalization of G-OLA.

Two- and three-level nested aggregate queries run online: inner blocks
are themselves delta-maintained (their own uncertain sets and guards),
values broadcast up the lineage-block DAG, and the final snapshot still
equals the exact answer.
"""

import numpy as np
import pytest

from repro import GolaConfig, GolaSession, Table


@pytest.fixture(scope="module")
def session():
    rng = np.random.default_rng(21)
    n = 9000
    s = GolaSession(GolaConfig(num_batches=6, bootstrap_trials=24, seed=8))
    s.register_table("t", Table.from_columns({
        "k": rng.integers(0, 12, n).astype(np.int64),
        "x": rng.normal(100.0, 25.0, n),
        "y": rng.exponential(10.0, n),
        "z": rng.uniform(0.0, 1.0, n),
    }))
    return s


def check(session, sql):
    query = session.sql(sql)
    exact = session.execute_batch(query)
    last = query.run_to_completion()
    assert last.table.num_rows == exact.num_rows
    for col in exact.schema.names:
        np.testing.assert_allclose(
            np.sort(last.table.column(col).astype(float)),
            np.sort(exact.column(col).astype(float)),
            rtol=1e-7, err_msg=col,
        )
    return last


class TestTwoLevels:
    def test_two_scalar_levels(self, session):
        check(session, """
            SELECT AVG(x) FROM t WHERE x >
              (SELECT AVG(x) FROM t WHERE y >
                 (SELECT AVG(y) FROM t))
        """)

    def test_two_slots_same_level(self, session):
        check(session, """
            SELECT COUNT(*) FROM t
            WHERE x > (SELECT AVG(x) FROM t)
              AND y < (SELECT 2.0 * AVG(y) FROM t)
        """)

    def test_keyed_inside_scalar(self, session):
        check(session, """
            SELECT SUM(y) FROM t WHERE y >
              (SELECT AVG(y) FROM t WHERE x >
                 (SELECT 0.9 * AVG(x) FROM t u WHERE u.k = t.k))
        """)


class TestThreeLevels:
    def test_three_scalar_levels(self, session):
        last = check(session, """
            SELECT AVG(x) FROM t WHERE x >
              (SELECT AVG(x) FROM t WHERE y >
                 (SELECT AVG(y) FROM t WHERE z >
                    (SELECT AVG(z) FROM t)))
        """)
        # Three subquery blocks plus main took part.
        assert len(last.uncertain_sizes) == 4

    def test_membership_of_filtered_groups(self, session):
        check(session, """
            SELECT COUNT(*) FROM t
            WHERE k IN (SELECT k FROM t
                        WHERE x > (SELECT AVG(x) FROM t)
                        GROUP BY k HAVING SUM(y) > 500)
        """)


class TestBroadcastTopology:
    def test_block_count_and_order(self, session):
        from repro.plan import lineage_blocks

        query = session.sql("""
            SELECT AVG(x) FROM t WHERE x >
              (SELECT AVG(x) FROM t WHERE y >
                 (SELECT AVG(y) FROM t))
        """)
        blocks = lineage_blocks(query.query)
        assert [b.block_id for b in blocks][-1] == "main"
        # Consumers appear after their producers (topological order).
        produced = set()
        for block in blocks:
            assert block.consumes <= produced
            if block.produces is not None:
                produced.add(block.produces)
