"""Parallel execution determinism: bit-identical for any worker count.

The contract of ``repro.parallel`` (ISSUE 3): estimates, confidence
intervals, uncertain-set sizes and trace accounting are **bit-identical**
across serial execution and every worker count/backend, because trial
shards draw from per-(batch, trial) RNG streams and merge into disjoint
state columns.  Also pins composition with the fault-injection
subsystem: checkpoints taken at one worker count resume at another, and
faulty runs skip/recover identically under any pool.
"""

import pytest

from repro import FaultsConfig, GolaConfig, GolaSession
from repro.config import ParallelConfig
from repro.obs import AggregatingSink, MetricsRegistry, Tracer
from repro.workloads import (
    SBI_QUERY,
    TPCH_QUERIES,
    generate_sessions,
    generate_tpch,
)

ROWS = 24_000
BATCHES = 8
TRIALS = 24

SESSIONS = generate_sessions(ROWS, seed=13)
TPCH = generate_tpch(ROWS, seed=13)

#: Every mode must reproduce the serial stream bit for bit.
MODES = [
    ParallelConfig(),
    ParallelConfig(workers=1, backend="serial"),
    ParallelConfig(workers=2, backend="thread"),
    ParallelConfig(workers=4, backend="process"),
]


def fingerprint(snapshots):
    """Everything user-visible in a snapshot stream, bitwise."""
    out = []
    for s in snapshots:
        out.append((
            s.batch_index,
            tuple(s.table.column(c).tobytes()
                  for c in s.table.schema.names),
            tuple(sorted(
                (name, err.lows.tobytes(), err.highs.tobytes())
                for name, err in s.errors.items()
            )),
            tuple(sorted(s.uncertain_sizes.items())),
            tuple(sorted(s.rows_processed.items())),
            tuple(s.rebuilds),
            s.degraded,
            tuple(s.skipped_batches or ()),
        ))
    return out


def run_query(sql, table_name, table, parallel, faults=None, tracer=None,
              batches=BATCHES, trials=TRIALS):
    session = GolaSession(
        GolaConfig(num_batches=batches, bootstrap_trials=trials, seed=17,
                   parallel=parallel,
                   faults=faults if faults is not None else FaultsConfig()),
        tracer=tracer,
    )
    session.register_table(table_name, table)
    return session.sql(sql).run_online()


class TestBitIdenticalAcrossWorkerCounts:
    @pytest.mark.parametrize("mode", MODES[1:], ids=lambda m: (
        f"w{m.workers}-{m.backend}"
    ))
    def test_sbi_stream_matches_serial(self, mode):
        serial = fingerprint(
            run_query(SBI_QUERY, "sessions", SESSIONS, MODES[0])
        )
        parallel = fingerprint(
            run_query(SBI_QUERY, "sessions", SESSIONS, mode)
        )
        assert parallel == serial

    def test_nested_tpch_query_matches_serial(self):
        serial = fingerprint(
            run_query(TPCH_QUERIES["Q17"], "tpch", TPCH, MODES[0])
        )
        parallel = fingerprint(run_query(
            TPCH_QUERIES["Q17"], "tpch", TPCH,
            ParallelConfig(workers=4, backend="thread"),
        ))
        assert parallel == serial

    def test_trace_accounting_matches_serial(self):
        """Span counts and attribute totals agree across modes for every
        span except the ``parallel.*`` machinery's own."""
        counts = {}
        for label, mode in (("serial", MODES[0]), ("workers", MODES[2])):
            agg = AggregatingSink()
            tracer = Tracer(agg, metrics=MetricsRegistry(enabled=True))
            list(run_query(SBI_QUERY, "sessions", SESSIONS, mode,
                           tracer=tracer))
            tracer.close()
            counts[label] = {
                name: (stats.count, stats.attr_totals.get("rows_in"))
                for name, stats in agg.spans.items()
                if not name.startswith("parallel.")
            }
        assert counts["workers"] == counts["serial"]
        assert "batch" in counts["serial"]
        assert "phase:fold" in counts["serial"]

    def test_parallel_metrics_recorded(self):
        tracer = Tracer(metrics=MetricsRegistry(enabled=True))
        list(run_query(SBI_QUERY, "sessions", SESSIONS, MODES[2],
                       tracer=tracer))
        counters = tracer.metrics.snapshot().counters
        assert counters.get("parallel.shard_tasks", 0) > 0
        assert counters.get("parallel.sharded_cells", 0) > 0


class TestCheckpointAcrossWorkerCounts:
    def _stream(self, parallel, resume_from=None, stop_after=None,
                faults=None):
        session = GolaSession(
            GolaConfig(num_batches=BATCHES, bootstrap_trials=TRIALS,
                       seed=17, parallel=parallel,
                       faults=faults if faults is not None
                       else FaultsConfig()),
        )
        session.register_table("sessions", SESSIONS)
        query = session.sql(SBI_QUERY)
        it = query.run_online(resume_from=resume_from) \
            if resume_from is not None else query.run_online()
        if stop_after is None:
            return fingerprint(it), None
        prefix = []
        for _ in range(stop_after):
            prefix.append(next(it))
        ck = query.checkpoint()
        it.close()
        return fingerprint(prefix), ck

    def test_resume_at_different_worker_count(self):
        """A run checkpointed serial resumes under a pool (and vice
        versa) with the uninterrupted serial stream, bit for bit."""
        full, _ = self._stream(MODES[0])
        prefix, ck = self._stream(MODES[0], stop_after=3)
        rest, _ = self._stream(
            ParallelConfig(workers=4, backend="thread"), resume_from=ck
        )
        assert prefix + rest == full

        prefix, ck = self._stream(MODES[2], stop_after=5)
        rest, _ = self._stream(MODES[0], resume_from=ck)
        assert prefix + rest == full


class TestFaultComposition:
    SKIPPY = FaultsConfig(enabled=True, seed=21, batch_failure_prob=0.3,
                          max_retries=0)

    def test_degraded_run_identical_under_pool(self):
        serial = fingerprint(run_query(
            SBI_QUERY, "sessions", SESSIONS, MODES[0], faults=self.SKIPPY
        ))
        pooled = fingerprint(run_query(
            SBI_QUERY, "sessions", SESSIONS,
            ParallelConfig(workers=2, backend="thread"),
            faults=self.SKIPPY,
        ))
        assert pooled == serial
        assert any(s[6] for s in serial)  # the run really degraded

    def test_faulty_checkpoint_resume_across_worker_counts(self):
        helper = TestCheckpointAcrossWorkerCounts()
        full, _ = helper._stream(MODES[0], faults=self.SKIPPY)
        prefix, ck = helper._stream(MODES[0], stop_after=4,
                                    faults=self.SKIPPY)
        rest, _ = helper._stream(MODES[2], resume_from=ck,
                                 faults=self.SKIPPY)
        assert prefix + rest == full
